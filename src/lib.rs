//! # cubemesh — mesh embeddings in Boolean cubes by graph decomposition
//!
//! Facade crate re-exporting the full workspace. See the README for a tour
//! and DESIGN.md for the paper-to-module map.

pub use cubemesh_audit as audit;
pub use cubemesh_census as census;
pub use cubemesh_core as core;
pub use cubemesh_embedding as embedding;
pub use cubemesh_gray as gray;
pub use cubemesh_manytoone as manytoone;
pub use cubemesh_netsim as netsim;
pub use cubemesh_obs as obs;
pub use cubemesh_pool as pool;
pub use cubemesh_replay as replay;
pub use cubemesh_reshape as reshape;
pub use cubemesh_search as search;
pub use cubemesh_topology as topology;
pub use cubemesh_torus as torus;
