//! The `cubemesh` command-line tool: plan, classify, simulate, and export
//! mesh-in-cube embeddings.
//!
//! ```text
//! cubemesh embed 5 6 7 [--out FILE]      plan + construct + report metrics
//! cubemesh classify 21 9 5               paper method / constructive plan
//! cubemesh torus 6 10                    wraparound embedding
//! cubemesh simulate 9 9 9 [--flits N]    stencil-exchange comparison
//! cubemesh census 5                      Figure-2 census at li <= 2^5
//! cubemesh verify FILE                   re-verify an exported embedding
//! ```
//!
//! Every subcommand accepts `--stats` to print an instrumentation snapshot
//! (counters, histograms, span timings) after the run; setting
//! `CUBEMESH_STATS=text` or `CUBEMESH_STATS=json` does the same without
//! the flag and selects the output format.

use cubemesh::core::{classify3, construct, embed_mesh, Planner};
use cubemesh::embedding::portable::{read_embedding, write_embedding};
use cubemesh::embedding::{gray_mesh_embedding, RouteStrategy};
use cubemesh::netsim::{simulate_with, stencil_exchange, Switching};
use cubemesh::obs;
use cubemesh::reshape::snake_embedding;
use cubemesh::topology::Shape;
use cubemesh::torus::embed_torus;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    obs::init_from_env();
    if args.iter().any(|a| a == "--stats") {
        args.retain(|a| a != "--stats");
        if obs::mode() == obs::StatsMode::Off {
            obs::set_mode(obs::StatsMode::Text);
        }
    }
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: cubemesh <embed|classify|torus|simulate|census|verify> … [--stats]");
        return ExitCode::from(2);
    };
    let code = match cmd.as_str() {
        "embed" => embed(rest),
        "classify" => classify(rest),
        "torus" => torus(rest),
        "simulate" => simulate_cmd(rest),
        "census" => census(rest),
        "verify" => verify(rest),
        other => {
            eprintln!("unknown command '{}'", other);
            ExitCode::from(2)
        }
    };
    // Text goes to stderr, JSON as one line to stdout; no-op when off.
    obs::report();
    code
}

fn parse_dims(args: &[String]) -> (Vec<usize>, Vec<(String, String)>) {
    let mut dims = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            // A following `--flag` is the next flag, not this one's value,
            // so bare boolean flags (--json) compose with valued ones.
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().cloned().unwrap(),
                _ => String::new(),
            };
            flags.push((name.to_string(), value));
        } else if let Ok(d) = a.parse() {
            dims.push(d);
        } else {
            eprintln!("ignoring argument '{}'", a);
        }
    }
    (dims, flags)
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn embed(args: &[String]) -> ExitCode {
    let (dims, flags) = parse_dims(args);
    if dims.is_empty() {
        eprintln!("usage: cubemesh embed <l1> [l2 …] [--out FILE]");
        return ExitCode::from(2);
    }
    let shape = Shape::new(&dims);
    let (emb, minimal) = embed_mesh(&shape);
    if let Err(e) = emb.verify() {
        eprintln!(
            "internal error: constructed embedding failed to verify: {}",
            e
        );
        return ExitCode::from(1);
    }
    if obs::enabled() {
        // The construction carries its own routes; also drive the
        // congestion-aware router over the final node map so the snapshot
        // reports router behavior (passes, congestion histogram) for this
        // embedding.
        let _ = cubemesh::embedding::router::route_all(
            emb.map(),
            &emb.edges_vec(),
            emb.host(),
            RouteStrategy::default(),
        );
    }
    let m = emb.metrics();
    println!(
        "{}: Q{} ({}), expansion {:.3}, dilation {}, congestion {}, avg dilation {:.3}",
        shape,
        m.host_dim,
        if minimal {
            "minimal"
        } else {
            "Gray fallback — no minimal plan known"
        },
        m.expansion,
        m.dilation,
        m.congestion,
        m.avg_dilation
    );
    if let Some(path) = flag(&flags, "out") {
        let mut f = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {}: {}", path, e);
                return ExitCode::from(1);
            }
        };
        if let Err(e) = write_embedding(&emb, &mut f) {
            eprintln!("write failed: {}", e);
            return ExitCode::from(1);
        }
        println!("wrote {}", path);
    }
    ExitCode::SUCCESS
}

fn classify(args: &[String]) -> ExitCode {
    let (dims, _) = parse_dims(args);
    if dims.len() != 3 {
        eprintln!("usage: cubemesh classify <l1> <l2> <l3>");
        return ExitCode::from(2);
    }
    let shape = Shape::new(&dims);
    match classify3(dims[0] as u64, dims[1] as u64, dims[2] as u64) {
        Some(m) => println!(
            "{}: paper method {:?} (cube Q{})",
            shape,
            m,
            shape.minimal_cube_dim()
        ),
        None => println!("{}: open under the paper's methods 1-4", shape),
    }
    match Planner::new().plan(&shape) {
        Some(plan) => {
            let emb = construct(&shape, &plan);
            let met = emb.metrics();
            println!(
                "constructive: {} — dilation {}, congestion {}",
                plan, met.dilation, met.congestion
            );
        }
        None => println!("constructive: no plan in this repo's catalog"),
    }
    ExitCode::SUCCESS
}

fn torus(args: &[String]) -> ExitCode {
    let (dims, _) = parse_dims(args);
    if dims.is_empty() {
        eprintln!("usage: cubemesh torus <l1> [l2 …]");
        return ExitCode::from(2);
    }
    let shape = Shape::new(&dims);
    match embed_torus(&shape) {
        Some(out) => {
            let m = out.embedding.metrics();
            println!(
                "{} (wraparound): Q{}, dilation {} (bound {}), congestion {}, rule {:?}",
                shape, m.host_dim, m.dilation, out.dilation_bound, m.congestion, out.rule
            );
            ExitCode::SUCCESS
        }
        None => {
            println!("{}: no §6 construction lands in the minimal cube", shape);
            ExitCode::from(1)
        }
    }
}

fn simulate_cmd(args: &[String]) -> ExitCode {
    let (dims, flags) = parse_dims(args);
    if dims.is_empty() {
        eprintln!("usage: cubemesh simulate <l1> [l2 …] [--flits N] [--cut-through x]");
        return ExitCode::from(2);
    }
    let flits: u32 = flag(&flags, "flits")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let switching = if flag(&flags, "cut-through").is_some() {
        Switching::CutThrough
    } else {
        Switching::StoreAndForward
    };
    let json = flag(&flags, "json").is_some();
    let shape = Shape::new(&dims);
    if !json {
        println!(
            "{}: stencil exchange, {} flits, {:?}",
            shape, flits, switching
        );
    }
    let (decomp, minimal) = embed_mesh(&shape);
    let cases = [
        (
            if minimal {
                "decomposition"
            } else {
                "gray (no plan)"
            },
            decomp,
        ),
        ("gray (expanded)", gray_mesh_embedding(&shape)),
        ("snake (minimal)", snake_embedding(&shape)),
    ];
    for (name, emb) in cases {
        let r = simulate_with(emb.host(), &stencil_exchange(&emb, flits), switching);
        if json {
            println!(
                "{{\"case\":\"{}\",\"host_dim\":{},\"dilation\":{},\"result\":{}}}",
                name,
                emb.host().dim(),
                emb.metrics().dilation,
                r.to_json()
            );
        } else {
            println!(
                "  {:<16} Q{:<3} dilation {:<2} makespan {:>6} ({:.2}x)  max queue {:<3} max latency {}",
                name,
                emb.host().dim(),
                emb.metrics().dilation,
                r.makespan,
                r.makespan as f64 / flits as f64,
                r.max_queue_depth,
                r.max_latency
            );
        }
    }
    ExitCode::SUCCESS
}

fn census(args: &[String]) -> ExitCode {
    let (dims, _) = parse_dims(args);
    let n = dims.first().copied().unwrap_or(5) as u32;
    if !(1..=9).contains(&n) {
        eprintln!("census n must be 1..=9");
        return ExitCode::from(2);
    }
    let c = cubemesh::census::census_3d(n);
    let s = c.cumulative_percent();
    println!(
        "n={}: S1 {:.1}%  S2 {:.1}%  S3 {:.1}%  S4 {:.1}%  constructive {:.1}%",
        n,
        s[0],
        s[1],
        s[2],
        s[3],
        c.constructive_percent()
    );
    ExitCode::SUCCESS
}

fn verify(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: cubemesh verify FILE");
        return ExitCode::from(2);
    };
    let f = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {}: {}", path, e);
            return ExitCode::from(1);
        }
    };
    match read_embedding(&mut BufReader::new(f)) {
        Ok(emb) => match emb.verify() {
            Ok(()) => {
                let m = emb.metrics();
                println!(
                    "OK: {} nodes -> Q{}, dilation {}, congestion {}",
                    emb.guest_nodes(),
                    m.host_dim,
                    m.dilation,
                    m.congestion
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("INVALID: {}", e);
                ExitCode::from(1)
            }
        },
        Err(e) => {
            eprintln!("parse error: {}", e);
            ExitCode::from(1)
        }
    }
}
