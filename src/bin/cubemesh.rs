//! The `cubemesh` command-line tool: plan, classify, simulate, and export
//! mesh-in-cube embeddings.
//!
//! ```text
//! cubemesh embed 5 6 7 [--out FILE]      plan + construct + report metrics
//! cubemesh classify 21 9 5               paper method / constructive plan
//! cubemesh torus 6 10                    wraparound embedding
//! cubemesh simulate 9 9 9 [--flits N]    stencil-exchange comparison
//! cubemesh census 5                      Figure-2 census at li <= 2^5
//! cubemesh verify FILE                   re-verify an exported embedding
//! cubemesh replay 4 4 4 [--pattern P]    trace replay with windowed stats
//! ```
//!
//! `replay` drives the trace-replay subsystem: `--pattern
//! stencil|shifts|bursty|sweep` picks a synthetic trace (`--trace-in FILE`
//! loads a recorded one instead), `--slack` joins the replay against the
//! static congestion certificate, `--check` replays twice and fails unless
//! the reports are byte-identical and every injected message was
//! delivered, and `--record FILE` saves the trace as JSONL for later
//! replay.
//!
//! Every subcommand accepts `--stats` to print an instrumentation snapshot
//! (counters, histograms, span timings) after the run; setting
//! `CUBEMESH_STATS=text` or `CUBEMESH_STATS=json` does the same without
//! the flag and selects the output format. `--trace FILE` (any subcommand)
//! records a hierarchical execution trace and writes three exports at
//! exit: Chrome `trace_event` JSON at FILE (open in Perfetto), folded
//! flamegraph stacks at FILE.folded, and a stable-schema JSONL event log
//! at FILE.jsonl.

use cubemesh::core::{classify3, construct, embed_mesh, Planner};
use cubemesh::embedding::portable::{read_embedding, write_embedding};
use cubemesh::embedding::{gray_mesh_embedding, RouteStrategy};
use cubemesh::netsim::{simulate_with, stencil_exchange, Switching};
use cubemesh::obs;
use cubemesh::reshape::snake_embedding;
use cubemesh::topology::Shape;
use cubemesh::torus::embed_torus;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    obs::init_from_env();
    if args.iter().any(|a| a == "--stats") {
        args.retain(|a| a != "--stats");
        if obs::mode() == obs::StatsMode::Off {
            obs::set_mode(obs::StatsMode::Text);
        }
    }
    let trace_out = take_trace_flag(&mut args);
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!(
            "usage: cubemesh <embed|classify|torus|simulate|census|verify|replay> … \
             [--stats] [--trace FILE]"
        );
        return ExitCode::from(2);
    };
    let code = match cmd.as_str() {
        "embed" => embed(rest),
        "classify" => classify(rest),
        "torus" => torus(rest),
        "simulate" => simulate_cmd(rest),
        "census" => census(rest),
        "verify" => verify(rest),
        "replay" => replay_cmd(rest),
        other => {
            eprintln!("unknown command '{}'", other);
            ExitCode::from(2)
        }
    };
    // Text goes to stderr, JSON as one line to stdout; no-op when off.
    obs::report();
    write_trace(trace_out.as_deref());
    code
}

/// Pre-scan `--trace FILE` (valid anywhere on the command line), strip it
/// from `args`, and enable trace collection. Returns the output path.
fn take_trace_flag(args: &mut Vec<String>) -> Option<String> {
    let i = args.iter().position(|a| a == "--trace")?;
    if i + 1 >= args.len() || args[i + 1].starts_with("--") {
        eprintln!("--trace requires an output file path");
        std::process::exit(2);
    }
    let path = args.remove(i + 1);
    args.remove(i);
    obs::trace::set_enabled(true);
    Some(path)
}

/// Drain the trace buffers and write the Chrome / folded / JSONL exports
/// next to `path`. No-op when tracing never ran.
fn write_trace(path: Option<&str>) {
    let Some(path) = path else { return };
    obs::trace::set_enabled(false);
    let log = obs::trace::drain();
    match log.write_files(std::path::Path::new(path)) {
        Ok(paths) => {
            let names: Vec<String> = paths.iter().map(|p| p.display().to_string()).collect();
            eprintln!("trace: {} events -> {}", log.len(), names.join(", "));
        }
        Err(e) => eprintln!("trace write failed: {}", e),
    }
}

fn parse_dims(args: &[String]) -> (Vec<usize>, Vec<(String, String)>) {
    let mut dims = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            // A following `--flag` is the next flag, not this one's value,
            // so bare boolean flags (--json) compose with valued ones.
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().cloned().unwrap(),
                _ => String::new(),
            };
            flags.push((name.to_string(), value));
        } else if let Ok(d) = a.parse() {
            dims.push(d);
        } else {
            eprintln!("ignoring argument '{}'", a);
        }
    }
    (dims, flags)
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn embed(args: &[String]) -> ExitCode {
    let (dims, flags) = parse_dims(args);
    if dims.is_empty() {
        eprintln!("usage: cubemesh embed <l1> [l2 …] [--out FILE]");
        return ExitCode::from(2);
    }
    let shape = Shape::new(&dims);
    let (emb, minimal) = embed_mesh(&shape);
    if let Err(e) = emb.verify() {
        eprintln!(
            "internal error: constructed embedding failed to verify: {}",
            e
        );
        return ExitCode::from(1);
    }
    if obs::enabled() {
        // The construction carries its own routes; also drive the
        // congestion-aware router over the final node map so the snapshot
        // reports router behavior (passes, congestion histogram) for this
        // embedding.
        let _ = cubemesh::embedding::router::route_all(
            emb.map(),
            &emb.edges_vec(),
            emb.host(),
            RouteStrategy::default(),
        );
    }
    let m = emb.metrics();
    println!(
        "{}: Q{} ({}), expansion {:.3}, dilation {}, congestion {}, avg dilation {:.3}",
        shape,
        m.host_dim,
        if minimal {
            "minimal"
        } else {
            "Gray fallback — no minimal plan known"
        },
        m.expansion,
        m.dilation,
        m.congestion,
        m.avg_dilation
    );
    if let Some(path) = flag(&flags, "out") {
        let mut f = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {}: {}", path, e);
                return ExitCode::from(1);
            }
        };
        if let Err(e) = write_embedding(&emb, &mut f) {
            eprintln!("write failed: {}", e);
            return ExitCode::from(1);
        }
        println!("wrote {}", path);
    }
    ExitCode::SUCCESS
}

fn classify(args: &[String]) -> ExitCode {
    let (dims, _) = parse_dims(args);
    if dims.len() != 3 {
        eprintln!("usage: cubemesh classify <l1> <l2> <l3>");
        return ExitCode::from(2);
    }
    let shape = Shape::new(&dims);
    match classify3(dims[0] as u64, dims[1] as u64, dims[2] as u64) {
        Some(m) => println!(
            "{}: paper method {:?} (cube Q{})",
            shape,
            m,
            shape.minimal_cube_dim()
        ),
        None => println!("{}: open under the paper's methods 1-4", shape),
    }
    match Planner::new().plan(&shape) {
        Some(plan) => {
            let emb = construct(&shape, &plan).expect("planner-produced plan lowers");
            let met = emb.metrics();
            println!(
                "constructive: {} — dilation {}, congestion {}",
                plan, met.dilation, met.congestion
            );
        }
        None => println!("constructive: no plan in this repo's catalog"),
    }
    ExitCode::SUCCESS
}

fn torus(args: &[String]) -> ExitCode {
    let (dims, _) = parse_dims(args);
    if dims.is_empty() {
        eprintln!("usage: cubemesh torus <l1> [l2 …]");
        return ExitCode::from(2);
    }
    let shape = Shape::new(&dims);
    match embed_torus(&shape) {
        Some(out) => {
            let m = out.embedding.metrics();
            println!(
                "{} (wraparound): Q{}, dilation {} (bound {}), congestion {}, rule {:?}",
                shape, m.host_dim, m.dilation, out.dilation_bound, m.congestion, out.rule
            );
            ExitCode::SUCCESS
        }
        None => {
            println!("{}: no §6 construction lands in the minimal cube", shape);
            ExitCode::from(1)
        }
    }
}

fn simulate_cmd(args: &[String]) -> ExitCode {
    let (dims, flags) = parse_dims(args);
    if dims.is_empty() {
        eprintln!("usage: cubemesh simulate <l1> [l2 …] [--flits N] [--cut-through x]");
        return ExitCode::from(2);
    }
    let flits: u32 = flag(&flags, "flits")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let switching = if flag(&flags, "cut-through").is_some() {
        Switching::CutThrough
    } else {
        Switching::StoreAndForward
    };
    let json = flag(&flags, "json").is_some();
    let shape = Shape::new(&dims);
    if !json {
        println!(
            "{}: stencil exchange, {} flits, {:?}",
            shape, flits, switching
        );
    }
    let (decomp, minimal) = embed_mesh(&shape);
    let cases = [
        (
            if minimal {
                "decomposition"
            } else {
                "gray (no plan)"
            },
            decomp,
        ),
        ("gray (expanded)", gray_mesh_embedding(&shape)),
        ("snake (minimal)", snake_embedding(&shape)),
    ];
    for (name, emb) in cases {
        let r = simulate_with(emb.host(), &stencil_exchange(&emb, flits), switching);
        if json {
            println!(
                "{{\"case\":\"{}\",\"host_dim\":{},\"dilation\":{},\"result\":{}}}",
                name,
                emb.host().dim(),
                emb.metrics().dilation,
                r.to_json()
            );
        } else {
            println!(
                "  {:<16} Q{:<3} dilation {:<2} makespan {:>6} ({:.2}x)  max queue {:<3} max latency {}",
                name,
                emb.host().dim(),
                emb.metrics().dilation,
                r.makespan,
                r.makespan as f64 / flits as f64,
                r.max_queue_depth,
                r.max_latency
            );
        }
    }
    ExitCode::SUCCESS
}

fn census(args: &[String]) -> ExitCode {
    let (dims, _) = parse_dims(args);
    let n = dims.first().copied().unwrap_or(5) as u32;
    if !(1..=9).contains(&n) {
        eprintln!("census n must be 1..=9");
        return ExitCode::from(2);
    }
    let c = cubemesh::census::census_3d(n);
    let s = c.cumulative_percent();
    println!(
        "n={}: S1 {:.1}%  S2 {:.1}%  S3 {:.1}%  S4 {:.1}%  constructive {:.1}%",
        n,
        s[0],
        s[1],
        s[2],
        s[3],
        c.constructive_percent()
    );
    ExitCode::SUCCESS
}

fn replay_cmd(args: &[String]) -> ExitCode {
    use cubemesh::replay::{
        bursty_trace, certificate_slack, rate_sweep, replay, saturation_knee, shift_trace,
        stencil_trace, ReplayConfig, Trace,
    };
    let (dims, flags) = parse_dims(args);
    if dims.is_empty() {
        eprintln!(
            "usage: cubemesh replay <l1> [l2 …] [--pattern stencil|shifts|bursty|sweep]\n\
             \x20  [--flits N] [--period N] [--phases N] [--horizon N] [--window N]\n\
             \x20  [--seed N] [--cut-through x] [--trace-in FILE] [--record FILE]\n\
             \x20  [--slack x] [--check x] [--json x]"
        );
        return ExitCode::from(2);
    }
    let shape = Shape::new(&dims);
    let flits: u32 = flag(&flags, "flits")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let phases: u64 = flag(&flags, "phases")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let horizon: u64 = flag(&flags, "horizon")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let seed: u64 = flag(&flags, "seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let switching = if flag(&flags, "cut-through").is_some() {
        Switching::CutThrough
    } else {
        Switching::StoreAndForward
    };
    let json = flag(&flags, "json").is_some();

    if flag(&flags, "slack").is_some() {
        return match certificate_slack(&shape, flits, phases, switching) {
            Ok(entry) => {
                if json {
                    println!("{}", entry.to_json());
                } else {
                    println!(
                        "{}: certified <= {} flits/link/phase, measured {} \
                         (slack {}, utilization {:.2}){}",
                        shape,
                        entry.static_peak_flits,
                        entry.dynamic_peak_flits,
                        entry.slack_flits,
                        entry.utilization,
                        if entry.violation { "  VIOLATION" } else { "" }
                    );
                }
                if entry.violation {
                    ExitCode::from(1)
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("slack report failed: {}", e);
                ExitCode::from(1)
            }
        };
    }

    let (emb, _) = embed_mesh(&shape);
    let pattern = flag(&flags, "pattern").unwrap_or("stencil");

    if pattern == "sweep" {
        let rates: [(u64, u64); 7] = [(1, 64), (1, 32), (1, 16), (1, 8), (1, 4), (1, 2), (1, 1)];
        return match rate_sweep(&emb, &rates, flits, horizon, seed, switching) {
            Ok(points) => {
                for p in &points {
                    if json {
                        println!("{}", p.to_json());
                    } else {
                        println!(
                            "  rate {}/{:<3} offered {:>9.3}  delivered {:>9.3}  \
                             avg latency {:>8.1}  makespan {}",
                            p.rate_num,
                            p.rate_den,
                            p.offered_rate,
                            p.delivered_rate,
                            p.avg_latency,
                            p.makespan
                        );
                    }
                }
                match saturation_knee(&points) {
                    Some(k) if !json => println!(
                        "saturation knee at rate {}/{}",
                        points[k].rate_num, points[k].rate_den
                    ),
                    None if !json => println!("no saturation within the ladder"),
                    _ => {}
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sweep failed: {}", e);
                ExitCode::from(1)
            }
        };
    }

    let period: u64 = flag(&flags, "period")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4 * flits as u64);
    let trace = if let Some(path) = flag(&flags, "trace-in") {
        let f = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot open {}: {}", path, e);
                return ExitCode::from(1);
            }
        };
        match Trace::load(&mut BufReader::new(f)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot load trace: {}", e);
                return ExitCode::from(1);
            }
        }
    } else {
        match pattern {
            "stencil" => stencil_trace(emb.edge_count(), flits, period, phases),
            "shifts" => shift_trace(&shape, flits, period, phases),
            "bursty" => bursty_trace(emb.guest_nodes(), flits, horizon, 16, 32, 0, seed),
            other => {
                eprintln!("unknown pattern '{}'", other);
                return ExitCode::from(2);
            }
        }
    };
    if let Some(path) = flag(&flags, "record") {
        let mut f = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {}: {}", path, e);
                return ExitCode::from(1);
            }
        };
        if let Err(e) = trace.record(&mut f) {
            eprintln!("record failed: {}", e);
            return ExitCode::from(1);
        }
        eprintln!("recorded {} events to {}", trace.len(), path);
    }

    let cfg = ReplayConfig {
        switching,
        window: flag(&flags, "window")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    };
    let report = match replay(&emb, &trace, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("replay failed: {}", e);
            return ExitCode::from(1);
        }
    };

    if flag(&flags, "check").is_some() {
        let again = match replay(&emb, &trace, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("replay check: second run failed: {}", e);
                return ExitCode::from(1);
            }
        };
        if report.to_json() != again.to_json() {
            eprintln!("replay check FAILED: reports differ between identical runs");
            return ExitCode::from(1);
        }
        if report.result.delivered != trace.len() {
            eprintln!(
                "replay check FAILED: delivered {} != injected {}",
                report.result.delivered,
                trace.len()
            );
            return ExitCode::from(1);
        }
        println!(
            "replay check OK: {} messages, deterministic, makespan {}",
            trace.len(),
            report.result.makespan
        );
        return ExitCode::SUCCESS;
    }

    if json {
        println!("{}", report.to_json());
        return ExitCode::SUCCESS;
    }
    println!(
        "{}: {} events over horizon {}, window {} ({} windows, warm-up {})",
        shape,
        trace.len(),
        report.horizon,
        report.window,
        report.windows.len(),
        report.warmup_windows
    );
    println!(
        "offered {:.3} flits/cycle, delivered-by-horizon {:.3}; peak link load {} \
         flits/window over {} directed links; makespan {}",
        report.offered_rate,
        report.delivered_rate,
        report.peak_link_flits_per_window,
        report.directed_links,
        report.result.makespan
    );
    let cap = 24usize;
    println!("  win   inj     dlv    p50    p99    maxlat  maxq   occupancy");
    for w in report.windows.iter().take(cap) {
        println!(
            "  {:>4} {:>6} {:>6} {:>6} {:>6} {:>8} {:>5}   {:.4}",
            w.index,
            w.injected,
            w.delivered,
            w.p50_latency,
            w.p99_latency,
            w.max_latency,
            w.max_queue_depth,
            w.occupancy
        );
    }
    if report.windows.len() > cap {
        println!(
            "  … {} more windows (use --json for all)",
            report.windows.len() - cap
        );
    }
    ExitCode::SUCCESS
}

fn verify(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: cubemesh verify FILE");
        return ExitCode::from(2);
    };
    let f = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {}: {}", path, e);
            return ExitCode::from(1);
        }
    };
    match read_embedding(&mut BufReader::new(f)) {
        Ok(emb) => match emb.verify() {
            Ok(()) => {
                let m = emb.metrics();
                println!(
                    "OK: {} nodes -> Q{}, dilation {}, congestion {}",
                    emb.guest_nodes(),
                    m.host_dim,
                    m.dilation,
                    m.congestion
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("INVALID: {}", e);
                ExitCode::from(1)
            }
        },
        Err(e) => {
            eprintln!("parse error: {}", e);
            ExitCode::from(1)
        }
    }
}
