//! Quickstart: embed a mesh into its minimal Boolean cube.
//!
//! ```text
//! cargo run --example quickstart -- 5 6 7
//! ```

use cubemesh::core::{construct, Planner};
use cubemesh::embedding::gray_mesh_embedding;
use cubemesh::topology::Shape;

fn main() {
    let dims: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("axis lengths must be integers"))
        .collect();
    let dims = if dims.is_empty() { vec![5, 6, 7] } else { dims };
    let shape = Shape::new(&dims);

    println!(
        "mesh {} — {} nodes, minimal cube Q{}",
        shape,
        shape.nodes(),
        shape.minimal_cube_dim()
    );

    // Plan a minimal-expansion dilation-≤2 embedding by graph
    // decomposition (Ho & Johnsson 1990, §4.2).
    let mut planner = Planner::new();
    match planner.plan(&shape) {
        Some(plan) => {
            println!("plan: {}", plan);
            let emb = construct(&shape, &plan).expect("plan lowers");
            emb.verify().expect("constructed embeddings always verify");
            let m = emb.metrics();
            println!(
                "embedded into Q{} — expansion {:.3}, dilation {}, congestion {}, avg dilation {:.3}",
                m.host_dim, m.expansion, m.dilation, m.congestion, m.avg_dilation
            );
        }
        None => {
            // The strategy has no minimal-expansion answer (e.g. 5x5x5);
            // fall back to the Gray code at higher expansion.
            let emb = gray_mesh_embedding(&shape);
            let m = emb.metrics();
            println!(
                "no minimal-expansion plan known (the paper leaves such meshes open);\n\
                 Gray-code fallback: Q{} — expansion {:.3}, dilation {}",
                m.host_dim, m.expansion, m.dilation
            );
        }
    }
}
