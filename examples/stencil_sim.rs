//! Simulate one stencil halo-exchange on a hypercube multiprocessor under
//! three embeddings of the same mesh — the paper's motivation, measured.
//!
//! ```text
//! cargo run --release --example stencil_sim -- 9 9 9 [flits]
//! ```

use cubemesh::core::embed_mesh;
use cubemesh::embedding::gray_mesh_embedding;
use cubemesh::netsim::{simulate, stencil_exchange};
use cubemesh::reshape::snake_embedding;
use cubemesh::topology::Shape;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("integer arguments"))
        .collect();
    let (dims, flits) = match args.len() {
        0 => (vec![9, 9, 9], 32),
        1 => (vec![args[0]], 32),
        n => {
            // Last arg is the flit count if more than 3 numbers given, or
            // if exactly 2 treat both as dims.
            if n == 4 {
                (args[..3].to_vec(), args[3] as u32)
            } else {
                (args.to_vec(), 32)
            }
        }
    };
    let shape = Shape::new(&dims);
    println!(
        "mesh {} — one halo exchange, {}-flit messages, store-and-forward\n",
        shape, flits
    );
    println!(
        "{:<18} {:>5} {:>9} {:>11} {:>10} {:>10}",
        "embedding", "cube", "dilation", "congestion", "makespan", "slowdown"
    );

    let (decomp, minimal) = embed_mesh(&shape);
    let rows = [
        (
            if minimal {
                "decomposition"
            } else {
                "gray (no plan)"
            },
            decomp,
        ),
        ("gray (expanded)", gray_mesh_embedding(&shape)),
        ("snake (minimal)", snake_embedding(&shape)),
    ];
    for (name, emb) in rows {
        let m = emb.metrics();
        let msgs = stencil_exchange(&emb, flits);
        let r = simulate(emb.host(), &msgs);
        println!(
            "{:<18} {:>5} {:>9} {:>11} {:>10} {:>9.2}x",
            name,
            format!("Q{}", m.host_dim),
            m.dilation,
            m.congestion,
            r.makespan,
            r.makespan as f64 / flits as f64
        );
    }
    println!(
        "\nA dilation-1 congestion-1 embedding finishes in exactly {} cycles;\n\
         the decomposition embedding pays ≤ 2x for minimal expansion, while\n\
         the snake curve degrades with mesh size — the trade-off the paper\n\
         resolves.",
        flits
    );
}
