//! Explore the Figure 2 census interactively: which method covers which
//! meshes, at any domain size.
//!
//! ```text
//! cargo run --release --example census_explorer -- 5      # census for li <= 2^5
//! cargo run --release --example census_explorer -- 21 9 5 # classify one mesh
//! ```

use cubemesh::census::census_3d;
use cubemesh::core::{classify3, Planner};
use cubemesh::topology::Shape;

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("integer arguments"))
        .collect();
    match args.len() {
        0 | 1 => {
            let n = args.first().copied().unwrap_or(5) as u32;
            let c = census_3d(n);
            let s = c.cumulative_percent();
            println!("census over all l1 x l2 x l3 with li <= {}:", 1 << n);
            println!("  S1 (Gray)              {:>6.2}%", s[0]);
            println!("  S2 (+pair via 2-D)     {:>6.2}%", s[1]);
            println!("  S3 (+3x3x3 / 3x3x7)    {:>6.2}%", s[2]);
            println!("  S4 (+axis splitting)   {:>6.2}%", s[3]);
            println!(
                "  constructive (planner) {:>6.2}%",
                c.constructive_percent()
            );
            println!(
                "  open meshes            {:>6.2}%",
                100.0 * c.uncovered as f64 / c.total as f64
            );
        }
        3 => {
            let (a, b, c) = (args[0], args[1], args[2]);
            println!("mesh {}x{}x{}:", a, b, c);
            match classify3(a, b, c) {
                Some(m) => println!("  paper classification: covered by method {:?}", m),
                None => println!("  paper classification: OPEN (fails methods 1-4)"),
            }
            let shape = Shape::new(&[a as usize, b as usize, c as usize]);
            match Planner::new().plan(&shape) {
                Some(plan) => println!("  constructive plan:    {}", plan),
                None => println!("  constructive plan:    none"),
            }
        }
        _ => eprintln!("usage: census_explorer [n | l1 l2 l3]"),
    }
}
