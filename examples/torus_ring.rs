//! Embed wraparound meshes (§6): rings and tori into minimal cubes.
//!
//! ```text
//! cargo run --example torus_ring -- 6 10
//! ```

use cubemesh::topology::Shape;
use cubemesh::torus::{corollary3_dilation2, corollary3_dilation3, embed_torus};

fn main() {
    let dims: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("integer axis lengths"))
        .collect();
    let dims = if dims.is_empty() { vec![6, 10] } else { dims };
    let shape = Shape::new(&dims);

    println!(
        "wraparound mesh {} — {} nodes, minimal cube Q{}",
        shape,
        shape.nodes(),
        shape.minimal_cube_dim()
    );
    if shape.rank() == 2 {
        println!(
            "Corollary 3 predicts: dilation ≤ 2: {}, dilation ≤ 3: {}",
            corollary3_dilation2(shape.len(0), shape.len(1)),
            corollary3_dilation3(shape.len(0), shape.len(1)),
        );
    }

    match embed_torus(&shape) {
        Some(out) => {
            out.embedding.verify().expect("torus embeddings verify");
            let m = out.embedding.metrics();
            println!(
                "embedded via {} submesh bits/axis {:?}, inner mesh {:?}",
                out.rule.iter().sum::<u8>(),
                out.rule,
                out.inner_dims
            );
            println!(
                "Q{} — expansion {:.3}, dilation {} (bound {}), congestion {}",
                m.host_dim, m.expansion, m.dilation, out.dilation_bound, m.congestion
            );
        }
        None => println!("no §6 construction lands in the minimal cube for this torus"),
    }
}
