//! The paper's §7 example: run a 19×19 mesh on a 32-processor hypercube
//! (many-to-one embedding with dilation one and near-optimal load).
//!
//! ```text
//! cargo run --example partition_1919
//! ```

use cubemesh::embedding::{load_factor, verify_many_to_one};
use cubemesh::manytoone::{corollary5, optimal_load_factor};
use cubemesh::topology::Shape;

fn main() {
    let shape = Shape::new(&[19, 19]);
    let n = 5;
    println!(
        "mesh {} ({} nodes) onto Q{} ({} processors)",
        shape,
        shape.nodes(),
        n,
        1 << n
    );

    let emb = corollary5(&shape, n).expect("Corollary 5 cover exists (24x20)");
    verify_many_to_one(&emb).expect("many-to-one embedding is well-formed");

    let m = emb.metrics();
    let lf = load_factor(emb.map(), emb.host());
    let optimal = optimal_load_factor(shape.nodes(), n);
    println!("dilation {}, congestion {}", m.dilation, m.congestion);
    println!(
        "load-factor {} vs optimal {} (paper reports 15 vs 12; within 2x as Corollary 5 promises)",
        lf, optimal
    );

    // Show the processor loads.
    let mut loads = vec![0u32; 1 << n];
    for &a in emb.map() {
        loads[a as usize] += 1;
    }
    println!("\nper-processor mesh-node counts:");
    for (p, l) in loads.iter().enumerate() {
        print!("{:>3}{}", l, if (p + 1) % 8 == 0 { "\n" } else { " " });
    }
}
