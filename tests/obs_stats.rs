//! End-to-end checks of the instrumentation layer against real planner
//! runs: expected rule counters after planning 21×9×5, and snapshot JSON
//! round-tripping.
//!
//! The obs registry and enable switch are process-global, so everything
//! lives in one `#[test]` — integration tests in this file would otherwise
//! race each other under the parallel test runner.

use cubemesh::core::Planner;
use cubemesh::obs;
use cubemesh::topology::Shape;

#[test]
fn planning_21x9x5_bumps_planner_counters() {
    obs::set_enabled(true);
    obs::reset();

    let plan = Planner::new().plan(&Shape::new(&[21, 9, 5]));
    assert!(plan.is_some(), "21x9x5 is a worked example of the paper");

    let snap = obs::snapshot();
    obs::set_enabled(false);

    // The planner must have recursed: 21×9×5 decomposes (the paper's §4.2
    // worked example), so sub-shapes were planned and memoized.
    let misses = snap.counter("planner.memo.miss").unwrap_or(0);
    assert!(
        misses >= 2,
        "expected recursive sub-plans, got {misses} misses"
    );

    // Every rule the planner tries on a 3-D shape records an attempt.
    for rule in ["gray", "direct", "direct_ext", "peel_pow2"] {
        let name = format!("planner.rule.{rule}.attempt");
        let n = snap.counter(&name).unwrap_or(0);
        assert!(n >= 1, "{name} never bumped");
    }

    // Exactly one rule family succeeded at the top level; at least one
    // `.hit` must exist somewhere in the recursion.
    let hits: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("planner.rule.") && k.ends_with(".hit"))
        .map(|(_, &v)| v)
        .sum();
    assert!(hits >= 1, "a plan was produced but no rule recorded a hit");

    // Recursion depth histogram saw every plan_dims level.
    let depth = snap.histogram("planner.depth").expect("depth histogram");
    assert_eq!(depth.count, misses, "one depth sample per memo miss");
    assert!(depth.max >= 1);

    // The snapshot survives a JSON round trip bit-for-bit.
    let json = snap.to_json();
    let back = obs::Snapshot::from_json(&json).expect("own JSON parses");
    assert_eq!(snap, back, "JSON round trip must be lossless");

    // And the text rendering carries the derived memo hit rate.
    let text = snap.to_text();
    assert!(text.contains("planner.memo.hit_rate"), "{text}");
}
