//! End-to-end: embeddings drive the network simulator and the measured
//! communication cost tracks dilation/congestion as the paper argues.

use cubemesh::core::embed_mesh;
use cubemesh::embedding::gray_mesh_embedding;
use cubemesh::netsim::{axis_shift, simulate, stencil_exchange};
use cubemesh::reshape::snake_embedding;
use cubemesh::topology::Shape;

/// Gray embedding: one halo exchange takes exactly the message time.
#[test]
fn gray_halo_exchange_is_optimal() {
    for dims in [vec![8usize, 8], vec![4, 4, 4]] {
        let shape = Shape::new(&dims);
        let emb = gray_mesh_embedding(&shape);
        let msgs = stencil_exchange(&emb, 24);
        let r = simulate(emb.host(), &msgs);
        assert_eq!(r.makespan, 24, "{:?}", dims);
        assert_eq!(r.delivered, 2 * shape.mesh_edges());
    }
}

/// The decomposition embedding stays within ~4x of ideal (dilation 2,
/// congestion 2 compound at worst multiplicatively), while the snake
/// curve degrades far beyond it on elongated meshes.
#[test]
fn decomposition_beats_snake_on_elongated_meshes() {
    let shape = Shape::new(&[5, 48]);
    let flits = 16;

    let (decomp, minimal) = embed_mesh(&shape);
    assert!(minimal, "5x48 = (5x3)·(1x16) should be plannable");
    let rd = simulate(decomp.host(), &stencil_exchange(&decomp, flits));

    let snake = snake_embedding(&shape);
    let rs = simulate(snake.host(), &stencil_exchange(&snake, flits));

    assert!(
        rd.makespan <= 4 * flits as u64,
        "decomposition makespan {} too slow",
        rd.makespan
    );
    assert!(
        rs.makespan > rd.makespan,
        "snake {} should lose to decomposition {}",
        rs.makespan,
        rd.makespan
    );
}

/// Axis shifts complete and touch only the right number of messages.
#[test]
fn axis_shifts() {
    let shape = Shape::new(&[6, 11, 7]);
    let (emb, minimal) = embed_mesh(&shape);
    assert!(minimal);
    for axis in 0..3 {
        let msgs = axis_shift(&emb, &shape, axis, 8);
        let expect = shape.nodes() / shape.len(axis) * (shape.len(axis) - 1);
        assert_eq!(msgs.len(), expect, "axis {}", axis);
        let r = simulate(emb.host(), &msgs);
        assert_eq!(r.delivered, expect);
        assert!(r.makespan <= 4 * 8, "axis {} makespan {}", axis, r.makespan);
    }
}

/// Expansion matters too: the Gray embedding of 9x9x9 wastes 1024-729
/// processors; the decomposition embedding delivers the same exchange on
/// the minimal cube without blowing up the makespan.
#[test]
fn minimal_expansion_without_makespan_blowup() {
    let shape = Shape::new(&[9, 9, 9]);
    let flits = 32u32;

    let gray = gray_mesh_embedding(&shape);
    assert_eq!(gray.host().dim(), 12);
    let rg = simulate(gray.host(), &stencil_exchange(&gray, flits));

    let (decomp, minimal) = embed_mesh(&shape);
    assert!(minimal);
    assert_eq!(decomp.host().dim(), 10);
    let rd = simulate(decomp.host(), &stencil_exchange(&decomp, flits));

    assert_eq!(rg.makespan, flits as u64);
    assert!(
        rd.makespan <= 4 * flits as u64,
        "decomposition {} vs gray {}",
        rd.makespan,
        rg.makespan
    );
}
