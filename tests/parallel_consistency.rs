//! The sharded metrics/verify engines must agree *exactly* with their
//! sequential counterparts — same numbers, same first error — and the
//! implicit mesh edge enumeration must match the materialized list. These
//! are the correctness contracts behind the parallel construction
//! pipeline; `cubemesh-bench` re-asserts the metrics contract on
//! paper-scale shapes.

use cubemesh::core::{construct, Planner};
use cubemesh::embedding::builders::mesh_edge_list;
use cubemesh::embedding::metrics::{metrics_par, metrics_seq};
use cubemesh::embedding::verify::{
    verify_embedding_par, verify_embedding_seq, verify_many_to_one_par, verify_many_to_one_seq,
};
use cubemesh::embedding::{
    gray_mesh_embedding, mesh_embedding_with_router, Embedding, MeshEdgeView, RouteSet,
    RouteStrategy,
};
use cubemesh::manytoone::fold_to_dim;
use cubemesh::topology::{Hypercube, Mesh, Shape};
use proptest::prelude::*;

fn random_embedding(dims: &[usize], seed: u64, balanced: bool) -> Embedding {
    use rand::prelude::*;
    use rand::rngs::StdRng;
    let shape = Shape::new(dims);
    let host = Hypercube::new(shape.minimal_cube_dim() + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut addrs: Vec<u64> = (0..host.nodes()).collect();
    addrs.shuffle(&mut rng);
    let map = addrs[..shape.nodes()].to_vec();
    let strategy = if balanced {
        RouteStrategy::Balanced { passes: 2 }
    } else {
        RouteStrategy::Canonical
    };
    mesh_embedding_with_router(&shape, host, map, strategy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn metrics_par_equals_seq_on_random_embeddings(
        l1 in 2usize..6,
        l2 in 2usize..7,
        seed in any::<u64>(),
        balanced in any::<bool>(),
    ) {
        let emb = random_embedding(&[l1, l2], seed, balanced);
        prop_assert_eq!(metrics_seq(&emb), metrics_par(&emb));
    }

    #[test]
    fn verify_par_equals_seq_on_random_embeddings(
        l1 in 2usize..6,
        l2 in 2usize..7,
        seed in any::<u64>(),
    ) {
        let emb = random_embedding(&[l1, l2], seed, false);
        prop_assert_eq!(verify_embedding_seq(&emb), verify_embedding_par(&emb));
    }

    /// Corrupt one route of a valid embedding; both engines must report
    /// the *same* first error.
    #[test]
    fn verify_par_reports_same_error_as_seq(
        l1 in 2usize..5,
        l2 in 2usize..6,
        seed in any::<u64>(),
        victim in any::<u64>(),
    ) {
        let emb = random_embedding(&[l1, l2], seed, false);
        let (nodes, edges, host, map, routes) = emb.into_parts();
        let bad = (victim % routes.len() as u64) as usize;
        let mut corrupted = RouteSet::with_capacity(routes.len(), 0);
        for i in 0..routes.len() {
            if i == bad {
                // Jump outside the cube: triggers adjacency/range errors.
                let r = routes.route(i);
                let mut path = r.to_vec();
                path[0] = host.nodes() + 7;
                corrupted.push(&path);
            } else {
                corrupted.push(routes.route(i));
            }
        }
        let emb = Embedding::from_guest(nodes, edges, host, map, corrupted);
        let seq = verify_embedding_seq(&emb);
        prop_assert!(seq.is_err());
        prop_assert_eq!(seq, verify_embedding_par(&emb));
    }

    /// Folding collapses some routes to single-node (dilation-0) paths and
    /// makes the map many-to-one; the parallel engines must still agree.
    #[test]
    fn many_to_one_folds_agree(
        l1 in 2usize..6,
        l2 in 2usize..6,
        drop in 1u32..3,
    ) {
        let shape = Shape::new(&[l1, l2]);
        let emb = gray_mesh_embedding(&shape);
        let n = emb.host().dim();
        let folded = fold_to_dim(&emb, n.saturating_sub(drop));
        prop_assert_eq!(
            verify_many_to_one_seq(&folded),
            verify_many_to_one_par(&folded)
        );
        prop_assert_eq!(metrics_seq(&folded), metrics_par(&folded));
    }

    #[test]
    fn implicit_edges_match_materialized_list(
        dims in prop::collection::vec(1usize..7, 1..5),
    ) {
        let shape = Shape::new(&dims);
        let view = MeshEdgeView::new(&shape);
        let listed = mesh_edge_list(&Mesh::new(shape.clone()));
        let implicit: Vec<(u32, u32)> = view.iter().collect();
        prop_assert_eq!(&implicit, &listed);
        prop_assert_eq!(view.edge_count(), listed.len());
        // Chunked enumeration covers the same edges in the same order.
        let emb = gray_mesh_embedding(&shape);
        prop_assert_eq!(emb.edges_vec(), listed);
    }
}

#[test]
fn planner_constructions_agree_across_engines() {
    // Shapes whose plans exercise Gray, Product, and restriction paths.
    for dims in [
        vec![12usize, 20],
        vec![3, 3, 23],
        vec![6, 6, 6],
        vec![4, 8, 16],
        vec![5, 6, 7],
    ] {
        let shape = Shape::new(&dims);
        let plan = Planner::new()
            .plan(&shape)
            .unwrap_or_else(|| panic!("no plan for {:?}", dims));
        let emb = construct(&shape, &plan).expect("plan lowers");
        assert_eq!(
            verify_embedding_seq(&emb),
            verify_embedding_par(&emb),
            "{:?}",
            dims
        );
        assert!(verify_embedding_seq(&emb).is_ok(), "{:?}", dims);
        assert_eq!(metrics_seq(&emb), metrics_par(&emb), "{:?}", dims);
    }
}

/// Pool thread-count invariance: the *same* public entry points (no
/// `_seq`/`_par` selection) must produce byte-identical artifacts whether
/// the pool runs one worker, two, or eight — chunk merges are
/// order-preserving and every reduction is exact-integer, so stealing
/// order must never show through.
#[test]
fn artifacts_identical_across_thread_counts() {
    use cubemesh::pool::with_threads;
    let shape = Shape::new(&[6, 6, 6]);
    let build = |threads: usize| {
        with_threads(threads, || {
            let emb = gray_mesh_embedding(&shape);
            let map = emb.map().to_vec();
            let routes: Vec<Vec<u64>> = emb.routes().iter().map(|r| r.to_vec()).collect();
            let metrics = emb.metrics();
            let verify = emb.verify();
            (map, routes, metrics, verify)
        })
    };
    let base = build(1);
    for threads in [2usize, 8] {
        let got = build(threads);
        assert_eq!(got.0, base.0, "node map diverged at {threads} threads");
        assert_eq!(got.1, base.1, "routes diverged at {threads} threads");
        assert_eq!(got.2, base.2, "metrics diverged at {threads} threads");
        assert_eq!(got.3, base.3, "verify diverged at {threads} threads");
    }
}

/// Replay reports (windowed queueing series and sweep points) serialize
/// to the same JSON under any pool width: the simulation itself is
/// sequential per rate, and the sweep's parallel collect preserves rate
/// order.
#[test]
fn replay_reports_identical_across_thread_counts() {
    use cubemesh::netsim::Switching;
    use cubemesh::pool::with_threads;
    use cubemesh::replay::{rate_sweep, replay, ReplayConfig};
    let shape = Shape::new(&[4, 4, 4]);
    let run = |threads: usize| {
        with_threads(threads, || {
            let emb = gray_mesh_embedding(&shape);
            let trace = cubemesh::replay::rate_trace(emb.guest_nodes(), 4, 1, 8, 64, 11);
            let cfg = ReplayConfig {
                switching: Switching::StoreAndForward,
                window: 8,
            };
            let report = replay(&emb, &trace, &cfg).expect("replay");
            let rates = [(1u64, 16u64), (1, 4), (1, 1)];
            let points =
                rate_sweep(&emb, &rates, 4, 64, 7, Switching::StoreAndForward).expect("sweep");
            let sweep_json: Vec<String> = points.iter().map(|p| p.to_json()).collect();
            (report.to_json(), sweep_json)
        })
    };
    let base = run(1);
    for threads in [2usize, 8] {
        let got = run(threads);
        assert_eq!(got.0, base.0, "replay report diverged at {threads} threads");
        assert_eq!(got.1, base.1, "sweep points diverged at {threads} threads");
    }
}

#[test]
fn zero_and_single_edge_guests_agree() {
    // Single node, no edges.
    let e = Embedding::new(1, vec![], Hypercube::new(0), vec![0], RouteSet::new());
    assert_eq!(metrics_seq(&e), metrics_par(&e));
    assert_eq!(verify_embedding_seq(&e), verify_embedding_par(&e));
    // One edge, dilated route.
    let mut rs = RouteSet::new();
    rs.push(&[0b00, 0b01, 0b11]);
    let e = Embedding::new(2, vec![(0, 1)], Hypercube::new(2), vec![0b00, 0b11], rs);
    assert_eq!(metrics_seq(&e), metrics_par(&e));
    assert_eq!(verify_embedding_seq(&e), verify_embedding_par(&e));
}
