//! Property tests on the graph substrate: the invariants every other
//! crate builds on.

use cubemesh::gray::{gray, gray_inverse};
use cubemesh::topology::{ceil_pow2, cube_dim, hamming, product, Hypercube, Mesh, Shape, Torus};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Row-major indexing is a bijection for arbitrary shapes.
    #[test]
    fn shape_index_bijection(dims in prop::collection::vec(1usize..7, 1..4)) {
        let shape = Shape::new(&dims);
        let mut seen = vec![false; shape.nodes()];
        for c in shape.iter_coords() {
            let i = shape.index(&c);
            prop_assert!(!seen[i]);
            seen[i] = true;
            prop_assert_eq!(shape.coords(i), c);
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Mesh BFS distance equals the L1 (Manhattan) coordinate distance.
    #[test]
    fn mesh_distance_is_l1(
        l1 in 1usize..5, l2 in 1usize..5, l3 in 1usize..4,
    ) {
        let mesh = Mesh::from_dims(&[l1, l2, l3]);
        let g = mesh.to_graph();
        let dist = g.bfs_distances(0); // from coordinate (0,0,0)
        for c in mesh.shape().iter_coords() {
            let l1_dist: usize = c.iter().sum();
            prop_assert_eq!(dist[mesh.shape().index(&c)] as usize, l1_dist);
        }
    }

    /// Hypercube BFS distance equals Hamming distance (checked per node).
    #[test]
    fn cube_distance_is_hamming(n in 1u32..6, src in 0u64..32) {
        let q = Hypercube::new(n);
        let src = src % q.nodes();
        let g = q.to_graph();
        let dist = g.bfs_distances(src as usize);
        for v in 0..q.nodes() {
            prop_assert_eq!(dist[v as usize], hamming(src, v));
        }
    }

    /// Torus distance never exceeds mesh distance, and the product-graph
    /// edge-count identity of Definition 4 holds.
    #[test]
    fn torus_shortcuts_and_product_counts(
        l1 in 2usize..5, l2 in 2usize..6,
    ) {
        let mesh = Mesh::from_dims(&[l1, l2]).to_graph();
        let torus = Torus::from_dims(&[l1, l2]).to_graph();
        let dm = mesh.bfs_distances(0);
        let dt = torus.bfs_distances(0);
        for v in 0..mesh.nodes() {
            prop_assert!(dt[v] <= dm[v]);
        }

        let p = product(&mesh, &torus).unwrap();
        prop_assert_eq!(
            p.edge_count(),
            mesh.nodes() * torus.edge_count() + torus.nodes() * mesh.edge_count()
        );
        prop_assert_eq!(p.nodes(), mesh.nodes() * torus.nodes());
    }

    /// ⌈·⌉₂ algebra used throughout the expansion arguments.
    #[test]
    fn bracket2_algebra(a in 1u64..100_000, b in 1u64..100_000) {
        prop_assert!(ceil_pow2(a) >= a);
        prop_assert!(ceil_pow2(a) < 2 * a);
        prop_assert!(ceil_pow2(a * b) <= ceil_pow2(a) * ceil_pow2(b));
        prop_assert_eq!(cube_dim(ceil_pow2(a)), cube_dim(a));
        prop_assert!(cube_dim(a * b) <= cube_dim(a) + cube_dim(b));
        prop_assert!(cube_dim(a * b) + 1 >= cube_dim(a) + cube_dim(b));
    }

    /// Gray bijection and adjacency at arbitrary width.
    #[test]
    fn gray_properties(x in any::<u64>()) {
        prop_assert_eq!(gray_inverse(gray(x)), x);
        if x < u64::MAX {
            prop_assert_eq!(hamming(gray(x), gray(x + 1)), 1);
        }
    }

    /// Mesh and torus edge enumerations agree with the closed-form counts
    /// and every endpoint pair is adjacent.
    #[test]
    fn edge_enumeration_consistency(dims in prop::collection::vec(1usize..6, 1..4)) {
        let shape = Shape::new(&dims);
        let mesh = Mesh::new(shape.clone());
        prop_assert_eq!(mesh.edges().count(), shape.mesh_edges());
        let torus = Torus::new(shape.clone());
        prop_assert_eq!(torus.edges().count(), shape.torus_edges());
        for e in torus.edges() {
            let (u, v) = torus.edge_endpoints(e);
            prop_assert!(u < shape.nodes() && v < shape.nodes() && u != v);
        }
    }
}
