//! Property tests for the torus and many-to-one certificate layers:
//! whatever the torus driver or the Corollary 5 fold planner emits for a
//! random shape must certify, small enough shapes must also construct
//! within their certified bounds, and corrupted plans must be rejected
//! with an error — never a panic.

use cubemesh::core::Planner;
use cubemesh::topology::{cube_dim, Shape};
use cubemesh_audit::{
    certify_fold, certify_torus_combo, crosscheck_contract_shape, crosscheck_fold_shape,
    crosscheck_torus_shape, torus_floors, AuditError,
};
use cubemesh_manytoone::plan_corollary5;
use cubemesh_torus::feasible_combos;
use proptest::prelude::*;

/// Node-count ceiling for actually constructing the embedding inside a
/// property test; larger shapes are still statically certified.
const CONSTRUCT_CAP: usize = 2048;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random wraparound shapes up to 64³: the certifier and the driver
    /// agree on coverage, certificates respect the torus floors, and
    /// constructed embeddings stay within their certificate.
    #[test]
    fn torus_certificates_dominate_measured(
        dims in prop::collection::vec(1usize..65, 1..4),
    ) {
        let shape = Shape::new(&dims);
        let mut planner = Planner::new();
        let construct_it = shape.nodes() <= CONSTRUCT_CAP;
        let r = crosscheck_torus_shape(&mut planner, &shape, construct_it);
        prop_assert!(r.is_ok(), "{}: {}", shape, r.unwrap_err());
        if let Ok(Some(cert)) = r {
            let floors = torus_floors(&shape, cert.host_dim);
            prop_assert!(cert.dilation_bound >= floors.dilation);
            prop_assert!(cert.congestion_bound >= floors.congestion);
        }
    }

    /// Random shapes folded 1–2 dims below their minimal cube: every
    /// cover the fold planner finds certifies and cross-checks, load
    /// included.
    #[test]
    fn fold_certificates_dominate_measured(
        dims in prop::collection::vec(1usize..65, 1..4),
        drop in 1u32..3,
    ) {
        let shape = Shape::new(&dims);
        let minimal = cube_dim(shape.nodes() as u64);
        if let Some(n) = minimal.checked_sub(drop).filter(|&n| n >= 1) {
            let construct_it = shape.nodes() <= CONSTRUCT_CAP;
            let r = crosscheck_fold_shape(&shape, n, construct_it);
            prop_assert!(r.is_ok(), "{} -> Q_{}: {}", shape, n, r.unwrap_err());
        }
    }

    /// Random contraction factors up to 8 per axis: the Lemma 5
    /// certificate dominates the constructed contraction.
    #[test]
    fn contract_certificates_dominate_measured(
        dims in prop::collection::vec(1usize..9, 1..4),
        factors in prop::collection::vec(1usize..9, 3..4),
    ) {
        let shape = Shape::new(&dims);
        if shape.nodes() * factors.iter().product::<usize>() <= CONSTRUCT_CAP {
            let mut planner = Planner::new();
            let r = crosscheck_contract_shape(&mut planner, &shape, &factors[..shape.rank()]);
            prop_assert!(r.is_ok(), "{} x {:?}: {}", shape, factors, r.unwrap_err());
        }
    }

    /// Corrupting a feasible torus combination must yield a precise
    /// error, not a panic and not a certificate.
    #[test]
    fn corrupted_torus_combos_error_cleanly(
        dims in prop::collection::vec(2usize..33, 1..4),
        tweak in 0usize..4,
        bump in 1u8..4,
    ) {
        let shape = Shape::new(&dims);
        let mut planner = Planner::new();
        let combos = feasible_combos(&shape, &mut planner);
        if let Some(combo) = combos.first() {
            let mut bad = combo.clone();
            match tweak {
                0 => bad.rule[0] = bad.rule[0].wrapping_add(bump * 2),
                1 => bad.cbits = bad.cbits.wrapping_add(bump as u32),
                2 => bad.rule.push(bump),
                _ => {
                    let mut d: Vec<usize> = bad.inner_shape.dims().to_vec();
                    d[0] += bump as usize;
                    bad.inner_shape = Shape::new(&d);
                }
            }
            let r = certify_torus_combo(&shape, &bad);
            prop_assert!(
                matches!(r, Err(AuditError::TorusComboInfeasible { .. })),
                "{}: corrupted combo produced {:?}", shape, r
            );
        }
    }

    /// Corrupting a fold cover must yield an error, not a panic — even
    /// with absurd bit counts that would overflow a shift.
    #[test]
    fn corrupted_fold_plans_error_cleanly(
        dims in prop::collection::vec(2usize..33, 1..4),
        tweak in 0usize..4,
        bump in 1u32..1200,
    ) {
        let shape = Shape::new(&dims);
        let minimal = cube_dim(shape.nodes() as u64);
        let n = minimal.saturating_sub(1).max(1);
        if let Some(plan) = plan_corollary5(&shape, n) {
            let mut bad = plan.clone();
            match tweak {
                0 => bad.lprime[0] = 0,
                1 => bad.ns[0] = bad.ns[0].wrapping_add(bump),
                2 => bad.ns.push(1),
                _ => bad.lprime[0] = bad.lprime[0].saturating_mul(4),
            }
            prop_assert!(
                certify_fold(&shape, &bad).is_err(),
                "{}: corrupted fold plan certified", shape
            );
        }
    }
}
