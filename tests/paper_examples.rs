//! End-to-end checks of every worked example in the paper, through the
//! public facade.

use cubemesh::core::{classify3, construct, embed_mesh, Method, Planner};
use cubemesh::topology::{cube_dim, Shape};

/// §4.2 step 1: "the embedding of a 12×16×20×32 mesh is reduced to the
/// problem of embedding a 12×20 and a 16×32 mesh."
#[test]
fn strategy_step1_power_of_two_axes() {
    let shape = Shape::new(&[12, 16, 20, 32]);
    let mut planner = Planner::new();
    let plan = planner.plan(&shape).expect("12x16x20x32 is coverable");
    let emb = construct(&shape, &plan).expect("plan lowers");
    emb.verify().unwrap();
    let m = emb.metrics();
    assert!(m.is_minimal_expansion());
    assert!(m.dilation <= 2);
    assert!(m.congestion <= 2);
}

/// §4.2 step 2: "the embedding of a 12×20 mesh can be reduced to the
/// embedding of a 3×5 and a 4×4 mesh" and "embedding a 3×25×3 mesh can be
/// reduced to the embedding of two 3×5 meshes."
#[test]
fn strategy_step2_decompositions() {
    for dims in [vec![12usize, 20], vec![3, 25, 3]] {
        let shape = Shape::new(&dims);
        let (emb, minimal) = embed_mesh(&shape);
        assert!(minimal, "{:?}", dims);
        emb.verify().unwrap();
        let m = emb.metrics();
        assert!(m.is_minimal_expansion());
        assert!(m.dilation <= 2, "{:?}: dilation {}", dims, m.dilation);
        assert!(m.congestion <= 2, "{:?}: congestion {}", dims, m.congestion);
    }
}

/// §4.2 step 3: "a 3×3×23 mesh can be extended to a 3×3×25 mesh."
#[test]
fn strategy_step3_extension() {
    let shape = Shape::new(&[3, 3, 23]);
    let (emb, minimal) = embed_mesh(&shape);
    assert!(minimal);
    emb.verify().unwrap();
    assert_eq!(emb.host().dim(), cube_dim(3 * 3 * 23));
    assert!(emb.metrics().dilation <= 2);
}

/// §5: "more than one relative expansion may be one, such as for a
/// 5×10×11 mesh, or no relative expansion may be one, such as for the
/// 6×11×7 mesh."
#[test]
fn pairing_examples() {
    // 5x10x11: at least two pairings minimal.
    let l = [5u64, 10, 11];
    let total = cube_dim(l.iter().product());
    let minimal_pairings = [(0, 1, 2), (1, 2, 0), (2, 0, 1)]
        .iter()
        .filter(|&&(a, b, c)| cube_dim(l[a] * l[b]) + cube_dim(l[c]) == total)
        .count();
    assert!(minimal_pairings >= 2, "got {}", minimal_pairings);

    // 6x11x7: none.
    let l = [6u64, 11, 7];
    let total = cube_dim(l.iter().product());
    for (a, b, c) in [(0, 1, 2), (1, 2, 0), (2, 0, 1)] {
        assert_ne!(cube_dim(l[a] * l[b]) + cube_dim(l[c]), total);
    }
    // …but it is still covered (by the extended method 3: 6x12x7 =
    // (3x3x7)·(2x4x1) shares 6x11x7's minimal cube — or by method 4).
    let m = classify3(6, 11, 7).expect("6x11x7 is covered");
    assert!(m == Method::Direct3d || m == Method::Split, "{:?}", m);
}

/// §5: "for a 5×6×7 mesh, the first two axes (of length five and six
/// respectively) should be chosen for the two-dimensional embedding."
#[test]
fn axis_choice_5_6_7() {
    let total = cube_dim(5 * 6 * 7);
    assert_eq!(cube_dim(5 * 6) + cube_dim(7), total); // (5,6) pairing works
    assert_ne!(cube_dim(6 * 7) + cube_dim(5), total);
    assert_ne!(cube_dim(7 * 5) + cube_dim(6), total);
    let (emb, minimal) = embed_mesh(&Shape::new(&[5, 6, 7]));
    assert!(minimal);
    emb.verify().unwrap();
    assert!(emb.metrics().dilation <= 2);
}

/// §5: "a 21×9×5 mesh … can be embedded with minimal expansion by
/// combining the 7×9×1 direct embedding with the 3×1×5 direct embedding."
#[test]
fn mesh_21_9_5() {
    assert_eq!(classify3(21, 9, 5), Some(Method::Split));
    let (emb, minimal) = embed_mesh(&Shape::new(&[21, 9, 5]));
    assert!(minimal);
    emb.verify().unwrap();
    let m = emb.metrics();
    assert!(m.dilation <= 2);
    assert!(m.congestion <= 2);
    assert_eq!(m.host_dim, cube_dim(21 * 9 * 5));
}

/// §5: the cumulative percentages at n = 9 are 28.5 / 81.5 / 82.9 /
/// 96.1 — checked at census scale in EXPERIMENTS.md; here the cheap n = 4
/// prefix sanity-checks the pipeline.
#[test]
fn census_pipeline_smoke() {
    let c = cubemesh::census::census_3d(4);
    let s = c.cumulative_percent();
    assert!(s[0] < s[1] && s[1] <= s[2] && s[2] <= s[3]);
    assert!(s[3] > 90.0);
    assert!(c.constructive_percent() <= s[3] + 1e-9);
}

/// §5: the open-mesh lists.
#[test]
fn exception_lists_match_paper() {
    assert_eq!(cubemesh::census::exceptions_up_to(128), vec![(5, 5, 5)]);
    assert_eq!(
        cubemesh::census::exceptions_up_to(256),
        vec![(3, 5, 17), (3, 9, 9), (5, 5, 5), (5, 5, 10), (5, 7, 7)]
    );
}

/// Gray-code fallback for open meshes still verifies.
#[test]
fn open_mesh_falls_back_to_gray() {
    let (emb, minimal) = embed_mesh(&Shape::new(&[5, 5, 5]));
    assert!(!minimal);
    emb.verify().unwrap();
    let m = emb.metrics();
    assert_eq!(m.dilation, 1);
    assert_eq!(m.host_dim, 9); // 3+3+3 Gray dims vs minimal 7
}
