//! Planner/classification coherence: every plan constructs, verifies, and
//! meets its bounds; constructive coverage never exceeds the paper's
//! existence classification; the fast census mirror agrees with the real
//! planner.

use cubemesh::census::cover::{workspace_catalog, Cover2, Cover3};
use cubemesh::core::{classify3, construct, Planner};
use cubemesh::topology::Shape;

/// Exhaustive over a small 3-D domain: plans construct and verify.
#[test]
fn all_plans_construct_and_verify_small_domain() {
    let mut planner = Planner::new();
    for a in 1..=8usize {
        for b in a..=8usize {
            for c in b..=8usize {
                let shape = Shape::new(&[a, b, c]);
                if let Some(plan) = planner.plan(&shape) {
                    let emb = construct(&shape, &plan).expect("plan lowers");
                    emb.verify().unwrap_or_else(|e| panic!("{}: {}", shape, e));
                    let m = emb.metrics();
                    assert!(m.is_minimal_expansion(), "{}", shape);
                    assert!(
                        m.dilation <= plan.dilation_bound(),
                        "{}: {} > {}",
                        shape,
                        m.dilation,
                        plan.dilation_bound()
                    );
                    assert!(
                        m.congestion <= plan.congestion_bound(),
                        "{}: {} > {}",
                        shape,
                        m.congestion,
                        plan.congestion_bound()
                    );
                }
            }
        }
    }
}

/// Constructive ⊆ classified: our planner never claims a mesh the paper's
/// (strictly more generous, Chan-backed) classification rejects.
#[test]
fn constructive_is_subset_of_classification() {
    let mut planner = Planner::new();
    for a in 1..=10usize {
        for b in a..=14usize {
            for c in b..=18usize {
                let shape = Shape::new(&[a, b, c]);
                if planner.covers(&shape) {
                    assert!(
                        classify3(a as u64, b as u64, c as u64).is_some(),
                        "{} planned but unclassified",
                        shape
                    );
                }
            }
        }
    }
}

/// The census's fast existence mirror agrees with the planner on a
/// scattered sample (the dense small-domain check lives in the census
/// crate's unit tests).
#[test]
fn census_mirror_agrees_on_sample() {
    let (two, three) = workspace_catalog();
    let c2 = Cover2::build(256, two);
    let mut c3 = Cover3::new(&c2, &three);
    let mut planner = Planner::new();
    let mut mixed = 0usize;
    for (a, b, c) in [
        (21usize, 9usize, 5usize),
        (27, 3, 3),
        (5, 5, 5),
        (33, 9, 5),
        (48, 36, 20),
        (100, 100, 100),
        (63, 65, 17),
        (3, 3, 23),
        (255, 3, 3),
        (17, 34, 51),
    ] {
        let shape = Shape::new(&[a, b, c]);
        let covered = c3.covered(a, b, c);
        assert_eq!(covered, planner.covers(&shape), "{}", shape);
        if covered {
            mixed += 1;
        }
    }
    assert!(mixed >= 4, "sample should include covered shapes");
}

/// Planner determinism: planning twice yields the same plan.
#[test]
fn planner_is_deterministic() {
    for dims in [vec![21usize, 9, 5], vec![12, 20], vec![9, 9, 9]] {
        let shape = Shape::new(&dims);
        let p1 = Planner::new().plan(&shape);
        let p2 = Planner::new().plan(&shape);
        assert_eq!(p1, p2);
    }
}
