//! Integration sweeps for the §6 (wraparound) and §7 (many-to-one)
//! extensions.

use cubemesh::embedding::{load_factor, verify_many_to_one};
use cubemesh::manytoone::{contract, corollary5, optimal_load_factor};
use cubemesh::topology::Shape;
use cubemesh::torus::{corollary3_dilation2, corollary3_dilation3, embed_torus};

/// Corollary 3, measured: every 2-D torus its predicate claims at
/// dilation ≤ 2 embeds at dilation ≤ 2 when the driver finds a plan;
/// likewise ≤ 3.
#[test]
fn corollary3_sweep() {
    let mut built2 = 0;
    let mut built3 = 0;
    let mut residue_gap = Vec::new();
    for l1 in 3..=20usize {
        for l2 in l1..=20usize {
            let shape = Shape::new(&[l1, l2]);
            if let Some(out) = embed_torus(&shape) {
                out.embedding.verify().unwrap();
                let m = out.embedding.metrics();
                assert!(m.is_minimal_expansion(), "{}", shape);
                // Our construction's honest guarantee.
                assert!(
                    m.dilation <= out.dilation_bound,
                    "{}: {} > bound {}",
                    shape,
                    m.dilation,
                    out.dilation_bound
                );
                if corollary3_dilation2(l1, l2) {
                    // The paper claims ≤ 2. Our Lemma 4 reconstruction
                    // pays d+1 = 3 on axes ≡ 1, 3 (mod 4) whose inner
                    // mesh needs a dilation-2 plan (see EXPERIMENTS.md);
                    // everything else must hit the paper's bound.
                    if m.dilation <= 2 {
                        built2 += 1;
                    } else {
                        assert!(m.dilation <= 3, "{}: {}", shape, m.dilation);
                        assert!(
                            [l1, l2].iter().any(|&l| l % 4 == 1 || l % 4 == 3),
                            "{}: only odd-residue axes may exceed the claim",
                            shape
                        );
                        residue_gap.push((l1, l2, m.dilation));
                    }
                } else if corollary3_dilation3(l1, l2) {
                    assert!(
                        m.dilation <= 3,
                        "{}: predicted ≤3, measured {}",
                        shape,
                        m.dilation
                    );
                    built3 += 1;
                }
            }
        }
    }
    assert!(built2 >= 20, "dilation-2 class exercised: {}", built2);
    assert!(built3 >= 3, "dilation-3 class exercised: {}", built3);
    assert!(
        residue_gap.len() <= 6,
        "the d+1 gap should stay rare: {:?}",
        residue_gap
    );
}

/// Wraparound edges genuinely present: a torus embedding covers more
/// edges than the mesh embedding of the same shape.
#[test]
fn torus_edges_exceed_mesh_edges() {
    let shape = Shape::new(&[6, 10]);
    let out = embed_torus(&shape).expect("6x10");
    assert_eq!(out.embedding.edge_count(), shape.torus_edges());
    assert!(shape.torus_edges() > shape.mesh_edges());
}

/// 3-D tori across the even/odd/mixed spectrum.
#[test]
fn three_d_torus_sweep() {
    for dims in [
        vec![4usize, 4, 4],
        vec![4, 6, 10],
        vec![8, 8, 8],
        vec![2, 6, 8],
    ] {
        let shape = Shape::new(&dims);
        let out = embed_torus(&shape).unwrap_or_else(|| panic!("{:?}", dims));
        out.embedding.verify().unwrap();
        let m = out.embedding.metrics();
        assert!(m.is_minimal_expansion(), "{:?}", dims);
        assert!(
            m.dilation <= out.dilation_bound,
            "{:?}: {} > bound {}",
            dims,
            m.dilation,
            out.dilation_bound
        );
    }
}

/// Lemma 5's load/congestion laws over a factor sweep.
#[test]
fn contraction_laws_sweep() {
    use cubemesh::embedding::gray_mesh_embedding;
    let base_shape = Shape::new(&[4, 8]);
    let base = gray_mesh_embedding(&base_shape);
    for f1 in 1..=4usize {
        for f2 in 1..=3usize {
            let emb = contract(&base_shape, &base, &[f1, f2]);
            verify_many_to_one(&emb).unwrap();
            assert_eq!(
                load_factor(emb.map(), emb.host()) as usize,
                f1 * f2,
                "{}x{}",
                f1,
                f2
            );
            let m = emb.metrics();
            assert!(m.dilation <= 1);
            // Lemma 5: congestion ≤ max over axes of cᵢ·Πⱼ≠ᵢ fⱼ with
            // base congestion 1.
            assert!(
                m.congestion as usize <= f1.max(f2),
                "{}x{}: congestion {}",
                f1,
                f2,
                m.congestion
            );
        }
    }
}

/// Corollary 5 honored across a sweep: dilation 1, load within 2x
/// optimal whenever a cover exists.
#[test]
fn corollary5_sweep() {
    let mut found = 0;
    for (dims, n) in [
        (vec![19usize, 19], 5u32), // the paper's example (24x20 cover)
        (vec![31, 3], 4),          // 32x4 cover
        (vec![9, 17], 5),          // no cover: Σnᵢ ≥ 5 overflows the cube
        (vec![11, 23], 6),         // no cover either
        (vec![7, 9, 11], 7),
    ] {
        let shape = Shape::new(&dims);
        if let Some(emb) = corollary5(&shape, n) {
            verify_many_to_one(&emb).unwrap();
            assert_eq!(emb.host().dim(), n);
            assert_eq!(emb.metrics().dilation, 1, "{:?}", dims);
            let lf = load_factor(emb.map(), emb.host()) as u64;
            let opt = optimal_load_factor(shape.nodes(), n);
            assert!(lf <= 2 * opt, "{:?}: load {} vs optimal {}", dims, lf, opt);
            found += 1;
        }
    }
    assert!(found >= 2, "corollary 5 covers: {}", found);
}

/// The paper's exact 19×19 numbers.
#[test]
fn paper_19x19_numbers() {
    let emb = corollary5(&Shape::new(&[19, 19]), 5).unwrap();
    assert_eq!(load_factor(emb.map(), emb.host()), 15);
    assert_eq!(optimal_load_factor(19 * 19, 5), 12);
}
