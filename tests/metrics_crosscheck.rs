//! Cross-check the sort-based metrics engine against a naive
//! recomputation, on randomized embeddings.

use cubemesh::embedding::{mesh_embedding_with_router, RouteStrategy};
use cubemesh::topology::{Hypercube, Shape};
use proptest::prelude::*;
use std::collections::HashMap;

fn naive_metrics(emb: &cubemesh::embedding::Embedding) -> (u32, f64, u32, f64) {
    let mut dilation = 0u32;
    let mut total = 0u64;
    let mut cong: HashMap<(u64, u64), u32> = HashMap::new();
    for i in 0..emb.edge_count() {
        let r = emb.routes().route(i);
        dilation = dilation.max(r.len() as u32 - 1);
        total += r.len() as u64 - 1;
        for w in r.windows(2) {
            let key = (w[0].min(w[1]), w[0].max(w[1]));
            *cong.entry(key).or_insert(0) += 1;
        }
    }
    let host_edges = emb.host().edge_count();
    (
        dilation,
        if emb.edge_count() == 0 {
            0.0
        } else {
            total as f64 / emb.edge_count() as f64
        },
        cong.values().copied().max().unwrap_or(0),
        if host_edges == 0 {
            0.0
        } else {
            total as f64 / host_edges as f64
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metrics_match_naive_on_random_maps(
        l1 in 2usize..6,
        l2 in 2usize..7,
        seed in any::<u64>(),
        balanced in any::<bool>(),
    ) {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let shape = Shape::new(&[l1, l2]);
        let host = Hypercube::new(shape.minimal_cube_dim() + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut addrs: Vec<u64> = (0..host.nodes()).collect();
        addrs.shuffle(&mut rng);
        let map = addrs[..shape.nodes()].to_vec();
        let strategy = if balanced {
            RouteStrategy::Balanced { passes: 2 }
        } else {
            RouteStrategy::Canonical
        };
        let emb = mesh_embedding_with_router(&shape, host, map, strategy);
        emb.verify().unwrap();
        let m = emb.metrics();
        let (d, ad, c, ac) = naive_metrics(&emb);
        prop_assert_eq!(m.dilation, d);
        prop_assert_eq!(m.congestion, c);
        prop_assert!((m.avg_dilation - ad).abs() < 1e-12);
        prop_assert!((m.avg_congestion - ac).abs() < 1e-12);
    }

    /// Balanced routing never yields worse congestion than canonical.
    #[test]
    fn balanced_not_worse_than_canonical(
        l1 in 2usize..6,
        l2 in 2usize..6,
        seed in any::<u64>(),
    ) {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let shape = Shape::new(&[l1, l2]);
        let host = Hypercube::new(shape.minimal_cube_dim());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut addrs: Vec<u64> = (0..host.nodes()).collect();
        addrs.shuffle(&mut rng);
        let map = addrs[..shape.nodes()].to_vec();
        let canon = mesh_embedding_with_router(
            &shape, host, map.clone(), RouteStrategy::Canonical,
        );
        let bal = mesh_embedding_with_router(
            &shape, host, map, RouteStrategy::Balanced { passes: 3 },
        );
        prop_assert!(bal.metrics().congestion <= canon.metrics().congestion);
        // Both are shortest-path routings, so dilation is identical.
        prop_assert_eq!(bal.metrics().dilation, canon.metrics().dilation);
    }
}
