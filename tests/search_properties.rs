//! Property tests for the direct-embedding search engines.

use cubemesh::embedding::builders::mesh_edge_list;
use cubemesh::search::routes::{certify_congestion, max_congestion};
use cubemesh::search::{find_embedding, SearchConfig, SearchOutcome};
use cubemesh::topology::{cube_dim, hamming, Hypercube, Mesh, Shape};
use proptest::prelude::*;

fn check_map(shape: &Shape, map: &[u64], host_dim: u32, d: u32) {
    let mesh = Mesh::new(shape.clone());
    let guest = mesh.to_graph();
    let mut seen = std::collections::HashSet::new();
    for &a in map {
        assert!(a < (1u64 << host_dim));
        assert!(seen.insert(a), "not injective");
    }
    for &(u, v) in guest.edges() {
        assert!(hamming(map[u as usize], map[v as usize]) <= d);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the search returns is valid; and a Gray-minimal mesh must
    /// be found at dilation 1 (the Gray embedding is a witness, so
    /// `Exhausted` would be a completeness bug in the pruning).
    #[test]
    fn search_results_are_sound_and_gray_complete(
        l1 in 2usize..6,
        l2 in 2usize..7,
    ) {
        let shape = Shape::new(&[l1, l2]);
        let guest = Mesh::new(shape.clone()).to_graph();
        let order: Vec<u32> = (0..guest.nodes() as u32).collect();
        let host_dim = cube_dim((l1 * l2) as u64);

        if shape.gray_is_minimal() {
            let cfg = SearchConfig {
                host_dim,
                max_dilation: 1,
                node_budget: 50_000_000,
                shuffle_seed: None,
            };
            match find_embedding(&guest, &order, &cfg) {
                SearchOutcome::Found(map) => check_map(&shape, &map, host_dim, 1),
                other => prop_assert!(false, "gray witness exists, got {:?}", other),
            }
        }

        let cfg = SearchConfig {
            host_dim,
            max_dilation: 2,
            node_budget: 50_000_000,
            shuffle_seed: None,
        };
        if let SearchOutcome::Found(map) = find_embedding(&guest, &order, &cfg) {
            check_map(&shape, &map, host_dim, 2);
        }
    }

    /// The exact congestion assigner's output never exceeds the bound it
    /// was asked for, and agrees with the independent congestion counter.
    #[test]
    fn certified_routes_meet_their_bound(
        l1 in 2usize..5,
        l2 in 2usize..6,
        limit in 1u32..4,
    ) {
        let shape = Shape::new(&[l1, l2]);
        let host = Hypercube::new(cube_dim((l1 * l2) as u64) + 1);
        // A Gray-style map into the roomier cube (dilation ≤ 2 always).
        let emb = cubemesh::embedding::gray_mesh_embedding(&shape);
        // Re-target into the bigger host (addresses still valid).
        let map: Vec<u64> = emb.map().to_vec();
        let edges = mesh_edge_list(&Mesh::new(shape.clone()));
        if let Some(routes) = certify_congestion(&map, &edges, host, limit) {
            prop_assert!(max_congestion(&routes, host) <= limit);
            prop_assert_eq!(routes.len(), edges.len());
        } else {
            // Infeasible is only possible when the limit is tiny.
            prop_assert!(limit == 1);
        }
    }
}

/// Budget accounting: a bigger budget never flips Found into something
/// else (monotonicity of the anytime behavior).
#[test]
fn budget_monotonicity() {
    let shape = Shape::new(&[3, 5]);
    let guest = Mesh::new(shape.clone()).to_graph();
    let order: Vec<u32> = (0..15).collect();
    let mut last_found = false;
    for budget in [10u64, 100, 10_000, 1_000_000] {
        let cfg = SearchConfig {
            host_dim: 4,
            max_dilation: 2,
            node_budget: budget,
            shuffle_seed: None,
        };
        let found = matches!(
            find_embedding(&guest, &order, &cfg),
            SearchOutcome::Found(_)
        );
        assert!(!last_found || found, "budget {} lost a solution", budget);
        last_found = found;
    }
    assert!(last_found, "3x5 must be found within 1M steps");
}

/// The catalog can seed searches: every 2-D catalog shape re-searches
/// successfully at dilation 2 (the engine is reproducible).
#[test]
fn catalog_shapes_rediscoverable() {
    for entry in cubemesh::search::catalog_entries() {
        if entry.dims.len() != 2 || entry.dims.iter().product::<usize>() > 70 {
            continue; // keep the test fast; big ones are covered offline
        }
        let shape = Shape::new(entry.dims);
        let guest = Mesh::new(shape.clone()).to_graph();
        let order: Vec<u32> = (0..guest.nodes() as u32).collect();
        let cfg = SearchConfig::dilation2_minimal(guest.nodes());
        assert!(
            matches!(
                find_embedding(&guest, &order, &cfg),
                SearchOutcome::Found(_)
            ),
            "{:?}",
            entry.dims
        );
    }
}
