//! Property tests for Theorem 3: the product-embedding metric laws hold
//! *exactly* on constructed embeddings.

use cubemesh::core::{mesh_product_embedding, product_embedding};
use cubemesh::embedding::{gray_mesh_embedding, Embedding};
use cubemesh::search::catalog_embedding;
use cubemesh::topology::Shape;
use proptest::prelude::*;

/// Factor embeddings to draw from: Gray meshes and catalog directs.
fn factor(dims: Vec<usize>) -> (Shape, Embedding) {
    let shape = Shape::new(&dims);
    let emb = catalog_embedding(&shape).unwrap_or_else(|| gray_mesh_embedding(&shape));
    (shape, emb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generic Theorem 3: expansion multiplies; dilation and congestion
    /// are the maxima of the factors' — exactly, because every factor
    /// copy is traversed whole.
    #[test]
    fn theorem3_exact_laws(
        a1 in 1usize..5, a2 in 1usize..5,
        b1 in 1usize..4, b2 in 1usize..6,
    ) {
        let (_, e1) = factor(vec![a1, a2]);
        let (_, e2) = factor(vec![b1, b2]);
        let p = product_embedding(&e1, &e2);
        p.verify().unwrap();
        let (m1, m2, mp) = (e1.metrics(), e2.metrics(), p.metrics());
        prop_assert_eq!(mp.host_dim, m1.host_dim + m2.host_dim);
        prop_assert!((mp.expansion - m1.expansion * m2.expansion).abs() < 1e-9);
        // Dilation: max, exactly (if both factors have edges).
        if m1.guest_edge_count > 0 && m2.guest_edge_count > 0 {
            prop_assert_eq!(mp.dilation, m1.dilation.max(m2.dilation));
        }
        // Congestion: exactly the max (disjoint copies).
        if m1.guest_edge_count > 0 && m2.guest_edge_count > 0 {
            prop_assert_eq!(mp.congestion, m1.congestion.max(m2.congestion));
        }
    }

    /// Corollary 2: the reflected mesh product verifies and meets the
    /// bounds for any fitting target shape.
    #[test]
    fn corollary2_reflected_products(
        f1 in prop::sample::select(vec![
            vec![3usize, 5], vec![4, 4], vec![3, 3], vec![2, 8], vec![5, 5],
        ]),
        f2 in prop::sample::select(vec![
            vec![2usize, 2], vec![1, 4], vec![3, 1], vec![2, 3], vec![4, 2],
        ]),
        shrink1 in 0usize..2, shrink2 in 0usize..2,
    ) {
        let (s1, e1) = factor(f1);
        let (s2, e2) = factor(f2);
        let full = s1.product(&s2);
        // Target: the full product, possibly shaved by 1–2 on each axis
        // (the §4.2 extension/restriction path).
        let dims: Vec<usize> = full
            .dims()
            .iter()
            .enumerate()
            .map(|(i, &d)| (d - if i == 0 { shrink1 } else { shrink2 }).max(1))
            .collect();
        let target = Shape::new(&dims);
        let emb = mesh_product_embedding(&target, &s1, &e1, &s2, &e2);
        emb.verify().unwrap();
        let m = emb.metrics();
        let bound = e1.metrics().dilation.max(e2.metrics().dilation);
        prop_assert!(m.dilation <= bound.max(1));
        let cbound = e1.metrics().congestion.max(e2.metrics().congestion);
        prop_assert!(m.congestion <= cbound.max(1));
    }
}

/// Average-dilation accounting of §4.1: for Gray × M₂ products, the
/// average dilation approaches 1 as the Gray factor grows.
#[test]
fn average_dilation_improves_with_gray_factor() {
    let (s2, e2) = factor(vec![3, 5]); // dilation-2 direct
    let mut last = f64::INFINITY;
    for g in [2usize, 4, 8] {
        let s1 = Shape::new(&[g, g]);
        let e1 = gray_mesh_embedding(&s1);
        let target = s1.product(&s2);
        let emb = mesh_product_embedding(&target, &s1, &e1, &s2, &e2);
        emb.verify().unwrap();
        let avg = emb.metrics().avg_dilation;
        assert!(avg < last, "avg dilation should fall: {} vs {}", avg, last);
        last = avg;
    }
    assert!(
        last < 1.2,
        "large Gray factors push avg dilation toward 1: {}",
        last
    );
}

/// Product with a single-node factor is the identity on metrics.
#[test]
fn product_with_point_is_identity() {
    let (s1, e1) = factor(vec![3, 5]);
    let (s2, e2) = factor(vec![1, 1]);
    let emb = mesh_product_embedding(&s1.product(&s2), &s1, &e1, &s2, &e2);
    emb.verify().unwrap();
    assert_eq!(emb.metrics().dilation, e1.metrics().dilation);
    assert_eq!(emb.metrics().congestion, e1.metrics().congestion);
    assert_eq!(emb.host().dim(), e1.host().dim());
}
