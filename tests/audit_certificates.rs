//! Property tests for the static audit layer: whatever the planner
//! emits for a random shape must pass `audit::check_plan`, and for
//! shapes small enough to construct, the measured dilation/congestion
//! must never exceed the certificate's claims.

use cubemesh::core::Planner;
use cubemesh::topology::Shape;
use cubemesh_audit::{check_plan, crosscheck_shape, dilation_floor};
use proptest::prelude::*;

/// Node-count ceiling for actually constructing the embedding inside a
/// property test; larger shapes are still statically certified.
const CONSTRUCT_CAP: usize = 2048;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random shapes up to 64³: every plan certifies, and the certified
    /// host cube agrees with the plan's own arithmetic.
    #[test]
    fn planner_output_always_certifies(
        dims in prop::collection::vec(1usize..65, 1..4),
    ) {
        let shape = Shape::new(&dims);
        let mut planner = Planner::new();
        if let Some(plan) = planner.plan(&shape) {
            let cert = check_plan(&shape, &plan)
                .unwrap_or_else(|e| panic!("{shape}: {e}"));
            // The certificate can never undercut the known lower bound.
            prop_assert!(
                cert.dilation_bound >= dilation_floor(&shape, cert.host_dim)
            );
            // Host must hold the mesh at all.
            prop_assert!(u64::from(cert.host_dim) >= shape.minimal_cube_dim() as u64);
            prop_assert!(cert.expansion >= 1.0);
        }
    }

    /// Constructed embeddings never exceed their certificate.
    #[test]
    fn measured_never_exceeds_certificate(
        dims in prop::collection::vec(1usize..65, 1..4),
    ) {
        let shape = Shape::new(&dims);
        let mut planner = Planner::new();
        let construct_it = shape.nodes() <= CONSTRUCT_CAP;
        // crosscheck_shape errors on ANY disagreement between the static
        // certificate and the constructed embedding.
        let r = crosscheck_shape(&mut planner, &shape, construct_it);
        prop_assert!(r.is_ok(), "{}: {}", shape, r.unwrap_err());
    }
}
