/root/repo/target/debug/deps/metrics_crosscheck-dc08b685d59cee05.d: tests/metrics_crosscheck.rs

/root/repo/target/debug/deps/metrics_crosscheck-dc08b685d59cee05: tests/metrics_crosscheck.rs

tests/metrics_crosscheck.rs:
