/root/repo/target/debug/deps/cubemesh_reshape-0ae7b1b55a717375.d: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

/root/repo/target/debug/deps/cubemesh_reshape-0ae7b1b55a717375: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

crates/reshape/src/lib.rs:
crates/reshape/src/fold.rs:
crates/reshape/src/snake.rs:
