/root/repo/target/debug/deps/sweep2d-9199145d7561a571.d: crates/census/src/bin/sweep2d.rs

/root/repo/target/debug/deps/sweep2d-9199145d7561a571: crates/census/src/bin/sweep2d.rs

crates/census/src/bin/sweep2d.rs:
