/root/repo/target/debug/deps/rayon-ad444b3240ab84ab.d: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-ad444b3240ab84ab.rlib: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-ad444b3240ab84ab.rmeta: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
