/root/repo/target/debug/deps/figures-b5d2b66c38933bc7.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-b5d2b66c38933bc7.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
