/root/repo/target/debug/deps/cubemesh-a0b32ea104313407.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh-a0b32ea104313407.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
