/root/repo/target/debug/deps/torus_and_manytoone-a9627df3071070f2.d: tests/torus_and_manytoone.rs Cargo.toml

/root/repo/target/debug/deps/libtorus_and_manytoone-a9627df3071070f2.rmeta: tests/torus_and_manytoone.rs Cargo.toml

tests/torus_and_manytoone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
