/root/repo/target/debug/deps/discover-26c27b7d676f5780.d: crates/search/src/bin/discover.rs

/root/repo/target/debug/deps/discover-26c27b7d676f5780: crates/search/src/bin/discover.rs

crates/search/src/bin/discover.rs:
