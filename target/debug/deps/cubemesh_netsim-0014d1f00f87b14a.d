/root/repo/target/debug/deps/cubemesh_netsim-0014d1f00f87b14a.d: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

/root/repo/target/debug/deps/libcubemesh_netsim-0014d1f00f87b14a.rlib: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

/root/repo/target/debug/deps/libcubemesh_netsim-0014d1f00f87b14a.rmeta: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

crates/netsim/src/lib.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/workload.rs:
