/root/repo/target/debug/deps/cubemesh_core-2de5c93351384423.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

/root/repo/target/debug/deps/cubemesh_core-2de5c93351384423: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/construct.rs:
crates/core/src/plan.rs:
crates/core/src/planner.rs:
crates/core/src/product.rs:
