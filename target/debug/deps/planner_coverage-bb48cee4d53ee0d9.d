/root/repo/target/debug/deps/planner_coverage-bb48cee4d53ee0d9.d: tests/planner_coverage.rs

/root/repo/target/debug/deps/planner_coverage-bb48cee4d53ee0d9: tests/planner_coverage.rs

tests/planner_coverage.rs:
