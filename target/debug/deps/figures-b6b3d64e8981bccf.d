/root/repo/target/debug/deps/figures-b6b3d64e8981bccf.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-b6b3d64e8981bccf: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
