/root/repo/target/debug/deps/search_properties-6fed03a4dbe4b235.d: tests/search_properties.rs

/root/repo/target/debug/deps/search_properties-6fed03a4dbe4b235: tests/search_properties.rs

tests/search_properties.rs:
