/root/repo/target/debug/deps/embeddings-a44d34404b28db5e.d: crates/bench/benches/embeddings.rs Cargo.toml

/root/repo/target/debug/deps/libembeddings-a44d34404b28db5e.rmeta: crates/bench/benches/embeddings.rs Cargo.toml

crates/bench/benches/embeddings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
