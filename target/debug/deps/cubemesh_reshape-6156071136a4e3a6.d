/root/repo/target/debug/deps/cubemesh_reshape-6156071136a4e3a6.d: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_reshape-6156071136a4e3a6.rmeta: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs Cargo.toml

crates/reshape/src/lib.rs:
crates/reshape/src/fold.rs:
crates/reshape/src/snake.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
