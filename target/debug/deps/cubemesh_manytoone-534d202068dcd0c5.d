/root/repo/target/debug/deps/cubemesh_manytoone-534d202068dcd0c5.d: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

/root/repo/target/debug/deps/cubemesh_manytoone-534d202068dcd0c5: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

crates/manytoone/src/lib.rs:
crates/manytoone/src/contract.rs:
crates/manytoone/src/fold_cube.rs:
