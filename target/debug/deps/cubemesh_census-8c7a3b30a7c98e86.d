/root/repo/target/debug/deps/cubemesh_census-8c7a3b30a7c98e86.d: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs

/root/repo/target/debug/deps/libcubemesh_census-8c7a3b30a7c98e86.rlib: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs

/root/repo/target/debug/deps/libcubemesh_census-8c7a3b30a7c98e86.rmeta: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs

crates/census/src/lib.rs:
crates/census/src/cover.rs:
crates/census/src/exceptions.rs:
crates/census/src/gray_fraction.rs:
crates/census/src/higher_k.rs:
crates/census/src/three_d.rs:
crates/census/src/two_d.rs:
