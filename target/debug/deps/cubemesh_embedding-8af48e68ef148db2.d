/root/repo/target/debug/deps/cubemesh_embedding-8af48e68ef148db2.d: crates/embedding/src/lib.rs crates/embedding/src/builders.rs crates/embedding/src/map.rs crates/embedding/src/metrics.rs crates/embedding/src/portable.rs crates/embedding/src/route.rs crates/embedding/src/router.rs crates/embedding/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_embedding-8af48e68ef148db2.rmeta: crates/embedding/src/lib.rs crates/embedding/src/builders.rs crates/embedding/src/map.rs crates/embedding/src/metrics.rs crates/embedding/src/portable.rs crates/embedding/src/route.rs crates/embedding/src/router.rs crates/embedding/src/verify.rs Cargo.toml

crates/embedding/src/lib.rs:
crates/embedding/src/builders.rs:
crates/embedding/src/map.rs:
crates/embedding/src/metrics.rs:
crates/embedding/src/portable.rs:
crates/embedding/src/route.rs:
crates/embedding/src/router.rs:
crates/embedding/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
