/root/repo/target/debug/deps/search_properties-fdb5e4dfc076baea.d: tests/search_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_properties-fdb5e4dfc076baea.rmeta: tests/search_properties.rs Cargo.toml

tests/search_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
