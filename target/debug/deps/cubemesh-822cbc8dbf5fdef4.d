/root/repo/target/debug/deps/cubemesh-822cbc8dbf5fdef4.d: src/lib.rs

/root/repo/target/debug/deps/libcubemesh-822cbc8dbf5fdef4.rlib: src/lib.rs

/root/repo/target/debug/deps/libcubemesh-822cbc8dbf5fdef4.rmeta: src/lib.rs

src/lib.rs:
