/root/repo/target/debug/deps/discover-413b0d7522525d62.d: crates/search/src/bin/discover.rs Cargo.toml

/root/repo/target/debug/deps/libdiscover-413b0d7522525d62.rmeta: crates/search/src/bin/discover.rs Cargo.toml

crates/search/src/bin/discover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
