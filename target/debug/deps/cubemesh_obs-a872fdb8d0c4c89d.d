/root/repo/target/debug/deps/cubemesh_obs-a872fdb8d0c4c89d.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/cubemesh_obs-a872fdb8d0c4c89d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/progress.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/span.rs:
