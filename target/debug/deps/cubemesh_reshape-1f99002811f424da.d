/root/repo/target/debug/deps/cubemesh_reshape-1f99002811f424da.d: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

/root/repo/target/debug/deps/libcubemesh_reshape-1f99002811f424da.rlib: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

/root/repo/target/debug/deps/libcubemesh_reshape-1f99002811f424da.rmeta: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

crates/reshape/src/lib.rs:
crates/reshape/src/fold.rs:
crates/reshape/src/snake.rs:
