/root/repo/target/debug/deps/cubemesh_search-654afcbd3e9af236.d: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

/root/repo/target/debug/deps/libcubemesh_search-654afcbd3e9af236.rlib: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

/root/repo/target/debug/deps/libcubemesh_search-654afcbd3e9af236.rmeta: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

crates/search/src/lib.rs:
crates/search/src/anneal.rs:
crates/search/src/backtrack.rs:
crates/search/src/catalog.rs:
crates/search/src/routes.rs:
crates/search/src/catalog_data.rs:
