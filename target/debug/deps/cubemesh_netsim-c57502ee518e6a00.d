/root/repo/target/debug/deps/cubemesh_netsim-c57502ee518e6a00.d: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_netsim-c57502ee518e6a00.rmeta: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
