/root/repo/target/debug/deps/cubemesh_search-24becd1612adf134.d: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

/root/repo/target/debug/deps/libcubemesh_search-24becd1612adf134.rlib: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

/root/repo/target/debug/deps/libcubemesh_search-24becd1612adf134.rmeta: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

crates/search/src/lib.rs:
crates/search/src/anneal.rs:
crates/search/src/backtrack.rs:
crates/search/src/catalog.rs:
crates/search/src/routes.rs:
crates/search/src/catalog_data.rs:
