/root/repo/target/debug/deps/cubemesh_torus-1e5a62769978ad6a.d: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_torus-1e5a62769978ad6a.rmeta: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs Cargo.toml

crates/torus/src/lib.rs:
crates/torus/src/axis.rs:
crates/torus/src/build.rs:
crates/torus/src/driver.rs:
crates/torus/src/predicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
