/root/repo/target/debug/deps/figures-eb42d3e42df776a1.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-eb42d3e42df776a1: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
