/root/repo/target/debug/deps/sweep2d-b60a3896f42954af.d: crates/census/src/bin/sweep2d.rs

/root/repo/target/debug/deps/sweep2d-b60a3896f42954af: crates/census/src/bin/sweep2d.rs

crates/census/src/bin/sweep2d.rs:
