/root/repo/target/debug/deps/cubemesh_bench-c1724316895dab18.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cubemesh_bench-c1724316895dab18: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
