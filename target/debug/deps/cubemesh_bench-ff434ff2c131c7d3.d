/root/repo/target/debug/deps/cubemesh_bench-ff434ff2c131c7d3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcubemesh_bench-ff434ff2c131c7d3.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcubemesh_bench-ff434ff2c131c7d3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
