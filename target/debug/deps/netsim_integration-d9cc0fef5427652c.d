/root/repo/target/debug/deps/netsim_integration-d9cc0fef5427652c.d: tests/netsim_integration.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim_integration-d9cc0fef5427652c.rmeta: tests/netsim_integration.rs Cargo.toml

tests/netsim_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
