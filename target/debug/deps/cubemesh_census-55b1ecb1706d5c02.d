/root/repo/target/debug/deps/cubemesh_census-55b1ecb1706d5c02.d: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs

/root/repo/target/debug/deps/cubemesh_census-55b1ecb1706d5c02: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs

crates/census/src/lib.rs:
crates/census/src/cover.rs:
crates/census/src/exceptions.rs:
crates/census/src/gray_fraction.rs:
crates/census/src/higher_k.rs:
crates/census/src/three_d.rs:
crates/census/src/two_d.rs:
