/root/repo/target/debug/deps/product_laws-f5f7dc64d8cf471f.d: tests/product_laws.rs Cargo.toml

/root/repo/target/debug/deps/libproduct_laws-f5f7dc64d8cf471f.rmeta: tests/product_laws.rs Cargo.toml

tests/product_laws.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
