/root/repo/target/debug/deps/cubemesh_embedding-7c67ee0d8b88029b.d: crates/embedding/src/lib.rs crates/embedding/src/builders.rs crates/embedding/src/map.rs crates/embedding/src/metrics.rs crates/embedding/src/portable.rs crates/embedding/src/route.rs crates/embedding/src/router.rs crates/embedding/src/verify.rs

/root/repo/target/debug/deps/libcubemesh_embedding-7c67ee0d8b88029b.rlib: crates/embedding/src/lib.rs crates/embedding/src/builders.rs crates/embedding/src/map.rs crates/embedding/src/metrics.rs crates/embedding/src/portable.rs crates/embedding/src/route.rs crates/embedding/src/router.rs crates/embedding/src/verify.rs

/root/repo/target/debug/deps/libcubemesh_embedding-7c67ee0d8b88029b.rmeta: crates/embedding/src/lib.rs crates/embedding/src/builders.rs crates/embedding/src/map.rs crates/embedding/src/metrics.rs crates/embedding/src/portable.rs crates/embedding/src/route.rs crates/embedding/src/router.rs crates/embedding/src/verify.rs

crates/embedding/src/lib.rs:
crates/embedding/src/builders.rs:
crates/embedding/src/map.rs:
crates/embedding/src/metrics.rs:
crates/embedding/src/portable.rs:
crates/embedding/src/route.rs:
crates/embedding/src/router.rs:
crates/embedding/src/verify.rs:
