/root/repo/target/debug/deps/cubemesh-87fefcc604e8986c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh-87fefcc604e8986c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
