/root/repo/target/debug/deps/cubemesh-b24b4ce0846ed0e8.d: src/lib.rs

/root/repo/target/debug/deps/cubemesh-b24b4ce0846ed0e8: src/lib.rs

src/lib.rs:
