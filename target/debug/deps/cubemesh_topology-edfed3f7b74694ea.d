/root/repo/target/debug/deps/cubemesh_topology-edfed3f7b74694ea.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/hamming.rs crates/topology/src/hypercube.rs crates/topology/src/mesh.rs crates/topology/src/product.rs crates/topology/src/shape.rs crates/topology/src/torus.rs

/root/repo/target/debug/deps/libcubemesh_topology-edfed3f7b74694ea.rlib: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/hamming.rs crates/topology/src/hypercube.rs crates/topology/src/mesh.rs crates/topology/src/product.rs crates/topology/src/shape.rs crates/topology/src/torus.rs

/root/repo/target/debug/deps/libcubemesh_topology-edfed3f7b74694ea.rmeta: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/hamming.rs crates/topology/src/hypercube.rs crates/topology/src/mesh.rs crates/topology/src/product.rs crates/topology/src/shape.rs crates/topology/src/torus.rs

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/hamming.rs:
crates/topology/src/hypercube.rs:
crates/topology/src/mesh.rs:
crates/topology/src/product.rs:
crates/topology/src/shape.rs:
crates/topology/src/torus.rs:
