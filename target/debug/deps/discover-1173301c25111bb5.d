/root/repo/target/debug/deps/discover-1173301c25111bb5.d: crates/search/src/bin/discover.rs

/root/repo/target/debug/deps/discover-1173301c25111bb5: crates/search/src/bin/discover.rs

crates/search/src/bin/discover.rs:
