/root/repo/target/debug/deps/planner_coverage-8b8f15a60ad2e3a8.d: tests/planner_coverage.rs

/root/repo/target/debug/deps/planner_coverage-8b8f15a60ad2e3a8: tests/planner_coverage.rs

tests/planner_coverage.rs:
