/root/repo/target/debug/deps/cubemesh_torus-b1769f2e6ad1c6ac.d: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

/root/repo/target/debug/deps/libcubemesh_torus-b1769f2e6ad1c6ac.rlib: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

/root/repo/target/debug/deps/libcubemesh_torus-b1769f2e6ad1c6ac.rmeta: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

crates/torus/src/lib.rs:
crates/torus/src/axis.rs:
crates/torus/src/build.rs:
crates/torus/src/driver.rs:
crates/torus/src/predicates.rs:
