/root/repo/target/debug/deps/cubemesh_gray-0f40992e2b9fe0a2.d: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs

/root/repo/target/debug/deps/libcubemesh_gray-0f40992e2b9fe0a2.rlib: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs

/root/repo/target/debug/deps/libcubemesh_gray-0f40992e2b9fe0a2.rmeta: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs

crates/gray/src/lib.rs:
crates/gray/src/axis.rs:
crates/gray/src/code.rs:
crates/gray/src/ring.rs:
