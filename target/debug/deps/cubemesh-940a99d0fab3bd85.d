/root/repo/target/debug/deps/cubemesh-940a99d0fab3bd85.d: src/bin/cubemesh.rs

/root/repo/target/debug/deps/cubemesh-940a99d0fab3bd85: src/bin/cubemesh.rs

src/bin/cubemesh.rs:
