/root/repo/target/debug/deps/cubemesh_bench-4f4c43e026685756.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcubemesh_bench-4f4c43e026685756.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcubemesh_bench-4f4c43e026685756.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
