/root/repo/target/debug/deps/discover-00ec78c5b9b7032f.d: crates/search/src/bin/discover.rs Cargo.toml

/root/repo/target/debug/deps/libdiscover-00ec78c5b9b7032f.rmeta: crates/search/src/bin/discover.rs Cargo.toml

crates/search/src/bin/discover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
