/root/repo/target/debug/deps/topology_properties-4ff58aedd8e722dc.d: tests/topology_properties.rs

/root/repo/target/debug/deps/topology_properties-4ff58aedd8e722dc: tests/topology_properties.rs

tests/topology_properties.rs:
