/root/repo/target/debug/deps/cubemesh_census-a5c73812fa62bcd9.d: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_census-a5c73812fa62bcd9.rmeta: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs Cargo.toml

crates/census/src/lib.rs:
crates/census/src/cover.rs:
crates/census/src/exceptions.rs:
crates/census/src/gray_fraction.rs:
crates/census/src/higher_k.rs:
crates/census/src/three_d.rs:
crates/census/src/two_d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
