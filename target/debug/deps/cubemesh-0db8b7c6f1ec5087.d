/root/repo/target/debug/deps/cubemesh-0db8b7c6f1ec5087.d: src/bin/cubemesh.rs

/root/repo/target/debug/deps/cubemesh-0db8b7c6f1ec5087: src/bin/cubemesh.rs

src/bin/cubemesh.rs:
