/root/repo/target/debug/deps/cubemesh_core-12ba09b254dc19ac.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

/root/repo/target/debug/deps/libcubemesh_core-12ba09b254dc19ac.rlib: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

/root/repo/target/debug/deps/libcubemesh_core-12ba09b254dc19ac.rmeta: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/construct.rs:
crates/core/src/plan.rs:
crates/core/src/planner.rs:
crates/core/src/product.rs:
