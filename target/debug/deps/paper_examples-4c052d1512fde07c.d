/root/repo/target/debug/deps/paper_examples-4c052d1512fde07c.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-4c052d1512fde07c: tests/paper_examples.rs

tests/paper_examples.rs:
