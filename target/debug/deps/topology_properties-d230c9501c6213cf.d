/root/repo/target/debug/deps/topology_properties-d230c9501c6213cf.d: tests/topology_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtopology_properties-d230c9501c6213cf.rmeta: tests/topology_properties.rs Cargo.toml

tests/topology_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
