/root/repo/target/debug/deps/criterion-c6b3a0142d159417.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c6b3a0142d159417.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
