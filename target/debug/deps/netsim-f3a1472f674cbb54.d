/root/repo/target/debug/deps/netsim-f3a1472f674cbb54.d: crates/bench/benches/netsim.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-f3a1472f674cbb54.rmeta: crates/bench/benches/netsim.rs Cargo.toml

crates/bench/benches/netsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
