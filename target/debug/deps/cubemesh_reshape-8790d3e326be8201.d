/root/repo/target/debug/deps/cubemesh_reshape-8790d3e326be8201.d: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

/root/repo/target/debug/deps/libcubemesh_reshape-8790d3e326be8201.rlib: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

/root/repo/target/debug/deps/libcubemesh_reshape-8790d3e326be8201.rmeta: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

crates/reshape/src/lib.rs:
crates/reshape/src/fold.rs:
crates/reshape/src/snake.rs:
