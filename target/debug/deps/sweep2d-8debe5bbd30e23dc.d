/root/repo/target/debug/deps/sweep2d-8debe5bbd30e23dc.d: crates/census/src/bin/sweep2d.rs

/root/repo/target/debug/deps/sweep2d-8debe5bbd30e23dc: crates/census/src/bin/sweep2d.rs

crates/census/src/bin/sweep2d.rs:
