/root/repo/target/debug/deps/metrics_crosscheck-5372fb74b77eafc5.d: tests/metrics_crosscheck.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_crosscheck-5372fb74b77eafc5.rmeta: tests/metrics_crosscheck.rs Cargo.toml

tests/metrics_crosscheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
