/root/repo/target/debug/deps/torus_and_manytoone-1e9c84f962bff7d1.d: tests/torus_and_manytoone.rs

/root/repo/target/debug/deps/torus_and_manytoone-1e9c84f962bff7d1: tests/torus_and_manytoone.rs

tests/torus_and_manytoone.rs:
