/root/repo/target/debug/deps/cubemesh_core-83e6262c13a2362d.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_core-83e6262c13a2362d.rmeta: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/construct.rs:
crates/core/src/plan.rs:
crates/core/src/planner.rs:
crates/core/src/product.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
