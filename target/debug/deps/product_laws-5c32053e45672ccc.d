/root/repo/target/debug/deps/product_laws-5c32053e45672ccc.d: tests/product_laws.rs

/root/repo/target/debug/deps/product_laws-5c32053e45672ccc: tests/product_laws.rs

tests/product_laws.rs:
