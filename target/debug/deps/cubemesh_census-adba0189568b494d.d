/root/repo/target/debug/deps/cubemesh_census-adba0189568b494d.d: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs

/root/repo/target/debug/deps/libcubemesh_census-adba0189568b494d.rlib: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs

/root/repo/target/debug/deps/libcubemesh_census-adba0189568b494d.rmeta: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs

crates/census/src/lib.rs:
crates/census/src/cover.rs:
crates/census/src/exceptions.rs:
crates/census/src/gray_fraction.rs:
crates/census/src/higher_k.rs:
crates/census/src/three_d.rs:
crates/census/src/two_d.rs:
