/root/repo/target/debug/deps/cubemesh_netsim-17a12b9af6e5632e.d: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

/root/repo/target/debug/deps/cubemesh_netsim-17a12b9af6e5632e: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

crates/netsim/src/lib.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/workload.rs:
