/root/repo/target/debug/deps/cubemesh_topology-721d733febd6903e.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/hamming.rs crates/topology/src/hypercube.rs crates/topology/src/mesh.rs crates/topology/src/product.rs crates/topology/src/shape.rs crates/topology/src/torus.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_topology-721d733febd6903e.rmeta: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/hamming.rs crates/topology/src/hypercube.rs crates/topology/src/mesh.rs crates/topology/src/product.rs crates/topology/src/shape.rs crates/topology/src/torus.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/hamming.rs:
crates/topology/src/hypercube.rs:
crates/topology/src/mesh.rs:
crates/topology/src/product.rs:
crates/topology/src/shape.rs:
crates/topology/src/torus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
