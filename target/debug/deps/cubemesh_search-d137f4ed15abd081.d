/root/repo/target/debug/deps/cubemesh_search-d137f4ed15abd081.d: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_search-d137f4ed15abd081.rmeta: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs Cargo.toml

crates/search/src/lib.rs:
crates/search/src/anneal.rs:
crates/search/src/backtrack.rs:
crates/search/src/catalog.rs:
crates/search/src/routes.rs:
crates/search/src/catalog_data.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
