/root/repo/target/debug/deps/cubemesh_netsim-12470aad514f6b49.d: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

/root/repo/target/debug/deps/cubemesh_netsim-12470aad514f6b49: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

crates/netsim/src/lib.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/workload.rs:
