/root/repo/target/debug/deps/metrics_crosscheck-172a8198270074b6.d: tests/metrics_crosscheck.rs

/root/repo/target/debug/deps/metrics_crosscheck-172a8198270074b6: tests/metrics_crosscheck.rs

tests/metrics_crosscheck.rs:
