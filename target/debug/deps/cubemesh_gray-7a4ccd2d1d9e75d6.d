/root/repo/target/debug/deps/cubemesh_gray-7a4ccd2d1d9e75d6.d: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_gray-7a4ccd2d1d9e75d6.rmeta: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs Cargo.toml

crates/gray/src/lib.rs:
crates/gray/src/axis.rs:
crates/gray/src/code.rs:
crates/gray/src/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
