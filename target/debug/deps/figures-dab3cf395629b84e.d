/root/repo/target/debug/deps/figures-dab3cf395629b84e.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-dab3cf395629b84e.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
