/root/repo/target/debug/deps/obs_stats-5678653688852d00.d: tests/obs_stats.rs Cargo.toml

/root/repo/target/debug/deps/libobs_stats-5678653688852d00.rmeta: tests/obs_stats.rs Cargo.toml

tests/obs_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
