/root/repo/target/debug/deps/cubemesh-faf465b1ff4d5834.d: src/bin/cubemesh.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh-faf465b1ff4d5834.rmeta: src/bin/cubemesh.rs Cargo.toml

src/bin/cubemesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
