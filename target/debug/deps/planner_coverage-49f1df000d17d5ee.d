/root/repo/target/debug/deps/planner_coverage-49f1df000d17d5ee.d: tests/planner_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libplanner_coverage-49f1df000d17d5ee.rmeta: tests/planner_coverage.rs Cargo.toml

tests/planner_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
