/root/repo/target/debug/deps/topology_properties-4a299eff8ba32640.d: tests/topology_properties.rs

/root/repo/target/debug/deps/topology_properties-4a299eff8ba32640: tests/topology_properties.rs

tests/topology_properties.rs:
