/root/repo/target/debug/deps/torus_and_manytoone-4e8ff7d02550a091.d: tests/torus_and_manytoone.rs

/root/repo/target/debug/deps/torus_and_manytoone-4e8ff7d02550a091: tests/torus_and_manytoone.rs

tests/torus_and_manytoone.rs:
