/root/repo/target/debug/deps/sweep2d-ea2237d7d384a2fd.d: crates/census/src/bin/sweep2d.rs Cargo.toml

/root/repo/target/debug/deps/libsweep2d-ea2237d7d384a2fd.rmeta: crates/census/src/bin/sweep2d.rs Cargo.toml

crates/census/src/bin/sweep2d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
