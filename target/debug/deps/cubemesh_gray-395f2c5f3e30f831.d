/root/repo/target/debug/deps/cubemesh_gray-395f2c5f3e30f831.d: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_gray-395f2c5f3e30f831.rmeta: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs Cargo.toml

crates/gray/src/lib.rs:
crates/gray/src/axis.rs:
crates/gray/src/code.rs:
crates/gray/src/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
