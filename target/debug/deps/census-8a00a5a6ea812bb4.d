/root/repo/target/debug/deps/census-8a00a5a6ea812bb4.d: crates/bench/benches/census.rs Cargo.toml

/root/repo/target/debug/deps/libcensus-8a00a5a6ea812bb4.rmeta: crates/bench/benches/census.rs Cargo.toml

crates/bench/benches/census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
