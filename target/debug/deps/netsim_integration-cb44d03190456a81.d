/root/repo/target/debug/deps/netsim_integration-cb44d03190456a81.d: tests/netsim_integration.rs

/root/repo/target/debug/deps/netsim_integration-cb44d03190456a81: tests/netsim_integration.rs

tests/netsim_integration.rs:
