/root/repo/target/debug/deps/cubemesh_obs-911051b1ec816e61.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_obs-911051b1ec816e61.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/progress.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
