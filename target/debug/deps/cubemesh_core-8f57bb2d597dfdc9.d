/root/repo/target/debug/deps/cubemesh_core-8f57bb2d597dfdc9.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

/root/repo/target/debug/deps/libcubemesh_core-8f57bb2d597dfdc9.rlib: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

/root/repo/target/debug/deps/libcubemesh_core-8f57bb2d597dfdc9.rmeta: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/construct.rs:
crates/core/src/plan.rs:
crates/core/src/planner.rs:
crates/core/src/product.rs:
