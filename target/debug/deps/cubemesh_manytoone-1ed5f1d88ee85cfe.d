/root/repo/target/debug/deps/cubemesh_manytoone-1ed5f1d88ee85cfe.d: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

/root/repo/target/debug/deps/cubemesh_manytoone-1ed5f1d88ee85cfe: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

crates/manytoone/src/lib.rs:
crates/manytoone/src/contract.rs:
crates/manytoone/src/fold_cube.rs:
