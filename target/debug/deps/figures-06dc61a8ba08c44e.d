/root/repo/target/debug/deps/figures-06dc61a8ba08c44e.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-06dc61a8ba08c44e: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
