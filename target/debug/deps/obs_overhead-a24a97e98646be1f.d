/root/repo/target/debug/deps/obs_overhead-a24a97e98646be1f.d: crates/bench/benches/obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libobs_overhead-a24a97e98646be1f.rmeta: crates/bench/benches/obs_overhead.rs Cargo.toml

crates/bench/benches/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
