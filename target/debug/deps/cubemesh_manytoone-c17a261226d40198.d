/root/repo/target/debug/deps/cubemesh_manytoone-c17a261226d40198.d: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_manytoone-c17a261226d40198.rmeta: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs Cargo.toml

crates/manytoone/src/lib.rs:
crates/manytoone/src/contract.rs:
crates/manytoone/src/fold_cube.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
