/root/repo/target/debug/deps/cubemesh-088a63a830c4d944.d: src/bin/cubemesh.rs

/root/repo/target/debug/deps/cubemesh-088a63a830c4d944: src/bin/cubemesh.rs

src/bin/cubemesh.rs:
