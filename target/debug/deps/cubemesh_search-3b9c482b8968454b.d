/root/repo/target/debug/deps/cubemesh_search-3b9c482b8968454b.d: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

/root/repo/target/debug/deps/cubemesh_search-3b9c482b8968454b: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

crates/search/src/lib.rs:
crates/search/src/anneal.rs:
crates/search/src/backtrack.rs:
crates/search/src/catalog.rs:
crates/search/src/routes.rs:
crates/search/src/catalog_data.rs:
