/root/repo/target/debug/deps/product_laws-32517a6585c1b526.d: tests/product_laws.rs

/root/repo/target/debug/deps/product_laws-32517a6585c1b526: tests/product_laws.rs

tests/product_laws.rs:
