/root/repo/target/debug/deps/cubemesh-46fe6c32251d3b5f.d: src/lib.rs

/root/repo/target/debug/deps/cubemesh-46fe6c32251d3b5f: src/lib.rs

src/lib.rs:
