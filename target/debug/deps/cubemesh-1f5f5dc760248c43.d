/root/repo/target/debug/deps/cubemesh-1f5f5dc760248c43.d: src/lib.rs

/root/repo/target/debug/deps/libcubemesh-1f5f5dc760248c43.rlib: src/lib.rs

/root/repo/target/debug/deps/libcubemesh-1f5f5dc760248c43.rmeta: src/lib.rs

src/lib.rs:
