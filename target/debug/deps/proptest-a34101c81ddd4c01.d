/root/repo/target/debug/deps/proptest-a34101c81ddd4c01.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a34101c81ddd4c01.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a34101c81ddd4c01.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
