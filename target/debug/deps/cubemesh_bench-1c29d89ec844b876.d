/root/repo/target/debug/deps/cubemesh_bench-1c29d89ec844b876.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_bench-1c29d89ec844b876.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
