/root/repo/target/debug/deps/proptest-8a6e9a31e8783cff.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8a6e9a31e8783cff.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
