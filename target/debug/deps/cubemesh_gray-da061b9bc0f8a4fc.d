/root/repo/target/debug/deps/cubemesh_gray-da061b9bc0f8a4fc.d: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs

/root/repo/target/debug/deps/cubemesh_gray-da061b9bc0f8a4fc: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs

crates/gray/src/lib.rs:
crates/gray/src/axis.rs:
crates/gray/src/code.rs:
crates/gray/src/ring.rs:
