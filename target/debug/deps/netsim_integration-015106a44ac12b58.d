/root/repo/target/debug/deps/netsim_integration-015106a44ac12b58.d: tests/netsim_integration.rs

/root/repo/target/debug/deps/netsim_integration-015106a44ac12b58: tests/netsim_integration.rs

tests/netsim_integration.rs:
