/root/repo/target/debug/deps/cubemesh_torus-c60538bfa6495cd0.d: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

/root/repo/target/debug/deps/libcubemesh_torus-c60538bfa6495cd0.rlib: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

/root/repo/target/debug/deps/libcubemesh_torus-c60538bfa6495cd0.rmeta: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

crates/torus/src/lib.rs:
crates/torus/src/axis.rs:
crates/torus/src/build.rs:
crates/torus/src/driver.rs:
crates/torus/src/predicates.rs:
