/root/repo/target/debug/deps/cubemesh_netsim-1d5fdd512241cb04.d: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

/root/repo/target/debug/deps/libcubemesh_netsim-1d5fdd512241cb04.rlib: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

/root/repo/target/debug/deps/libcubemesh_netsim-1d5fdd512241cb04.rmeta: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

crates/netsim/src/lib.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/workload.rs:
