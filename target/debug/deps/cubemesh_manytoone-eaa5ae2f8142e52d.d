/root/repo/target/debug/deps/cubemesh_manytoone-eaa5ae2f8142e52d.d: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

/root/repo/target/debug/deps/libcubemesh_manytoone-eaa5ae2f8142e52d.rlib: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

/root/repo/target/debug/deps/libcubemesh_manytoone-eaa5ae2f8142e52d.rmeta: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

crates/manytoone/src/lib.rs:
crates/manytoone/src/contract.rs:
crates/manytoone/src/fold_cube.rs:
