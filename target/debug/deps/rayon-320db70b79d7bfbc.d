/root/repo/target/debug/deps/rayon-320db70b79d7bfbc.d: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-320db70b79d7bfbc.rmeta: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
