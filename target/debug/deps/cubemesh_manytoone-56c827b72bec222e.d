/root/repo/target/debug/deps/cubemesh_manytoone-56c827b72bec222e.d: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

/root/repo/target/debug/deps/libcubemesh_manytoone-56c827b72bec222e.rlib: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

/root/repo/target/debug/deps/libcubemesh_manytoone-56c827b72bec222e.rmeta: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

crates/manytoone/src/lib.rs:
crates/manytoone/src/contract.rs:
crates/manytoone/src/fold_cube.rs:
