/root/repo/target/debug/deps/cubemesh_torus-179da7747f98e9db.d: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

/root/repo/target/debug/deps/cubemesh_torus-179da7747f98e9db: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

crates/torus/src/lib.rs:
crates/torus/src/axis.rs:
crates/torus/src/build.rs:
crates/torus/src/driver.rs:
crates/torus/src/predicates.rs:
