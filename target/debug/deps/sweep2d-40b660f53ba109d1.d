/root/repo/target/debug/deps/sweep2d-40b660f53ba109d1.d: crates/census/src/bin/sweep2d.rs Cargo.toml

/root/repo/target/debug/deps/libsweep2d-40b660f53ba109d1.rmeta: crates/census/src/bin/sweep2d.rs Cargo.toml

crates/census/src/bin/sweep2d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
