/root/repo/target/debug/deps/discover-ece7a89d3e8fdc03.d: crates/search/src/bin/discover.rs

/root/repo/target/debug/deps/discover-ece7a89d3e8fdc03: crates/search/src/bin/discover.rs

crates/search/src/bin/discover.rs:
