/root/repo/target/debug/deps/paper_examples-89f349a49d73f594.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-89f349a49d73f594: tests/paper_examples.rs

tests/paper_examples.rs:
