/root/repo/target/debug/deps/cubemesh_obs-149193864a587080.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libcubemesh_obs-149193864a587080.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libcubemesh_obs-149193864a587080.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/progress.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/span.rs:
