/root/repo/target/debug/deps/search_properties-5ff77396c88a14c3.d: tests/search_properties.rs

/root/repo/target/debug/deps/search_properties-5ff77396c88a14c3: tests/search_properties.rs

tests/search_properties.rs:
