/root/repo/target/debug/deps/cubemesh_core-2b5928a4e5742615.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_core-2b5928a4e5742615.rmeta: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/construct.rs:
crates/core/src/plan.rs:
crates/core/src/planner.rs:
crates/core/src/product.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
