/root/repo/target/debug/deps/search-3be047dec6816a0f.d: crates/bench/benches/search.rs Cargo.toml

/root/repo/target/debug/deps/libsearch-3be047dec6816a0f.rmeta: crates/bench/benches/search.rs Cargo.toml

crates/bench/benches/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
