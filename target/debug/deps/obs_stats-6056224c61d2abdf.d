/root/repo/target/debug/deps/obs_stats-6056224c61d2abdf.d: tests/obs_stats.rs

/root/repo/target/debug/deps/obs_stats-6056224c61d2abdf: tests/obs_stats.rs

tests/obs_stats.rs:
