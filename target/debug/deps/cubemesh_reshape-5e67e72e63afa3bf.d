/root/repo/target/debug/deps/cubemesh_reshape-5e67e72e63afa3bf.d: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

/root/repo/target/debug/deps/cubemesh_reshape-5e67e72e63afa3bf: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

crates/reshape/src/lib.rs:
crates/reshape/src/fold.rs:
crates/reshape/src/snake.rs:
