/root/repo/target/debug/deps/cubemesh-d648276c71735cf0.d: src/bin/cubemesh.rs

/root/repo/target/debug/deps/cubemesh-d648276c71735cf0: src/bin/cubemesh.rs

src/bin/cubemesh.rs:
