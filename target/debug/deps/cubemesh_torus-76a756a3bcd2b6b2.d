/root/repo/target/debug/deps/cubemesh_torus-76a756a3bcd2b6b2.d: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

/root/repo/target/debug/deps/cubemesh_torus-76a756a3bcd2b6b2: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

crates/torus/src/lib.rs:
crates/torus/src/axis.rs:
crates/torus/src/build.rs:
crates/torus/src/driver.rs:
crates/torus/src/predicates.rs:
