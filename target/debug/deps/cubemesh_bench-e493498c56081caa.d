/root/repo/target/debug/deps/cubemesh_bench-e493498c56081caa.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cubemesh_bench-e493498c56081caa: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
