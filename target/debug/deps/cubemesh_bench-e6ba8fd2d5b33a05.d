/root/repo/target/debug/deps/cubemesh_bench-e6ba8fd2d5b33a05.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcubemesh_bench-e6ba8fd2d5b33a05.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
