/root/repo/target/debug/examples/torus_ring-9f8aad764a95e44a.d: examples/torus_ring.rs Cargo.toml

/root/repo/target/debug/examples/libtorus_ring-9f8aad764a95e44a.rmeta: examples/torus_ring.rs Cargo.toml

examples/torus_ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
