/root/repo/target/debug/examples/torus_ring-111b134ae43ef872.d: examples/torus_ring.rs

/root/repo/target/debug/examples/torus_ring-111b134ae43ef872: examples/torus_ring.rs

examples/torus_ring.rs:
