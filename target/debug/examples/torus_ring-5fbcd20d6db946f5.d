/root/repo/target/debug/examples/torus_ring-5fbcd20d6db946f5.d: examples/torus_ring.rs

/root/repo/target/debug/examples/torus_ring-5fbcd20d6db946f5: examples/torus_ring.rs

examples/torus_ring.rs:
