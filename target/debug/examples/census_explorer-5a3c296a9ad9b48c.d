/root/repo/target/debug/examples/census_explorer-5a3c296a9ad9b48c.d: examples/census_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcensus_explorer-5a3c296a9ad9b48c.rmeta: examples/census_explorer.rs Cargo.toml

examples/census_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
