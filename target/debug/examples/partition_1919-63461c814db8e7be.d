/root/repo/target/debug/examples/partition_1919-63461c814db8e7be.d: examples/partition_1919.rs

/root/repo/target/debug/examples/partition_1919-63461c814db8e7be: examples/partition_1919.rs

examples/partition_1919.rs:
