/root/repo/target/debug/examples/partition_1919-ff747950b14979ae.d: examples/partition_1919.rs Cargo.toml

/root/repo/target/debug/examples/libpartition_1919-ff747950b14979ae.rmeta: examples/partition_1919.rs Cargo.toml

examples/partition_1919.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
