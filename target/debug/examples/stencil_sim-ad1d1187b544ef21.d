/root/repo/target/debug/examples/stencil_sim-ad1d1187b544ef21.d: examples/stencil_sim.rs Cargo.toml

/root/repo/target/debug/examples/libstencil_sim-ad1d1187b544ef21.rmeta: examples/stencil_sim.rs Cargo.toml

examples/stencil_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
