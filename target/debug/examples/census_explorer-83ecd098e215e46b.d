/root/repo/target/debug/examples/census_explorer-83ecd098e215e46b.d: examples/census_explorer.rs

/root/repo/target/debug/examples/census_explorer-83ecd098e215e46b: examples/census_explorer.rs

examples/census_explorer.rs:
