/root/repo/target/debug/examples/quickstart-8a06c7e4070f067e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8a06c7e4070f067e: examples/quickstart.rs

examples/quickstart.rs:
