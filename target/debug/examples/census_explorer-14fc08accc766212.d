/root/repo/target/debug/examples/census_explorer-14fc08accc766212.d: examples/census_explorer.rs

/root/repo/target/debug/examples/census_explorer-14fc08accc766212: examples/census_explorer.rs

examples/census_explorer.rs:
