/root/repo/target/debug/examples/stencil_sim-3257ba531e9ee7c7.d: examples/stencil_sim.rs

/root/repo/target/debug/examples/stencil_sim-3257ba531e9ee7c7: examples/stencil_sim.rs

examples/stencil_sim.rs:
