/root/repo/target/debug/examples/stencil_sim-dc499432c1fbff23.d: examples/stencil_sim.rs

/root/repo/target/debug/examples/stencil_sim-dc499432c1fbff23: examples/stencil_sim.rs

examples/stencil_sim.rs:
