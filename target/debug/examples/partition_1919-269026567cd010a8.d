/root/repo/target/debug/examples/partition_1919-269026567cd010a8.d: examples/partition_1919.rs

/root/repo/target/debug/examples/partition_1919-269026567cd010a8: examples/partition_1919.rs

examples/partition_1919.rs:
