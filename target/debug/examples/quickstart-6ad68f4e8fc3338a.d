/root/repo/target/debug/examples/quickstart-6ad68f4e8fc3338a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6ad68f4e8fc3338a: examples/quickstart.rs

examples/quickstart.rs:
