/root/repo/target/release/deps/cubemesh_search-5dd0cf8bad0eb9b7.d: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

/root/repo/target/release/deps/libcubemesh_search-5dd0cf8bad0eb9b7.rlib: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

/root/repo/target/release/deps/libcubemesh_search-5dd0cf8bad0eb9b7.rmeta: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

crates/search/src/lib.rs:
crates/search/src/anneal.rs:
crates/search/src/backtrack.rs:
crates/search/src/catalog.rs:
crates/search/src/routes.rs:
crates/search/src/catalog_data.rs:
