/root/repo/target/release/deps/cubemesh_netsim-f96e87358fecd3a0.d: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

/root/repo/target/release/deps/libcubemesh_netsim-f96e87358fecd3a0.rlib: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

/root/repo/target/release/deps/libcubemesh_netsim-f96e87358fecd3a0.rmeta: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

crates/netsim/src/lib.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/workload.rs:
