/root/repo/target/release/deps/discover-a9ba02d3c6e67443.d: crates/search/src/bin/discover.rs

/root/repo/target/release/deps/discover-a9ba02d3c6e67443: crates/search/src/bin/discover.rs

crates/search/src/bin/discover.rs:
