/root/repo/target/release/deps/cubemesh_gray-72d78c9bdf10058c.d: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs

/root/repo/target/release/deps/libcubemesh_gray-72d78c9bdf10058c.rlib: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs

/root/repo/target/release/deps/libcubemesh_gray-72d78c9bdf10058c.rmeta: crates/gray/src/lib.rs crates/gray/src/axis.rs crates/gray/src/code.rs crates/gray/src/ring.rs

crates/gray/src/lib.rs:
crates/gray/src/axis.rs:
crates/gray/src/code.rs:
crates/gray/src/ring.rs:
