/root/repo/target/release/deps/cubemesh_embedding-57c05ddc8398e950.d: crates/embedding/src/lib.rs crates/embedding/src/builders.rs crates/embedding/src/map.rs crates/embedding/src/metrics.rs crates/embedding/src/portable.rs crates/embedding/src/route.rs crates/embedding/src/router.rs crates/embedding/src/verify.rs

/root/repo/target/release/deps/libcubemesh_embedding-57c05ddc8398e950.rlib: crates/embedding/src/lib.rs crates/embedding/src/builders.rs crates/embedding/src/map.rs crates/embedding/src/metrics.rs crates/embedding/src/portable.rs crates/embedding/src/route.rs crates/embedding/src/router.rs crates/embedding/src/verify.rs

/root/repo/target/release/deps/libcubemesh_embedding-57c05ddc8398e950.rmeta: crates/embedding/src/lib.rs crates/embedding/src/builders.rs crates/embedding/src/map.rs crates/embedding/src/metrics.rs crates/embedding/src/portable.rs crates/embedding/src/route.rs crates/embedding/src/router.rs crates/embedding/src/verify.rs

crates/embedding/src/lib.rs:
crates/embedding/src/builders.rs:
crates/embedding/src/map.rs:
crates/embedding/src/metrics.rs:
crates/embedding/src/portable.rs:
crates/embedding/src/route.rs:
crates/embedding/src/router.rs:
crates/embedding/src/verify.rs:
