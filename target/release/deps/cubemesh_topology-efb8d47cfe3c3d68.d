/root/repo/target/release/deps/cubemesh_topology-efb8d47cfe3c3d68.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/hamming.rs crates/topology/src/hypercube.rs crates/topology/src/mesh.rs crates/topology/src/product.rs crates/topology/src/shape.rs crates/topology/src/torus.rs

/root/repo/target/release/deps/libcubemesh_topology-efb8d47cfe3c3d68.rlib: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/hamming.rs crates/topology/src/hypercube.rs crates/topology/src/mesh.rs crates/topology/src/product.rs crates/topology/src/shape.rs crates/topology/src/torus.rs

/root/repo/target/release/deps/libcubemesh_topology-efb8d47cfe3c3d68.rmeta: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/hamming.rs crates/topology/src/hypercube.rs crates/topology/src/mesh.rs crates/topology/src/product.rs crates/topology/src/shape.rs crates/topology/src/torus.rs

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/hamming.rs:
crates/topology/src/hypercube.rs:
crates/topology/src/mesh.rs:
crates/topology/src/product.rs:
crates/topology/src/shape.rs:
crates/topology/src/torus.rs:
