/root/repo/target/release/deps/cubemesh_netsim-1ed549943c7f8918.d: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

/root/repo/target/release/deps/libcubemesh_netsim-1ed549943c7f8918.rlib: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

/root/repo/target/release/deps/libcubemesh_netsim-1ed549943c7f8918.rmeta: crates/netsim/src/lib.rs crates/netsim/src/routing.rs crates/netsim/src/sim.rs crates/netsim/src/workload.rs

crates/netsim/src/lib.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/workload.rs:
