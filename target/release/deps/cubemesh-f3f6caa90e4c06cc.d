/root/repo/target/release/deps/cubemesh-f3f6caa90e4c06cc.d: src/bin/cubemesh.rs

/root/repo/target/release/deps/cubemesh-f3f6caa90e4c06cc: src/bin/cubemesh.rs

src/bin/cubemesh.rs:
