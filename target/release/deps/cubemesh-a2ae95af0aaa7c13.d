/root/repo/target/release/deps/cubemesh-a2ae95af0aaa7c13.d: src/lib.rs

/root/repo/target/release/deps/libcubemesh-a2ae95af0aaa7c13.rlib: src/lib.rs

/root/repo/target/release/deps/libcubemesh-a2ae95af0aaa7c13.rmeta: src/lib.rs

src/lib.rs:
