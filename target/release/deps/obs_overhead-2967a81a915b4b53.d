/root/repo/target/release/deps/obs_overhead-2967a81a915b4b53.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-2967a81a915b4b53: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
