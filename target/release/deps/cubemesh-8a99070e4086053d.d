/root/repo/target/release/deps/cubemesh-8a99070e4086053d.d: src/lib.rs

/root/repo/target/release/deps/libcubemesh-8a99070e4086053d.rlib: src/lib.rs

/root/repo/target/release/deps/libcubemesh-8a99070e4086053d.rmeta: src/lib.rs

src/lib.rs:
