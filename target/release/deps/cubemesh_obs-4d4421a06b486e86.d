/root/repo/target/release/deps/cubemesh_obs-4d4421a06b486e86.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libcubemesh_obs-4d4421a06b486e86.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libcubemesh_obs-4d4421a06b486e86.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/progress.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/span.rs:
