/root/repo/target/release/deps/cubemesh_embedding-bdb01ca3ccccae10.d: crates/embedding/src/lib.rs crates/embedding/src/builders.rs crates/embedding/src/map.rs crates/embedding/src/metrics.rs crates/embedding/src/portable.rs crates/embedding/src/route.rs crates/embedding/src/router.rs crates/embedding/src/verify.rs

/root/repo/target/release/deps/libcubemesh_embedding-bdb01ca3ccccae10.rlib: crates/embedding/src/lib.rs crates/embedding/src/builders.rs crates/embedding/src/map.rs crates/embedding/src/metrics.rs crates/embedding/src/portable.rs crates/embedding/src/route.rs crates/embedding/src/router.rs crates/embedding/src/verify.rs

/root/repo/target/release/deps/libcubemesh_embedding-bdb01ca3ccccae10.rmeta: crates/embedding/src/lib.rs crates/embedding/src/builders.rs crates/embedding/src/map.rs crates/embedding/src/metrics.rs crates/embedding/src/portable.rs crates/embedding/src/route.rs crates/embedding/src/router.rs crates/embedding/src/verify.rs

crates/embedding/src/lib.rs:
crates/embedding/src/builders.rs:
crates/embedding/src/map.rs:
crates/embedding/src/metrics.rs:
crates/embedding/src/portable.rs:
crates/embedding/src/route.rs:
crates/embedding/src/router.rs:
crates/embedding/src/verify.rs:
