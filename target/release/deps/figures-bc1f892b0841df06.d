/root/repo/target/release/deps/figures-bc1f892b0841df06.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-bc1f892b0841df06: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
