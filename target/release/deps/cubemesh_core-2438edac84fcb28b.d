/root/repo/target/release/deps/cubemesh_core-2438edac84fcb28b.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

/root/repo/target/release/deps/libcubemesh_core-2438edac84fcb28b.rlib: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

/root/repo/target/release/deps/libcubemesh_core-2438edac84fcb28b.rmeta: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/construct.rs:
crates/core/src/plan.rs:
crates/core/src/planner.rs:
crates/core/src/product.rs:
