/root/repo/target/release/deps/proptest-e98399cb12e47f89.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e98399cb12e47f89.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e98399cb12e47f89.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
