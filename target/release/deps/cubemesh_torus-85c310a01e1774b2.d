/root/repo/target/release/deps/cubemesh_torus-85c310a01e1774b2.d: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

/root/repo/target/release/deps/libcubemesh_torus-85c310a01e1774b2.rlib: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

/root/repo/target/release/deps/libcubemesh_torus-85c310a01e1774b2.rmeta: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

crates/torus/src/lib.rs:
crates/torus/src/axis.rs:
crates/torus/src/build.rs:
crates/torus/src/driver.rs:
crates/torus/src/predicates.rs:
