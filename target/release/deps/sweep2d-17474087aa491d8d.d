/root/repo/target/release/deps/sweep2d-17474087aa491d8d.d: crates/census/src/bin/sweep2d.rs

/root/repo/target/release/deps/sweep2d-17474087aa491d8d: crates/census/src/bin/sweep2d.rs

crates/census/src/bin/sweep2d.rs:
