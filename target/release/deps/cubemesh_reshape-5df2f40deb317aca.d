/root/repo/target/release/deps/cubemesh_reshape-5df2f40deb317aca.d: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

/root/repo/target/release/deps/libcubemesh_reshape-5df2f40deb317aca.rlib: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

/root/repo/target/release/deps/libcubemesh_reshape-5df2f40deb317aca.rmeta: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

crates/reshape/src/lib.rs:
crates/reshape/src/fold.rs:
crates/reshape/src/snake.rs:
