/root/repo/target/release/deps/cubemesh_reshape-851f4ad1619996fd.d: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

/root/repo/target/release/deps/libcubemesh_reshape-851f4ad1619996fd.rlib: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

/root/repo/target/release/deps/libcubemesh_reshape-851f4ad1619996fd.rmeta: crates/reshape/src/lib.rs crates/reshape/src/fold.rs crates/reshape/src/snake.rs

crates/reshape/src/lib.rs:
crates/reshape/src/fold.rs:
crates/reshape/src/snake.rs:
