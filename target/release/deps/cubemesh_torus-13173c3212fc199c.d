/root/repo/target/release/deps/cubemesh_torus-13173c3212fc199c.d: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

/root/repo/target/release/deps/libcubemesh_torus-13173c3212fc199c.rlib: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

/root/repo/target/release/deps/libcubemesh_torus-13173c3212fc199c.rmeta: crates/torus/src/lib.rs crates/torus/src/axis.rs crates/torus/src/build.rs crates/torus/src/driver.rs crates/torus/src/predicates.rs

crates/torus/src/lib.rs:
crates/torus/src/axis.rs:
crates/torus/src/build.rs:
crates/torus/src/driver.rs:
crates/torus/src/predicates.rs:
