/root/repo/target/release/deps/cubemesh_core-4ae5220d65d39a0c.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

/root/repo/target/release/deps/libcubemesh_core-4ae5220d65d39a0c.rlib: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

/root/repo/target/release/deps/libcubemesh_core-4ae5220d65d39a0c.rmeta: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/construct.rs crates/core/src/plan.rs crates/core/src/planner.rs crates/core/src/product.rs

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/construct.rs:
crates/core/src/plan.rs:
crates/core/src/planner.rs:
crates/core/src/product.rs:
