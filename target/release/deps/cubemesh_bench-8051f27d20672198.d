/root/repo/target/release/deps/cubemesh_bench-8051f27d20672198.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcubemesh_bench-8051f27d20672198.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcubemesh_bench-8051f27d20672198.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
