/root/repo/target/release/deps/cubemesh_manytoone-e4e146ea82194a16.d: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

/root/repo/target/release/deps/libcubemesh_manytoone-e4e146ea82194a16.rlib: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

/root/repo/target/release/deps/libcubemesh_manytoone-e4e146ea82194a16.rmeta: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

crates/manytoone/src/lib.rs:
crates/manytoone/src/contract.rs:
crates/manytoone/src/fold_cube.rs:
