/root/repo/target/release/deps/cubemesh_census-2bc5325ba5caff41.d: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs

/root/repo/target/release/deps/libcubemesh_census-2bc5325ba5caff41.rlib: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs

/root/repo/target/release/deps/libcubemesh_census-2bc5325ba5caff41.rmeta: crates/census/src/lib.rs crates/census/src/cover.rs crates/census/src/exceptions.rs crates/census/src/gray_fraction.rs crates/census/src/higher_k.rs crates/census/src/three_d.rs crates/census/src/two_d.rs

crates/census/src/lib.rs:
crates/census/src/cover.rs:
crates/census/src/exceptions.rs:
crates/census/src/gray_fraction.rs:
crates/census/src/higher_k.rs:
crates/census/src/three_d.rs:
crates/census/src/two_d.rs:
