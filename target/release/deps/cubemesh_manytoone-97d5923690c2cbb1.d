/root/repo/target/release/deps/cubemesh_manytoone-97d5923690c2cbb1.d: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

/root/repo/target/release/deps/libcubemesh_manytoone-97d5923690c2cbb1.rlib: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

/root/repo/target/release/deps/libcubemesh_manytoone-97d5923690c2cbb1.rmeta: crates/manytoone/src/lib.rs crates/manytoone/src/contract.rs crates/manytoone/src/fold_cube.rs

crates/manytoone/src/lib.rs:
crates/manytoone/src/contract.rs:
crates/manytoone/src/fold_cube.rs:
