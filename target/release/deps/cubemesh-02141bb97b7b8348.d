/root/repo/target/release/deps/cubemesh-02141bb97b7b8348.d: src/bin/cubemesh.rs

/root/repo/target/release/deps/cubemesh-02141bb97b7b8348: src/bin/cubemesh.rs

src/bin/cubemesh.rs:
