/root/repo/target/release/deps/rayon-1d98526e2c60fe77.d: crates/shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-1d98526e2c60fe77.rlib: crates/shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-1d98526e2c60fe77.rmeta: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
