/root/repo/target/release/deps/cubemesh_search-89b06a97c692e7ff.d: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

/root/repo/target/release/deps/libcubemesh_search-89b06a97c692e7ff.rlib: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

/root/repo/target/release/deps/libcubemesh_search-89b06a97c692e7ff.rmeta: crates/search/src/lib.rs crates/search/src/anneal.rs crates/search/src/backtrack.rs crates/search/src/catalog.rs crates/search/src/routes.rs crates/search/src/catalog_data.rs

crates/search/src/lib.rs:
crates/search/src/anneal.rs:
crates/search/src/backtrack.rs:
crates/search/src/catalog.rs:
crates/search/src/routes.rs:
crates/search/src/catalog_data.rs:
