/root/repo/target/release/deps/criterion-b3d84d8c190bfdfe.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b3d84d8c190bfdfe.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b3d84d8c190bfdfe.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
