/root/repo/target/release/examples/quickstart-8d1f3249d10fedf5.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8d1f3249d10fedf5: examples/quickstart.rs

examples/quickstart.rs:
