#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== audit: source lints (panic discipline, address casts) =="
cargo run --release -q -p cubemesh-audit -- lint

echo "== audit: plan-certificate self-check (32^3 sweep) =="
cargo run --release -q -p cubemesh-audit -- selfcheck --stats

echo "== bench: quick smoke (JSON emits, parallel == sequential metrics) =="
# The bench bin exits non-zero if the parallel and sequential engines
# disagree on any shape. Full ladder stays out of tier-1; --quick runs
# the small shapes only.
cargo run --release -q -p cubemesh-bench --bin cubemesh-bench -- \
    --quick --json --out /tmp/cubemesh_bench_smoke.json >/dev/null
test -s /tmp/cubemesh_bench_smoke.json
rm -f /tmp/cubemesh_bench_smoke.json

echo "All checks passed."
