#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; operates on the repo root.
#
#   check.sh          full gate
#   check.sh --quick  lint + a <=8^3 certify/selfcheck smoke (exits
#                     non-zero on any violation or certificate failure)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--quick" ]]; then
    echo "== quick: audit source lints =="
    cargo run --release -q -p cubemesh-audit -- lint
    echo "== quick: certify smoke (<=8^3) =="
    cargo run --release -q -p cubemesh-audit -- selfcheck --quick
    echo "Quick checks passed."
    exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== audit: source lints (panic discipline, casts, concurrency) =="
cargo run --release -q -p cubemesh-audit -- lint

echo "== audit: certificate self-check (mesh/torus/fold/contract, 32^3) =="
cargo run --release -q -p cubemesh-audit -- selfcheck --stats

echo "== audit: certify artifact (certificate vs floor, JSON) =="
mkdir -p target
cargo run --release -q -p cubemesh-audit -- certify --json --sweep 8 \
    > target/audit-certify.json
test -s target/audit-certify.json
echo "wrote target/audit-certify.json"

echo "== bench: quick smoke (JSON emits, parallel == sequential metrics) =="
# The bench bin exits non-zero if the parallel and sequential engines
# disagree on any shape, or if the BENCH_4 replay rung violates its
# congestion certificate. Full ladders stay out of tier-1; --quick runs
# the small shapes plus one replay point.
mkdir -p target
cargo run --release -q -p cubemesh-bench --bin cubemesh-bench -- \
    --quick --json --out /tmp/cubemesh_bench_smoke.json \
    --replay-out target/replay-report.json >/dev/null
test -s /tmp/cubemesh_bench_smoke.json
test -s target/replay-report.json
rm -f /tmp/cubemesh_bench_smoke.json
echo "wrote target/replay-report.json"

echo "== replay: determinism + conservation smoke =="
# --check replays the same recorded trace twice and exits non-zero unless
# the reports are byte-identical and delivered == injected.
cargo run --release -q --bin cubemesh -- replay 3 5 --pattern bursty \
    --horizon 64 --seed 9 --record /tmp/cubemesh_replay_smoke.jsonl --check
cargo run --release -q --bin cubemesh -- replay 3 5 \
    --trace /tmp/cubemesh_replay_smoke.jsonl --check
rm -f /tmp/cubemesh_replay_smoke.jsonl
# Slack join: measured dynamic peak must stay within the certificate
# (non-zero exit on violation).
cargo run --release -q --bin cubemesh -- replay 3 3 7 --slack

echo "All checks passed."
