#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; operates on the repo root.
#
#   check.sh          full gate
#   check.sh --quick  lint + a <=8^3 certify/selfcheck smoke (exits
#                     non-zero on any violation or certificate failure)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--quick" ]]; then
    echo "== quick: audit source lints =="
    cargo run --release -q -p cubemesh-audit -- lint
    echo "== quick: audit static analyzer =="
    cargo run --release -q -p cubemesh-audit -- analyze
    echo "== quick: certify smoke (<=8^3) =="
    cargo run --release -q -p cubemesh-audit -- selfcheck --quick
    echo "Quick checks passed."
    exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q (pool width 1 + default) =="
# The whole suite runs twice: once pinned to a single pool worker and
# once at the host's native width. Divergence between the two runs means
# a chunk merge or reduction is order-sensitive — exactly the bug class
# the work-stealing executor must never expose.
cargo build --release
CUBEMESH_THREADS=1 cargo test -q
cargo test -q

echo "== audit: source lints (panic discipline, casts, concurrency) =="
cargo run --release -q -p cubemesh-audit -- lint
mkdir -p target
cargo run --release -q -p cubemesh-audit -- lint --json > target/audit-lint.json
test -s target/audit-lint.json
echo "wrote target/audit-lint.json"

echo "== audit: static analyzer (CM-A001..A013, interprocedural dataflow) =="
# Hard gate: any finding fails the build. The JSON artifact doubles as
# the --baseline input for diff-mode runs and is archived for CI
# annotation alongside a SARIF 2.1.0 log; per-pass wall time is
# surfaced so a pass that blows the analyze budget is identifiable.
analyze_t0=$(date +%s%N)
cargo run --release -q -p cubemesh-audit -- analyze --json \
    --sarif target/audit-analyze.sarif > target/audit-analyze.json
analyze_t1=$(date +%s%N)
analyze_ms=$(( (analyze_t1 - analyze_t0) / 1000000 ))
test -s target/audit-analyze.json
test -s target/audit-analyze.sarif
grep -q '"findings":\[\]' target/audit-analyze.json
pass_times=$(sed -E 's/.*"pass_ms":\{([^}]*)\}.*/\1/' target/audit-analyze.json | tr -d '"')
analyzer_ms=$(sed -E 's/.*"elapsed_ms":([0-9]+).*/\1/' target/audit-analyze.json)
echo "per-pass ms: ${pass_times}"
echo "wrote target/audit-analyze.json + .sarif (0 findings, analyzer ${analyzer_ms} ms," \
     "${analyze_ms} ms end-to-end)"
# Hard analyze budget: the analyzer itself (excluding cargo overhead)
# must stay under 5s so the gate stays cheap enough to run per-commit.
if (( analyzer_ms > 5000 )); then
    echo "ERROR: analyzer took ${analyzer_ms} ms, over the 5000 ms budget" >&2
    exit 1
fi

echo "== audit: baseline diff mode (yesterday's artifact suppresses itself) =="
# The artifact just written must act as its own baseline: a diff run
# against it reports zero new findings and exits zero. Archived as
# target/audit-baseline.json so CI jobs can diff follow-up commits
# against the gated state instead of failing on pre-existing findings.
cp target/audit-analyze.json target/audit-baseline.json
cargo run --release -q -p cubemesh-audit -- analyze \
    --baseline target/audit-baseline.json >/dev/null
echo "wrote target/audit-baseline.json (diff mode clean against itself)"

echo "== audit: analyzer self-test (fixture corpus must trip) =="
# Each known-bad fixture in crates/audit/tests/fixtures/ must trip
# exactly its diagnostic code — a silently dead pass fails the gate.
cargo test --release -q -p cubemesh-audit --test fixtures

echo "== audit: injected-violation self-test (the analyze gate must trip) =="
# Drop known-bad sources into a scratch workspace shaped like a crate
# and run the analyzer over each; the gate failing to exit non-zero is
# itself a failure. One concurrency fixture (CM-A001) and one dataflow
# fixture (CM-A009) so both analyzer generations stay live in the gate.
for fixture in a001_worker_capture_mut a009_range_overflow_mul; do
    inject_dir=$(mktemp -d)
    mkdir -p "$inject_dir/src"
    cp "crates/audit/tests/fixtures/${fixture}.rs" "$inject_dir/src/lib.rs"
    if cargo run --release -q -p cubemesh-audit -- analyze --root "$inject_dir" >/dev/null 2>&1; then
        echo "ERROR: injected ${fixture} violation did not trip the analyze gate" >&2
        rm -rf "$inject_dir"
        exit 1
    fi
    rm -rf "$inject_dir"
done
echo "analyze gate trips on injected concurrency and dataflow violations, as designed."

echo "== audit: certificate self-check (mesh/torus/fold/contract, 32^3) =="
cargo run --release -q -p cubemesh-audit -- selfcheck --stats

echo "== audit: certify artifact (certificate vs floor, JSON) =="
mkdir -p target
cargo run --release -q -p cubemesh-audit -- certify --json --sweep 8 \
    > target/audit-certify.json
test -s target/audit-certify.json
echo "wrote target/audit-certify.json"

echo "== bench: quick smoke + perf-trajectory gate vs BENCH_3/BENCH_5 =="
# The bench bin exits non-zero if the parallel and sequential engines
# disagree on any shape, if the BENCH_4 replay rung violates its
# congestion certificate, or if any compare metric regresses past
# tolerance against the committed baselines (BENCH_3 shape/kernel rungs
# and BENCH_5 query-service rungs). Full ladders stay out of tier-1;
# --quick runs the small shapes plus one replay point (the service
# ladder always runs at fixed parameters). The run is traced, and the
# trace plus the compare report are archived under target/.
mkdir -p target
# --reps 25: the 16^3 rung is sub-millisecond, so min-of-3 timing is
# too noisy for a 15% gate; min-of-25 stays within a few percent.
cargo run --release -q -p cubemesh-bench --bin cubemesh-bench -- \
    --quick --reps 25 --json --out target/bench-quick.json \
    --replay-out target/replay-report.json \
    --compare BENCH_3.json --compare-out target/bench-compare.json \
    --service-out target/bench-service.json \
    --compare-service BENCH_5.json \
    --trace target/trace-quick.json >/dev/null
test -s target/bench-quick.json
test -s target/replay-report.json
test -s target/bench-compare.json
test -s target/bench-service.json
test -s target/trace-quick.json
echo "wrote target/bench-quick.json target/replay-report.json" \
     "target/bench-compare.json target/bench-service.json target/trace-quick.json"

echo "== bench: injected-regression self-test (the gate must trip) =="
# --inject-regression deflates this run's throughput 25%, past the 15%
# tolerance; the compare gate failing to exit non-zero is itself a
# failure. Compared against the quick docs written seconds ago (not the
# committed baselines), so host drift since the baselines were recorded
# can't eat the injection margin.
if cargo run --release -q -p cubemesh-bench --bin cubemesh-bench -- \
    --quick --reps 25 --no-replay --out /tmp/cubemesh_bench_inject.json \
    --service-out /tmp/cubemesh_bench5_inject.json \
    --compare target/bench-quick.json \
    --compare-service target/bench-service.json \
    --inject-regression >/dev/null 2>&1; then
    echo "ERROR: injected regression did not trip the compare gate" >&2
    exit 1
fi
rm -f /tmp/cubemesh_bench_inject.json /tmp/cubemesh_bench5_inject.json
echo "compare gate trips on an injected regression, as designed."

echo "== trace: determinism (event sequence stable modulo timestamps) =="
# Two traced runs of the same embed must produce identical JSONL event
# sequences once timestamps are stripped (ts_ns is always the last
# field, so a sed suffices). Single-threaded to pin chunk order.
RAYON_NUM_THREADS=1 cargo run --release -q --bin cubemesh -- \
    embed 9 9 9 --trace /tmp/cubemesh_trace_a.json >/dev/null
RAYON_NUM_THREADS=1 cargo run --release -q --bin cubemesh -- \
    embed 9 9 9 --trace /tmp/cubemesh_trace_b.json >/dev/null
sed -E 's/,"ts_ns":[0-9]+//' /tmp/cubemesh_trace_a.jsonl > /tmp/cubemesh_trace_a.seq
sed -E 's/,"ts_ns":[0-9]+//' /tmp/cubemesh_trace_b.jsonl > /tmp/cubemesh_trace_b.seq
diff /tmp/cubemesh_trace_a.seq /tmp/cubemesh_trace_b.seq
rm -f /tmp/cubemesh_trace_{a,b}.json /tmp/cubemesh_trace_{a,b}.folded \
    /tmp/cubemesh_trace_{a,b}.jsonl /tmp/cubemesh_trace_{a,b}.seq
echo "traced event sequences identical."

echo "== pool: thread-count invariance (replay report JSON diff) =="
# The same replay must serialize byte-identically whether the pool runs
# one worker or eight: every fan-out merge is order-preserving and every
# reduction is exact-integer, so stealing order must never show through.
# The two reports are archived under target/ and diffed.
CUBEMESH_THREADS=1 cargo run --release -q --bin cubemesh -- \
    replay 3 5 5 --pattern bursty --horizon 128 --seed 13 --json \
    > target/replay-threads-1.json
CUBEMESH_THREADS=8 cargo run --release -q --bin cubemesh -- \
    replay 3 5 5 --pattern bursty --horizon 128 --seed 13 --json \
    > target/replay-threads-8.json
diff target/replay-threads-1.json target/replay-threads-8.json
echo "replay report identical at pool width 1 and 8" \
     "(target/replay-threads-{1,8}.json)"

echo "== service: census DB determinism (pool width 1 vs 8, resume) =="
# The census plan database must be a pure function of its key universe:
# byte-identical whether the sweep ran on one pool worker or eight, and
# byte-identical when rebuilt entirely from a prior run's checkpoint.
SRV_DIR=$(mktemp -d)
CUBEMESH_THREADS=1 cargo run --release -q -p cubemesh-service --bin cubemesh-serve -- \
    build --max-axis 16 --out "$SRV_DIR/plans-t1.db" >/dev/null
CUBEMESH_THREADS=8 cargo run --release -q -p cubemesh-service --bin cubemesh-serve -- \
    build --max-axis 16 --out "$SRV_DIR/plans-t8.db" \
    --checkpoint "$SRV_DIR/sweep.ck" >/dev/null
cmp "$SRV_DIR/plans-t1.db" "$SRV_DIR/plans-t8.db"
# Rebuild against the finished checkpoint: every shape must resume (the
# report says so) and the bytes must still match the fresh builds.
resume_report=$(cargo run --release -q -p cubemesh-service --bin cubemesh-serve -- \
    build --max-axis 16 --out "$SRV_DIR/plans-resume.db" \
    --checkpoint "$SRV_DIR/sweep.ck")
echo "$resume_report"
echo "$resume_report" | grep -q '"resumed":0}' && {
    echo "ERROR: checkpointed rebuild resumed nothing" >&2; exit 1; }
cmp "$SRV_DIR/plans-t1.db" "$SRV_DIR/plans-resume.db"
echo "census DB byte-identical at pool width 1/8 and across a checkpoint resume"

echo "== service: TCP smoke (batched census query, cold miss, shutdown) =="
# Start cubemesh-serve on an ephemeral port, then drive it with its own
# query client: 1024 census shapes (database hits) plus one shape
# outside the universe (a live-planned cold miss that must land in the
# write-behind overflow log). The client exits non-zero if any result
# lacks a certificate, floors, a plan or a fingerprint, so certificate
# presence on every response is part of the gate. Shutdown goes through
# the protocol and the server process must exit cleanly.
cargo run --release -q -p cubemesh-service --bin cubemesh-serve -- \
    --db "$SRV_DIR/plans-t1.db" --overflow "$SRV_DIR/cold.ck" --workers 4 \
    > "$SRV_DIR/serve.out" &
SRV_PID=$!
for _ in $(seq 1 100); do
    grep -q '"listening"' "$SRV_DIR/serve.out" 2>/dev/null && break
    sleep 0.1
done
SRV_ADDR=$(sed -E 's/.*"listening":"([^"]+)".*/\1/' "$SRV_DIR/serve.out" | head -1)
test -n "$SRV_ADDR"
query_report=$(cargo run --release -q -p cubemesh-service --bin cubemesh-serve -- \
    query --addr "$SRV_ADDR" --census-max 16 --count 1024 --shapes "31x31x31")
echo "$query_report"
echo "$query_report" | grep -q '"db":'     # census shapes answered from the DB
echo "$query_report" | grep -q '"live":'   # the cold miss was planned live
cargo run --release -q -p cubemesh-service --bin cubemesh-serve -- \
    shutdown --addr "$SRV_ADDR" >/dev/null
wait "$SRV_PID"
test -s "$SRV_DIR/cold.ck"                 # overflow log holds the cold miss
rm -rf "$SRV_DIR"
echo "service answered 1025 shapes with certificates and shut down cleanly"

echo "== replay: determinism + conservation smoke =="
# --check replays the same recorded trace twice and exits non-zero unless
# the reports are byte-identical and delivered == injected.
cargo run --release -q --bin cubemesh -- replay 3 5 --pattern bursty \
    --horizon 64 --seed 9 --record /tmp/cubemesh_replay_smoke.jsonl --check
cargo run --release -q --bin cubemesh -- replay 3 5 \
    --trace-in /tmp/cubemesh_replay_smoke.jsonl --check
rm -f /tmp/cubemesh_replay_smoke.jsonl
# Slack join: measured dynamic peak must stay within the certificate
# (non-zero exit on violation).
cargo run --release -q --bin cubemesh -- replay 3 3 7 --slack

echo "All checks passed."
