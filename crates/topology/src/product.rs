//! Cartesian products of graphs — Definition 4 of the paper.
//!
//! `G₁ × G₂` has node set `V(G₁) × V(G₂)`; `[u,v]` and `[u',v']` are adjacent
//! iff (`u = u'` and `(v,v') ∈ E(G₂)`, a *G₂-type* edge) or (`v = v'` and
//! `(u,u') ∈ E(G₁)`, a *G₁-type* edge). The product node `[u, v]` gets the
//! linear index `u * |V(G₂)| + v`, consistent with [`crate::Shape`]'s
//! row-major convention when shapes are concatenated.

use crate::graph::Graph;

/// Cartesian product `g1 × g2` as a generic graph.
///
/// Satisfies `|V| = |V₁||V₂|` and `|E| = |V₁||E₂| + |V₂||E₁|` (checked in
/// tests, as stated after Definition 4 of the paper).
///
/// Returns `None` when `|V₁|·|V₂|` overflows `usize` — the product graph
/// cannot be represented, and the caller decides whether that is an error.
pub fn product(g1: &Graph, g2: &Graph) -> Option<Graph> {
    let n1 = g1.nodes();
    let n2 = g2.nodes();
    let n = n1.checked_mul(n2)?;
    let mut edges = Vec::with_capacity(n1 * g2.edge_count() + n2 * g1.edge_count());
    // G₂-type edges: one copy of G₂ per node of G₁.
    for u in 0..n1 {
        for &(a, b) in g2.edges() {
            edges.push(((u * n2 + a as usize) as u32, (u * n2 + b as usize) as u32));
        }
    }
    // G₁-type edges: one copy of G₁ per node of G₂.
    for v in 0..n2 {
        for &(a, b) in g1.edges() {
            edges.push(((a as usize * n2 + v) as u32, (b as usize * n2 + v) as u32));
        }
    }
    Some(Graph::from_canonical(n, edges))
}

/// Index of the product node `[u, v]` in `g1 × g2` where `n2 = |V(G₂)|`.
#[inline]
pub fn product_node(u: usize, v: usize, n2: usize) -> usize {
    u * n2 + v
}

/// Check whether `sub` is a subgraph of `host` under the identity node map
/// (same node count assumed; every `sub` edge must exist in `host`).
pub fn is_identity_subgraph(sub: &Graph, host: &Graph) -> bool {
    sub.nodes() == host.nodes()
        && sub
            .edges()
            .iter()
            .all(|&(a, b)| host.has_edge(a as usize, b as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::Hypercube;
    use crate::mesh::Mesh;
    use crate::torus::Torus;

    #[test]
    fn product_counts_match_definition() {
        let g1 = Mesh::from_dims(&[3]).to_graph();
        let g2 = Mesh::from_dims(&[4]).to_graph();
        let p = product(&g1, &g2).unwrap();
        assert_eq!(p.nodes(), 12);
        assert_eq!(
            p.edge_count(),
            g1.nodes() * g2.edge_count() + g2.nodes() * g1.edge_count()
        );
    }

    #[test]
    fn product_of_paths_is_mesh() {
        // Path(3) × Path(4) should be exactly the 3×4 mesh, node-for-node,
        // given the row-major index convention.
        let g1 = Mesh::from_dims(&[3]).to_graph();
        let g2 = Mesh::from_dims(&[4]).to_graph();
        let p = product(&g1, &g2).unwrap();
        let m = Mesh::from_dims(&[3, 4]).to_graph();
        assert_eq!(p.nodes(), m.nodes());
        assert_eq!(p.edge_count(), m.edge_count());
        assert!(is_identity_subgraph(&m, &p));
        assert!(is_identity_subgraph(&p, &m));
    }

    #[test]
    fn product_of_cubes_is_cube() {
        // Q₂ × Q₃ ≅ Q₅ with the concatenated-address node map (high bits
        // from Q₂): index u*8+v corresponds to address (u << 3) | v.
        let q2 = Hypercube::new(2).to_graph();
        let q3 = Hypercube::new(3).to_graph();
        let p = product(&q2, &q3).unwrap();
        let q5 = Hypercube::new(5).to_graph();
        assert!(is_identity_subgraph(&p, &q5));
        assert!(is_identity_subgraph(&q5, &p));
    }

    #[test]
    fn ring_in_even_grid_product_lemma1_base_case() {
        // Lemma 1's building block: an ℓ'×ℓ'' mesh with ℓ'ℓ'' even contains
        // a ring of size ℓ'ℓ''. Check the product of a 2-path and 3-path
        // (2×3 mesh) contains a 6-ring.
        let m = Mesh::from_dims(&[2, 3]).to_graph();
        let ring = Torus::from_dims(&[6]).to_graph();
        // The snake 0,1,2,5,4,3 is a hamiltonian cycle of the 2×3 mesh.
        let cycle = [0usize, 1, 2, 5, 4, 3];
        for i in 0..6 {
            let a = cycle[i];
            let b = cycle[(i + 1) % 6];
            assert!(m.has_edge(a, b), "missing ring edge {}-{}", a, b);
        }
        assert_eq!(ring.edge_count(), 6);
    }

    #[test]
    fn mesh_times_mesh_is_product_shape_supergraph() {
        // The product of an ℓ₁×ℓ₂ mesh and an ℓ₁'×ℓ₂' mesh is NOT the
        // (ℓ₁ℓ₁')×(ℓ₂ℓ₂') mesh, but contains a relabeled copy of it
        // (third fact in the proof of Corollary 2). Here just check counts:
        // the product has more edges than the big mesh needs.
        let a = Mesh::from_dims(&[2, 2]).to_graph();
        let b = Mesh::from_dims(&[3, 3]).to_graph();
        let p = product(&a, &b).unwrap();
        let big = Mesh::from_dims(&[6, 6]);
        assert_eq!(p.nodes(), big.nodes());
        assert!(p.edge_count() >= big.edge_count());
    }
}
