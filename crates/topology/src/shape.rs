//! Mesh shapes and row-major linear indexing.
//!
//! A [`Shape`] is the list of axis lengths `ℓ₁ × ℓ₂ × ⋯ × ℓ_k` of a mesh or
//! torus. Nodes are addressed either by coordinate vectors or by a linear
//! index in row-major order with the *last* axis varying fastest, matching
//! the usual C layout. All embedding code in the workspace converts between
//! the two through this type, so the convention lives in exactly one place.

use crate::hamming::{ceil_pow2, cube_dim};
use std::fmt;

/// The shape `ℓ₁ × ℓ₂ × ⋯ × ℓ_k` of a mesh. Axis lengths are `≥ 1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Largest admissible axis length, `2¹⁵`. The paper's meshes top out
    /// at `512³`; a factor-64 margin per axis keeps every `idx * extent`
    /// row-major step provably inside `u64` (`2⁴⁸ · 2¹⁵ ≤ 2⁶³`).
    pub const MAX_AXIS: usize = 1 << 15;

    /// Largest admissible node count, `2⁴⁶`. Together with `MAX_AXIS`
    /// this bounds every linear index, edge index (`≤ 3·nodes < 2⁴⁸`),
    /// and minimal-cube address the workspace computes.
    pub const MAX_NODES: usize = 1 << 46;

    /// Create a shape from axis lengths.
    ///
    /// # Panics
    /// Panics if `dims` is empty, any axis length is zero or exceeds
    /// [`Self::MAX_AXIS`], or the node count exceeds [`Self::MAX_NODES`].
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "a shape needs at least one axis");
        assert!(dims.iter().all(|&d| d > 0), "axis lengths must be >= 1");
        assert!(
            dims.iter().all(|&d| d <= Self::MAX_AXIS),
            "axis length exceeds Shape::MAX_AXIS (2^15)"
        );
        let nodes = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .filter(|&n| n <= Self::MAX_NODES);
        assert!(
            nodes.is_some(),
            "shape node count exceeds Shape::MAX_NODES (2^46)"
        );
        Shape(dims.to_vec())
    }

    /// Number of axes `k`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Axis lengths.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Length of axis `i`.
    #[inline]
    pub fn len(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Total number of nodes `Π ℓᵢ`.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension of the minimal Boolean cube able to host this shape
    /// one-to-one: `⌈log₂ Πℓᵢ⌉`.
    #[inline]
    pub fn minimal_cube_dim(&self) -> u32 {
        cube_dim(self.nodes() as u64)
    }

    /// `⌈Πℓᵢ⌉₂`: node count of the minimal cube.
    #[inline]
    pub fn minimal_cube_nodes(&self) -> u64 {
        ceil_pow2(self.nodes() as u64)
    }

    /// Dimension of the cube a binary-reflected Gray-code embedding needs:
    /// `Σᵢ ⌈log₂ ℓᵢ⌉`.
    #[inline]
    pub fn gray_cube_dim(&self) -> u32 {
        self.0.iter().map(|&d| cube_dim(d as u64)).sum()
    }

    /// `true` when a Gray-code embedding is already minimal-expansion, i.e.
    /// `Σ⌈log₂ ℓᵢ⌉ = ⌈log₂ Πℓᵢ⌉` (method 1 of §5 of the paper).
    #[inline]
    pub fn gray_is_minimal(&self) -> bool {
        self.gray_cube_dim() == self.minimal_cube_dim()
    }

    /// Convert a coordinate vector to the row-major linear index.
    ///
    /// # Panics
    /// Panics (in debug builds) if the coordinate rank mismatches or any
    /// coordinate is out of range.
    #[inline]
    pub fn index(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.rank());
        let mut idx = 0usize;
        for (c, extent) in coords.iter().zip(&self.0) {
            debug_assert!(c < extent, "coordinate out of range");
            idx = idx * extent + c;
        }
        idx
    }

    /// Convert a linear index back to coordinates.
    #[inline]
    pub fn coords(&self, mut index: usize) -> Vec<usize> {
        debug_assert!(index < self.nodes());
        let mut out = vec![0usize; self.rank()];
        for (o, d) in out.iter_mut().zip(&self.0).rev() {
            *o = index % d;
            index /= d;
        }
        out
    }

    /// Write coordinates of `index` into `out` without allocating.
    #[inline]
    pub fn coords_into(&self, mut index: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.rank());
        for (o, d) in out.iter_mut().zip(&self.0).rev() {
            *o = index % d;
            index /= d;
        }
    }

    /// Advance `coords` in place to the next coordinate vector in
    /// row-major order (last axis fastest). Returns `false` — wrapping
    /// back to all zeros — after the last coordinate. The allocation-free
    /// companion to [`Shape::iter_coords`] for hot sweeps.
    #[inline]
    pub fn advance_coords(&self, coords: &mut [usize]) -> bool {
        debug_assert_eq!(coords.len(), self.rank());
        for a in (0..self.rank()).rev() {
            coords[a] += 1;
            if coords[a] < self.0[a] {
                return true;
            }
            coords[a] = 0;
        }
        false
    }

    /// Iterate over all coordinate vectors in row-major order.
    pub fn iter_coords(&self) -> CoordIter<'_> {
        CoordIter {
            shape: self,
            next: Some(vec![0; self.rank()]),
        }
    }

    /// The shape with axes sorted ascending — the canonical representative
    /// under axis permutation. All embedding-existence questions in the paper
    /// are permutation-invariant, so censuses enumerate canonical shapes.
    pub fn canonical(&self) -> Shape {
        let mut d = self.0.clone();
        d.sort_unstable();
        Shape(d)
    }

    /// Shape of the Cartesian product of `self` and `other` (same rank):
    /// per-axis products, per Corollary 2 of the paper.
    ///
    /// # Panics
    /// Panics if the ranks differ.
    pub fn product(&self, other: &Shape) -> Shape {
        assert_eq!(
            self.rank(),
            other.rank(),
            "product of shapes with different ranks"
        );
        Shape(self.0.iter().zip(&other.0).map(|(a, b)| a * b).collect())
    }

    /// `true` if `self` fits inside `other` axis-by-axis (i.e. the `self`
    /// mesh is a submesh of the `other` mesh without permutation).
    pub fn fits_in(&self, other: &Shape) -> bool {
        self.rank() == other.rank() && self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Number of mesh edges: `Σᵢ (ℓᵢ−1) Πⱼ≠ᵢ ℓⱼ`.
    pub fn mesh_edges(&self) -> usize {
        let n = self.nodes();
        self.0.iter().map(|&d| n / d * (d - 1)).sum()
    }

    /// Number of torus edges. Axes of length 1 contribute no edges; axes of
    /// length 2 contribute one edge per line (the wrap edge coincides with
    /// the mesh edge).
    pub fn torus_edges(&self) -> usize {
        let n = self.nodes();
        self.0
            .iter()
            .map(|&d| match d {
                1 => 0,
                2 => n / 2,
                _ => n,
            })
            .sum()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape({})", self)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const K: usize> From<[usize; K]> for Shape {
    fn from(dims: [usize; K]) -> Self {
        Shape::new(&dims)
    }
}

/// Iterator over all coordinates of a shape in row-major order.
pub struct CoordIter<'a> {
    shape: &'a Shape,
    next: Option<Vec<usize>>,
}

impl Iterator for CoordIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.take()?;
        let mut succ = current.clone();
        let mut advanced = false;
        for axis in (0..self.shape.rank()).rev() {
            if succ[axis] + 1 < self.shape.len(axis) {
                succ[axis] += 1;
                advanced = true;
                break;
            }
            succ[axis] = 0;
        }
        if advanced {
            self.next = Some(succ);
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        for i in 0..s.nodes() {
            assert_eq!(s.index(&s.coords(i)), i);
        }
    }

    #[test]
    fn row_major_last_axis_fastest() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.index(&[0, 0]), 0);
        assert_eq!(s.index(&[0, 1]), 1);
        assert_eq!(s.index(&[0, 2]), 2);
        assert_eq!(s.index(&[1, 0]), 3);
    }

    #[test]
    fn advance_coords_walks_row_major() {
        let s = Shape::new(&[2, 1, 3]);
        let mut c = vec![0usize; 3];
        for i in 0..s.nodes() {
            assert_eq!(s.index(&c), i);
            let more = s.advance_coords(&mut c);
            assert_eq!(more, i + 1 < s.nodes());
        }
        assert_eq!(c, vec![0, 0, 0], "wraps back to the origin");
    }

    #[test]
    fn iter_coords_matches_linear_order() {
        let s = Shape::new(&[2, 2, 3]);
        let all: Vec<Vec<usize>> = s.iter_coords().collect();
        assert_eq!(all.len(), s.nodes());
        for (i, c) in all.iter().enumerate() {
            assert_eq!(s.index(c), i);
        }
    }

    #[test]
    fn edge_counts() {
        // 3x4 mesh: 3*(4-1) horizontal + 4*(3-1) vertical = 9 + 8 = 17.
        assert_eq!(Shape::new(&[3, 4]).mesh_edges(), 17);
        // Product-graph edge identity |E(G1xG2)| = |V1||E2| + |V2||E1|.
        let g1 = Shape::new(&[3, 4]);
        let g2 = Shape::new(&[2, 5]);
        let prod = g1.product(&g2);
        assert_eq!(prod.dims(), &[6, 20]);
        // A product of meshes is NOT the mesh of the product shape, so only
        // sanity-check the mesh count of the product shape directly.
        assert_eq!(prod.mesh_edges(), 6 * 19 + 20 * 5);
    }

    #[test]
    fn torus_edge_counts() {
        assert_eq!(Shape::new(&[3, 3]).torus_edges(), 18);
        assert_eq!(Shape::new(&[2, 3]).torus_edges(), 3 + 6);
        assert_eq!(Shape::new(&[1, 5]).torus_edges(), 5);
        assert_eq!(Shape::new(&[4]).torus_edges(), 4);
        assert_eq!(Shape::new(&[2]).torus_edges(), 1);
        assert_eq!(Shape::new(&[1]).torus_edges(), 0);
    }

    #[test]
    fn minimal_cube_and_gray() {
        let s = Shape::new(&[5, 6, 7]); // 210 nodes -> 8-cube
        assert_eq!(s.minimal_cube_dim(), 8);
        assert_eq!(s.gray_cube_dim(), 3 + 3 + 3);
        assert!(!s.gray_is_minimal());

        let t = Shape::new(&[3, 3]); // 9 nodes -> 4-cube, Gray needs 2+2
        assert!(t.gray_is_minimal());
    }

    #[test]
    fn canonical_sorts() {
        assert_eq!(Shape::new(&[7, 3, 5]).canonical(), Shape::new(&[3, 5, 7]));
    }

    #[test]
    fn fits_in_is_axiswise() {
        assert!(Shape::new(&[3, 3, 23]).fits_in(&Shape::new(&[3, 3, 25])));
        assert!(!Shape::new(&[3, 4, 23]).fits_in(&Shape::new(&[3, 3, 25])));
    }

    #[test]
    #[should_panic]
    fn zero_axis_rejected() {
        let _ = Shape::new(&[3, 0]);
    }
}
