//! `ℓ₁ × ℓ₂ × ⋯ × ℓ_k` meshes without wraparound — the paper's guest graphs.

use crate::graph::Graph;
use crate::shape::Shape;

/// A k-dimensional mesh. Two nodes are adjacent iff their coordinate vectors
/// differ by exactly one in exactly one axis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mesh {
    shape: Shape,
}

/// A mesh edge, identified by its lower endpoint (linear index) and axis.
///
/// The other endpoint is the node one step further along `axis`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MeshEdge {
    /// Linear index of the endpoint with the smaller coordinate along `axis`.
    pub node: usize,
    /// Axis along which the edge runs.
    pub axis: usize,
}

impl Mesh {
    /// Create a mesh of the given shape.
    pub fn new(shape: Shape) -> Self {
        Mesh { shape }
    }

    /// Convenience constructor from axis lengths.
    pub fn from_dims(dims: &[usize]) -> Self {
        Mesh::new(Shape::new(dims))
    }

    /// The mesh shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.shape.nodes()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.shape.mesh_edges()
    }

    /// Iterate all edges as [`MeshEdge`]s. The enumeration order is
    /// deterministic: nodes in row-major order, axes ascending.
    pub fn edges(&self) -> impl Iterator<Item = MeshEdge> + '_ {
        let rank = self.shape.rank();
        self.shape.iter_coords().flat_map(move |c| {
            let node = self.shape.index(&c);
            (0..rank).filter_map(move |axis| {
                (c[axis] + 1 < self.shape.len(axis)).then_some(MeshEdge { node, axis })
            })
        })
    }

    /// Endpoints `(u, v)` of a mesh edge as linear indices, `u` being the
    /// lower-coordinate endpoint.
    #[inline]
    pub fn edge_endpoints(&self, e: MeshEdge) -> (usize, usize) {
        // The stride of `axis` is the product of the lengths of later axes.
        let stride: usize = self.shape.dims()[e.axis + 1..].iter().product();
        (e.node, e.node + stride)
    }

    /// Lower the mesh to a generic [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let edges: Vec<(u32, u32)> = self
            .edges()
            .map(|e| self.edge_endpoints(e))
            .map(|(a, b)| (a as u32, b as u32))
            .collect();
        Graph::from_canonical(self.nodes(), edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_shape_formula() {
        for dims in [[3usize, 4, 5], [1, 1, 7], [2, 2, 2], [5, 1, 3]] {
            let m = Mesh::from_dims(&dims);
            assert_eq!(m.edges().count(), m.edge_count());
        }
    }

    #[test]
    fn edge_endpoints_are_adjacent_coords() {
        let m = Mesh::from_dims(&[3, 4, 5]);
        for e in m.edges() {
            let (u, v) = m.edge_endpoints(e);
            let cu = m.shape().coords(u);
            let cv = m.shape().coords(v);
            let diff: Vec<usize> = (0..3).filter(|&i| cu[i] != cv[i]).collect();
            assert_eq!(diff, vec![e.axis]);
            assert_eq!(cv[e.axis], cu[e.axis] + 1);
        }
    }

    #[test]
    fn graph_lowering_preserves_structure() {
        let m = Mesh::from_dims(&[4, 4]);
        let g = m.to_graph();
        assert_eq!(g.nodes(), 16);
        assert_eq!(g.edge_count(), 24);
        assert!(g.is_connected());
        // Corner degree 2, edge degree 3, interior degree 4.
        assert_eq!(g.degree(m.shape().index(&[0, 0])), 2);
        assert_eq!(g.degree(m.shape().index(&[0, 1])), 3);
        assert_eq!(g.degree(m.shape().index(&[1, 1])), 4);
    }

    #[test]
    fn path_mesh_diameter() {
        let m = Mesh::from_dims(&[7]);
        assert_eq!(m.to_graph().diameter(), Some(6));
    }

    #[test]
    fn mesh_diameter_is_coordinate_sum() {
        let m = Mesh::from_dims(&[3, 4]);
        assert_eq!(m.to_graph().diameter(), Some(2 + 3));
    }

    #[test]
    fn single_node_mesh() {
        let m = Mesh::from_dims(&[1, 1, 1]);
        assert_eq!(m.nodes(), 1);
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.edges().count(), 0);
    }
}
