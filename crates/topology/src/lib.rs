//! Graph substrate for Boolean-cube mesh embeddings.
//!
//! This crate provides the host and guest graph families used throughout the
//! reproduction of Ho & Johnsson, *Embedding Three-Dimensional Meshes in
//! Boolean Cubes by Graph Decomposition* (ICPP 1990):
//!
//! * [`Hypercube`] — the Boolean `n`-cube `Q_n` (host graphs),
//! * [`Mesh`] — `ℓ₁ × ℓ₂ × ⋯ × ℓ_k` meshes without wraparound (guest graphs),
//! * [`Torus`] — meshes with wraparound (guest graphs of §6 of the paper),
//! * [`Graph`] — a compact CSR representation with BFS utilities, into which
//!   every family converts, plus [`product`] for Cartesian products
//!   (Definition 4 of the paper).
//!
//! The crate is dependency-free and deliberately small-footprint: node ids
//! are `usize` indices, cube addresses are `u64` bit strings, and shapes are
//! thin wrappers over `Vec<usize>` with row-major (last-axis-fastest) linear
//! indexing provided by [`Shape`].

pub mod graph;
pub mod hamming;
pub mod hypercube;
pub mod mesh;
pub mod product;
pub mod shape;
pub mod torus;

pub use graph::{Graph, GraphError};
pub use hamming::{ceil_pow2, cube_dim, hamming, is_pow2};
pub use hypercube::Hypercube;
pub use mesh::{Mesh, MeshEdge};
pub use product::product;
pub use shape::Shape;
pub use torus::{Torus, TorusEdge};
