//! Compact undirected graphs in CSR form, with BFS utilities.
//!
//! Every graph family in this crate ([`crate::Mesh`], [`crate::Torus`],
//! [`crate::Hypercube`], Cartesian products) lowers to this representation
//! for generic algorithms: metric verification, subgraph checks, and the
//! direct-embedding search. Nodes are `0..n`; edges are stored once as
//! `(min, max)` pairs plus a CSR adjacency for traversal.

/// An undirected graph on nodes `0..nodes()` in CSR form.
#[derive(Clone, Debug)]
pub struct Graph {
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// CSR column indices (each undirected edge appears twice).
    adjacency: Vec<u32>,
    /// Each undirected edge once, as `(u, v)` with `u < v`.
    edges: Vec<(u32, u32)>,
}

/// Why an edge list cannot form a [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// More nodes than `u32` adjacency ids can address.
    TooManyNodes { nodes: usize },
    /// An edge endpoint is outside `0..n`.
    EndpointOutOfRange { a: usize, b: usize, nodes: usize },
    /// An edge joins a node to itself.
    SelfLoop { node: usize },
    /// The same undirected edge appears more than once.
    DuplicateEdge { a: u32, b: u32 },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::TooManyNodes { nodes } => {
                write!(f, "graph too large: {nodes} nodes exceed u32 ids")
            }
            GraphError::EndpointOutOfRange { a, b, nodes } => {
                write!(f, "edge ({a}, {b}) has an endpoint outside 0..{nodes}")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { a, b } => write!(f, "duplicate edge ({a}, {b})"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// Build a graph from an undirected edge list over nodes `0..n`.
    ///
    /// Self-loops and duplicate edges are rejected with a typed error, so
    /// untrusted edge lists (file loads, query inputs) can be validated by
    /// construction.
    pub fn from_edges(n: usize, edge_list: &[(usize, usize)]) -> Result<Self, GraphError> {
        if n > u32::MAX as usize {
            return Err(GraphError::TooManyNodes { nodes: n });
        }
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(edge_list.len());
        for &(a, b) in edge_list {
            if a >= n || b >= n {
                return Err(GraphError::EndpointOutOfRange { a, b, nodes: n });
            }
            if a == b {
                return Err(GraphError::SelfLoop { node: a });
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            edges.push((lo as u32, hi as u32));
        }
        edges.sort_unstable();
        if let Some(w) = edges.windows(2).find(|w| w[0] == w[1]) {
            return Err(GraphError::DuplicateEdge {
                a: w[0].0,
                b: w[0].1,
            });
        }
        Ok(Self::from_canonical(n, edges))
    }

    /// Build the CSR form from an edge list that is correct by
    /// construction: every edge `(u, v)` with `u < v < n`, no duplicates.
    /// The mesh/torus/cube/product lowerings emit exactly such lists, so
    /// they skip [`Self::from_edges`] validation (debug builds re-check).
    pub(crate) fn from_canonical(n: usize, mut edges: Vec<(u32, u32)>) -> Self {
        edges.sort_unstable();
        debug_assert!(
            edges.iter().all(|&(a, b)| a < b && (b as usize) < n),
            "non-canonical edge"
        );
        debug_assert!(
            edges.windows(2).all(|w| w[0] != w[1]),
            "duplicate canonical edge"
        );
        let mut degree = vec![0u32; n];
        for &(a, b) in &edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut adjacency = vec![0u32; edges.len() * 2];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(a, b) in &edges {
            adjacency[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            adjacency[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        Graph {
            offsets,
            adjacency,
            edges,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The undirected edge list, each edge once as `(u, v)` with `u < v`,
    /// sorted lexicographically.
    #[inline]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjacency[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// BFS distances from `src`; unreachable nodes get `u32::MAX`.
    pub fn bfs_distances(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.nodes()];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src as u32);
        while let Some(v) = queue.pop_front() {
            let d = dist[v as usize];
            for &w in self.neighbors(v as usize) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = d + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// A BFS ordering of all nodes starting from `src` (connected component
    /// first, then remaining nodes in index order). Used to order placement
    /// decisions in the direct-embedding search.
    pub fn bfs_order(&self, src: usize) -> Vec<u32> {
        let mut seen = vec![false; self.nodes()];
        let mut order = Vec::with_capacity(self.nodes());
        let mut queue = std::collections::VecDeque::new();
        seen[src] = true;
        queue.push_back(src as u32);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in self.neighbors(v as usize) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        for (v, &was_seen) in seen.iter().enumerate() {
            if !was_seen {
                order.push(v as u32);
            }
        }
        order
    }

    /// `true` if the graph is connected (the empty graph on one node is).
    pub fn is_connected(&self) -> bool {
        self.nodes() <= 1 || self.bfs_distances(0).iter().all(|&d| d != u32::MAX)
    }

    /// Graph diameter (max finite BFS distance over all pairs); `None` if
    /// disconnected. Quadratic — intended for small graphs and tests.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0;
        for v in 0..self.nodes() {
            let dist = self.bfs_distances(v);
            for &d in &dist {
                if d == u32::MAX {
                    return None;
                }
                best = best.max(d);
            }
        }
        Some(best)
    }

    /// `true` if `(a, b)` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.neighbors(a).contains(&(b as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn csr_construction() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.nodes(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 2);
        let mut nb: Vec<u32> = g.neighbors(0).to_vec();
        nb.sort_unstable();
        assert_eq!(nb, vec![1, 3]);
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.bfs_distances(2), vec![2, 1, 0, 1, 2]);
        assert_eq!(g.diameter(), Some(4));
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.bfs_distances(0)[2], u32::MAX);
    }

    #[test]
    fn bfs_order_visits_all() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let order = g.bfs_order(0);
        assert_eq!(order.len(), 5);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn duplicate_edges_rejected() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]).unwrap_err(),
            GraphError::DuplicateEdge { a: 0, b: 1 }
        );
    }

    #[test]
    fn self_loop_rejected() {
        assert_eq!(
            Graph::from_edges(3, &[(1, 1)]).unwrap_err(),
            GraphError::SelfLoop { node: 1 }
        );
    }

    #[test]
    fn out_of_range_endpoint_rejected() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 2)]).unwrap_err(),
            GraphError::EndpointOutOfRange {
                a: 0,
                b: 2,
                nodes: 2
            }
        );
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(0));
    }
}
