//! Bit-level utilities shared by every crate in the workspace.
//!
//! The paper's notation `⌈x⌉₂ = 2^{⌈log₂ x⌉}` appears in every expansion
//! argument; [`ceil_pow2`] and [`cube_dim`] implement it exactly for `u64`
//! inputs (node counts up to `2^63`).

/// Hamming distance between two cube addresses.
///
/// This is exactly the graph distance between the two nodes in any
/// hypercube large enough to contain both addresses.
///
/// ```
/// use cubemesh_topology::hamming;
/// assert_eq!(hamming(0b1010, 0b0011), 2);
/// assert_eq!(hamming(7, 7), 0);
/// ```
#[inline]
pub fn hamming(x: u64, y: u64) -> u32 {
    (x ^ y).count_ones()
}

/// Is `x` a power of two? (`0` is not.)
#[inline]
pub fn is_pow2(x: u64) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// `⌈log₂ x⌉` for `x ≥ 1`: the dimension of the minimal Boolean cube with at
/// least `x` nodes.
///
/// This is the quantity the paper writes as `⌈log₂ ℓ⌉`; the minimal cube for
/// an `ℓ₁ × ⋯ × ℓ_k` mesh has `cube_dim(ℓ₁⋯ℓ_k)` dimensions.
///
/// # Panics
/// Panics if `x == 0` (a mesh axis or node count is never zero).
///
/// ```
/// use cubemesh_topology::cube_dim;
/// assert_eq!(cube_dim(1), 0);
/// assert_eq!(cube_dim(2), 1);
/// assert_eq!(cube_dim(3), 2);
/// assert_eq!(cube_dim(512), 9);
/// assert_eq!(cube_dim(513), 10);
/// ```
#[inline]
pub fn cube_dim(x: u64) -> u32 {
    assert!(x > 0, "cube_dim(0) is undefined");
    64 - (x - 1).leading_zeros()
}

/// `⌈x⌉₂ = 2^{⌈log₂ x⌉}`: the smallest power of two `≥ x`, the paper's
/// bracket-2 notation.
///
/// # Panics
/// Panics if `x == 0` or if the result would overflow `u64`.
///
/// ```
/// use cubemesh_topology::ceil_pow2;
/// assert_eq!(ceil_pow2(1), 1);
/// assert_eq!(ceil_pow2(27), 32);
/// assert_eq!(ceil_pow2(64), 64);
/// ```
#[inline]
pub fn ceil_pow2(x: u64) -> u64 {
    let d = cube_dim(x);
    assert!(d < 64, "ceil_pow2 overflow");
    1u64 << d
}

/// Iterator over the set bit positions of `x`, least significant first.
///
/// Used when decomposing a Hamming path into single-bit steps.
pub fn bit_positions(x: u64) -> impl Iterator<Item = u32> {
    BitPositions(x)
}

struct BitPositions(u64);

impl Iterator for BitPositions {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            let b = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(b)
        }
    }
}

impl ExactSizeIterator for BitPositions {
    fn len(&self) -> usize {
        self.0.count_ones() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(0, 0), 0);
        assert_eq!(hamming(0, u64::MAX), 64);
        assert_eq!(hamming(0b1100, 0b1010), 2);
        for a in 0..32u64 {
            for b in 0..32u64 {
                assert_eq!(hamming(a, b), hamming(b, a));
            }
        }
    }

    #[test]
    fn hamming_triangle_inequality() {
        for a in 0..16u64 {
            for b in 0..16u64 {
                for c in 0..16u64 {
                    assert!(hamming(a, c) <= hamming(a, b) + hamming(b, c));
                }
            }
        }
    }

    #[test]
    fn cube_dim_values() {
        assert_eq!(cube_dim(1), 0);
        assert_eq!(cube_dim(2), 1);
        assert_eq!(cube_dim(3), 2);
        assert_eq!(cube_dim(4), 2);
        assert_eq!(cube_dim(5), 3);
        assert_eq!(cube_dim(1 << 20), 20);
        assert_eq!(cube_dim((1 << 20) + 1), 21);
        assert_eq!(cube_dim(u64::MAX), 64);
    }

    #[test]
    #[should_panic]
    fn cube_dim_zero_panics() {
        let _ = cube_dim(0);
    }

    #[test]
    fn ceil_pow2_values() {
        for x in 1..=4096u64 {
            let p = ceil_pow2(x);
            assert!(is_pow2(p));
            assert!(p >= x);
            assert!(p / 2 < x);
        }
    }

    #[test]
    fn ceil_pow2_is_submultiplicative() {
        // ⌈ab⌉₂ ≤ ⌈a⌉₂⌈b⌉₂ — the inequality behind every relative-expansion
        // argument in §5 of the paper.
        for a in 1..=128u64 {
            for b in 1..=128u64 {
                assert!(ceil_pow2(a * b) <= ceil_pow2(a) * ceil_pow2(b));
            }
        }
    }

    #[test]
    fn is_pow2_values() {
        assert!(!is_pow2(0));
        assert!(is_pow2(1));
        assert!(is_pow2(2));
        assert!(!is_pow2(3));
        assert!(is_pow2(1 << 63));
        assert!(!is_pow2(u64::MAX));
    }

    #[test]
    fn bit_positions_roundtrip() {
        for x in [0u64, 1, 0b1010, 0xdead_beef, u64::MAX] {
            let rebuilt = bit_positions(x).fold(0u64, |acc, b| acc | (1 << b));
            assert_eq!(rebuilt, x);
            assert_eq!(bit_positions(x).count(), x.count_ones() as usize);
        }
    }

    #[test]
    fn bit_positions_ascending() {
        let v: Vec<u32> = bit_positions(0b1011_0100).collect();
        assert_eq!(v, vec![2, 4, 5, 7]);
    }
}
