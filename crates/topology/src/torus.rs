//! Meshes with wraparound (tori) — the guest graphs of §6 of the paper.

use crate::graph::Graph;
use crate::mesh::MeshEdge;
use crate::shape::Shape;

/// A k-dimensional torus: like a mesh, plus a wraparound edge per line along
/// every axis of length ≥ 3. Axes of length 2 get no extra edge (the wrap
/// would duplicate the mesh edge) and axes of length 1 contribute nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Torus {
    shape: Shape,
}

/// A torus edge: either an ordinary mesh edge or a wraparound edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TorusEdge {
    /// A mesh edge between consecutive coordinates.
    Mesh(MeshEdge),
    /// A wraparound edge along `axis` on the line through `node`, which is
    /// the endpoint with coordinate `0` along `axis`.
    Wrap { node: usize, axis: usize },
}

impl Torus {
    /// Create a torus of the given shape.
    pub fn new(shape: Shape) -> Self {
        Torus { shape }
    }

    /// Convenience constructor from axis lengths.
    pub fn from_dims(dims: &[usize]) -> Self {
        Torus::new(Shape::new(dims))
    }

    /// The torus shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.shape.nodes()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.shape.torus_edges()
    }

    /// Iterate all torus edges deterministically (mesh edges first per node,
    /// then wraps, in row-major node order).
    pub fn edges(&self) -> impl Iterator<Item = TorusEdge> + '_ {
        let rank = self.shape.rank();
        self.shape.iter_coords().flat_map(move |c| {
            let node = self.shape.index(&c);
            (0..rank).filter_map(move |axis| {
                let len = self.shape.len(axis);
                if c[axis] + 1 < len {
                    Some(TorusEdge::Mesh(MeshEdge { node, axis }))
                } else if c[axis] == len - 1 && len >= 3 && c[axis] != 0 {
                    // Wrap edge emitted at the high end of the line so each
                    // wrap appears exactly once; `node` recorded as the
                    // low-coordinate endpoint below.
                    let mut low = c.clone();
                    low[axis] = 0;
                    Some(TorusEdge::Wrap {
                        node: self.shape.index(&low),
                        axis,
                    })
                } else {
                    None
                }
            })
        })
    }

    /// Endpoints of a torus edge as linear indices.
    pub fn edge_endpoints(&self, e: TorusEdge) -> (usize, usize) {
        match e {
            TorusEdge::Mesh(me) => {
                let stride: usize = self.shape.dims()[me.axis + 1..].iter().product();
                (me.node, me.node + stride)
            }
            TorusEdge::Wrap { node, axis } => {
                let stride: usize = self.shape.dims()[axis + 1..].iter().product();
                let len = self.shape.len(axis);
                (node, node + stride * (len - 1))
            }
        }
    }

    /// Lower the torus to a generic [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let edges: Vec<(u32, u32)> = self
            .edges()
            .map(|e| self.edge_endpoints(e))
            .map(|(a, b)| (a as u32, b as u32))
            .collect();
        Graph::from_canonical(self.nodes(), edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_formula() {
        for dims in [
            vec![3usize, 3],
            vec![4, 5],
            vec![2, 3],
            vec![1, 6],
            vec![2, 2],
            vec![3, 4, 5],
            vec![2, 2, 2],
        ] {
            let t = Torus::from_dims(&dims);
            assert_eq!(t.edges().count(), t.edge_count(), "shape {:?}", dims);
        }
    }

    #[test]
    fn ring_is_a_cycle() {
        let t = Torus::from_dims(&[5]);
        let g = t.to_graph();
        assert_eq!(g.edge_count(), 5);
        for v in 0..5 {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.diameter(), Some(2));
    }

    #[test]
    fn length_two_axis_has_no_double_edge() {
        let t = Torus::from_dims(&[2]);
        let g = t.to_graph();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn torus_is_regular_when_all_axes_long() {
        let t = Torus::from_dims(&[3, 4]);
        let g = t.to_graph();
        for v in 0..g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn torus_diameter_halves_mesh_diameter() {
        // 5-ring diameter 2 per axis.
        let t = Torus::from_dims(&[5, 5]);
        assert_eq!(t.to_graph().diameter(), Some(4));
    }

    #[test]
    fn wrap_endpoints() {
        let t = Torus::from_dims(&[4, 3]);
        let wraps: Vec<(usize, usize)> = t
            .edges()
            .filter_map(|e| match e {
                TorusEdge::Wrap { .. } => Some(t.edge_endpoints(e)),
                _ => None,
            })
            .collect();
        // 3 wraps along axis 0 (columns), 4 wraps along axis 1 (rows).
        assert_eq!(wraps.len(), 7);
        let s = t.shape().clone();
        assert!(wraps.contains(&(s.index(&[0, 0]), s.index(&[3, 0]))));
        assert!(wraps.contains(&(s.index(&[0, 0]), s.index(&[0, 2]))));
    }
}
