//! The Boolean `n`-cube `Q_n` — the paper's host graphs.
//!
//! Nodes are the `2ⁿ` bit strings of length `n`, stored as `u64`. Two nodes
//! are adjacent iff their Hamming distance is 1. For congestion accounting,
//! every (undirected) cube edge gets a dense index via [`Hypercube::edge_index`]:
//! the edge between `v` and `v ^ (1 << b)` is numbered `min(v, v^bit) * n + b`
//! compacted to `lower_node_dim_pairs`, giving `n · 2ⁿ⁻¹` edge slots.

use crate::graph::Graph;

/// The Boolean cube `Q_n`, `n ≤ 28` for lowering to [`Graph`]
/// (address and edge arithmetic work to `n ≤ 48`, [`Hypercube::MAX_DIM`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Largest admissible dimension. Bounded well below the 63 that `u64`
    /// addresses allow so that every derived quantity stays in range:
    /// `edge_count` is `n · 2ⁿ⁻¹ ≤ 48 · 2⁴⁷ < 2⁵³` and `edge_index` is
    /// `< 2⁴⁸ · 48 < 2⁵⁴`. Mesh guests are capped at `2⁴⁶` nodes
    /// (`Shape::MAX_NODES`), so no certified embedding needs a larger host.
    pub const MAX_DIM: u32 = 48;

    /// Create `Q_n`.
    ///
    /// # Panics
    /// Panics if `n > 48` ([`Self::MAX_DIM`]).
    pub fn new(dim: u32) -> Self {
        assert!(
            dim <= Self::MAX_DIM,
            "hypercube dimension too large for edge accounting"
        );
        Hypercube { dim }
    }

    /// Cube dimension `n`.
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of nodes `2ⁿ`.
    #[inline]
    pub fn nodes(&self) -> u64 {
        1u64 << self.dim
    }

    /// Number of undirected edges `n · 2ⁿ⁻¹`.
    #[inline]
    pub fn edge_count(&self) -> u64 {
        if self.dim == 0 {
            0
        } else {
            (self.dim as u64) << (self.dim - 1)
        }
    }

    /// `true` if `addr` is a node of this cube.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr < self.nodes()
    }

    /// Iterate the neighbors of `addr` (flip each of the `n` bits).
    pub fn neighbors(&self, addr: u64) -> impl Iterator<Item = u64> + '_ {
        debug_assert!(self.contains(addr));
        (0..self.dim).map(move |b| addr ^ (1u64 << b))
    }

    /// Dense index of the undirected edge `{v, v ^ (1<<bit)}` in
    /// `0 .. n·2ⁿ`. (Half the slots — those with the bit set in the lower
    /// endpoint — are never used; the 2× overallocation keeps indexing
    /// branch-free, which matters in the congestion counters.)
    #[inline]
    pub fn edge_index(&self, v: u64, bit: u32) -> usize {
        debug_assert!(bit < self.dim);
        let lo_addr = v & !(1u64 << bit);
        (lo_addr as usize) * self.dim as usize + bit as usize
    }

    /// Size of the edge-index space used by [`Self::edge_index`].
    #[inline]
    pub fn edge_index_space(&self) -> usize {
        (self.nodes() as usize) * (self.dim as usize)
    }

    /// Lower to a generic [`Graph`]. Only sensible for small `n`.
    ///
    /// # Panics
    /// Panics if `n > 28` (graph would not fit in memory anyway).
    pub fn to_graph(&self) -> Graph {
        assert!(
            self.dim <= 28,
            "refusing to materialize a Q_{} graph",
            self.dim
        );
        let n = self.nodes() as usize;
        let mut edges = Vec::with_capacity(self.edge_count() as usize);
        for v in 0..n as u64 {
            for b in 0..self.dim {
                let w = v ^ (1u64 << b);
                if v < w {
                    edges.push((v as u32, w as u32));
                }
            }
        }
        Graph::from_canonical(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming::hamming;

    #[test]
    fn counts() {
        let q = Hypercube::new(4);
        assert_eq!(q.nodes(), 16);
        assert_eq!(q.edge_count(), 32);
        assert_eq!(Hypercube::new(0).nodes(), 1);
        assert_eq!(Hypercube::new(0).edge_count(), 0);
    }

    #[test]
    fn neighbors_are_hamming_one() {
        let q = Hypercube::new(5);
        for v in 0..q.nodes() {
            let nb: Vec<u64> = q.neighbors(v).collect();
            assert_eq!(nb.len(), 5);
            for w in nb {
                assert_eq!(hamming(v, w), 1);
                assert!(q.contains(w));
            }
        }
    }

    #[test]
    fn edge_index_symmetric_and_unique() {
        let q = Hypercube::new(4);
        let mut seen = std::collections::HashSet::new();
        for v in 0..q.nodes() {
            for b in 0..q.dim() {
                let w = v ^ (1u64 << b);
                assert_eq!(q.edge_index(v, b), q.edge_index(w, b));
                if v < w {
                    assert!(seen.insert(q.edge_index(v, b)), "collision");
                    assert!(q.edge_index(v, b) < q.edge_index_space());
                }
            }
        }
        assert_eq!(seen.len() as u64, q.edge_count());
    }

    #[test]
    fn graph_lowering_is_hypercube() {
        let q = Hypercube::new(3);
        let g = q.to_graph();
        assert_eq!(g.nodes(), 8);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.diameter(), Some(3));
        // BFS distance equals Hamming distance.
        for v in 0..8u64 {
            let dist = g.bfs_distances(v as usize);
            for w in 0..8u64 {
                assert_eq!(dist[w as usize], hamming(v, w));
            }
        }
    }

    #[test]
    fn product_of_cubes_is_bigger_cube() {
        // |V(Q_a x Q_b)| and degree structure match Q_{a+b}: checked via
        // the generic product in product.rs tests; here check counts only.
        let a = Hypercube::new(2);
        let b = Hypercube::new(3);
        let c = Hypercube::new(5);
        assert_eq!(a.nodes() * b.nodes(), c.nodes());
        assert_eq!(
            a.edge_count() * b.nodes() + b.edge_count() * a.nodes(),
            c.edge_count()
        );
    }
}
