//! The canonical plan grammar is a wire format: every plan tree must
//! round-trip through `to_canonical_string` / `parse` exactly, for both
//! synthetic trees and real planner output. The fingerprint stored in the
//! plan database hashes this rendering, so a silent change here would
//! orphan every persisted record — the golden strings below pin the
//! grammar itself, the properties pin the inverse.

use cubemesh_core::plan::PlanParseError;
use cubemesh_core::{Plan, Planner};
use cubemesh_topology::Shape;
use proptest::prelude::*;

/// Deterministically grow a plan tree from a seed: leaves are Gray or
/// Direct, interior nodes are products of small shapes. Shapes here need
/// not satisfy any planner invariant — the grammar is defined over all
/// trees, not just constructible ones.
fn synth_plan(seed: u64, depth: u32) -> Plan {
    let mut s = seed;
    let mut next = move || {
        // splitmix64 step: decorrelates the seed into per-node choices.
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    synth_with(&mut next, depth)
}

fn synth_with(next: &mut impl FnMut() -> u64, depth: u32) -> Plan {
    let r = next();
    if depth == 0 || r.is_multiple_of(3) {
        if r.is_multiple_of(2) {
            Plan::Gray
        } else {
            Plan::Direct
        }
    } else {
        let rank = (next() % 3 + 1) as usize;
        let mut f1 = Vec::with_capacity(rank);
        let mut f2 = Vec::with_capacity(rank);
        for _ in 0..rank {
            f1.push((next() % 17 + 1) as usize);
            f2.push((next() % 17 + 1) as usize);
        }
        Plan::Product {
            f1: Shape::new(&f1),
            p1: Box::new(synth_with(next, depth - 1)),
            f2: Shape::new(&f2),
            p2: Box::new(synth_with(next, depth - 1)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn synthetic_trees_round_trip(seed in any::<u64>(), depth in 0u32..5) {
        let plan = synth_plan(seed, depth);
        let s = plan.to_canonical_string();
        prop_assert_eq!(Plan::parse(&s).as_ref(), Ok(&plan));
        // The rendering is a fixed point: parse(s) re-renders to s.
        prop_assert_eq!(plan.to_canonical_string(), s);
    }

    #[test]
    fn planner_output_round_trips(a in 1usize..20, b in 1usize..20, c in 1usize..20) {
        let shape = Shape::new(&[a, b, c]);
        if let Some(plan) = Planner::new().plan(&shape) {
            let s = plan.to_canonical_string();
            prop_assert_eq!(Plan::parse(&s), Ok(plan));
        }
    }

    #[test]
    fn parse_never_panics(chars in prop::collection::vec(
        prop::sample::select("gdx()* 0123456789".chars().collect::<Vec<char>>()),
        0usize..40,
    )) {
        // Any byte soup must come back as Ok or a typed error, never a
        // panic — the service feeds network input through this parser.
        let input: String = chars.into_iter().collect();
        let _ = Plan::parse(&input);
    }
}

#[test]
fn grammar_is_pinned() {
    // Golden spellings: changing any of these breaks every persisted
    // fingerprint. Bump the plandb format version if you must.
    assert_eq!(Plan::Gray.to_canonical_string(), "g");
    assert_eq!(Plan::Direct.to_canonical_string(), "d");
    let plan = Plan::Product {
        f1: Shape::new(&[3, 5, 1]),
        p1: Box::new(Plan::Direct),
        f2: Shape::new(&[1, 1, 7]),
        p2: Box::new(Plan::Gray),
    };
    assert_eq!(plan.to_canonical_string(), "(3x5x1 d * 1x1x7 g)");
}

#[test]
fn errors_carry_positions() {
    assert_eq!(
        Plan::parse("q"),
        Err(PlanParseError::Unexpected {
            offset: 0,
            expected: "'g', 'd' or '('",
        })
    );
    assert_eq!(
        Plan::parse("gX"),
        Err(PlanParseError::TrailingInput { offset: 1 })
    );
    assert!(matches!(
        Plan::parse("(3x5 d"),
        Err(PlanParseError::UnexpectedEnd { .. })
    ));
}
