//! Graph-decomposition embeddings of meshes in Boolean cubes — the primary
//! contribution of Ho & Johnsson (ICPP 1990).
//!
//! The central theorem (Theorem 3) says an embedding of a product graph
//! `G₁ × G₂ → H₁ × H₂` can be assembled from embeddings of the factors,
//! inheriting `dilation = max(d₁, d₂)`, `congestion = max(c₁, c₂)` and
//! `expansion = ε₁ · ε₂`. Because hypercubes are products of hypercubes and
//! big meshes are subgraphs of products of small meshes (with a
//! boustrophedon reflection), this turns a few small *direct* embeddings
//! plus Gray codes into minimal-expansion dilation-2 embeddings of almost
//! every 3-D mesh.
//!
//! * [`product`] — the constructive Theorem 3 / Corollary 2 machinery
//!   (explicit maps *and* routes, so the metric laws hold exactly, not just
//!   as bounds);
//! * [`plan`] — the decomposition-plan IR;
//! * [`planner`] — the §4.2 strategy: a memoized recursive planner that
//!   picks Gray axes, direct catalog pieces, and axis splits;
//! * [`strategy`] — pluggable, confidence-ranked decomposition
//!   strategies (method sets S₁..S₄ as [`planner::RuleMask`] views),
//!   the provenance layer behind the plan database;
//! * [`classify`] — the paper-faithful arithmetic classification (methods
//!   1–4 of §5) used by the Figure-2 census;
//! * [`construct`] — lowering a [`plan::Plan`] to a verified
//!   [`cubemesh_embedding::Embedding`].
//!
//! The one-call entry points are [`embed_mesh`] (construct the best
//! embedding we can) and [`planner::Planner`] for repeated planning with a
//! shared memo table.

pub mod classify;
pub mod construct;
pub mod plan;
pub mod planner;
pub mod product;
pub mod strategy;

pub use classify::{classify3, Method};
pub use construct::{construct, restrict, ConstructError};
pub use plan::{Plan, PlanParseError};
pub use planner::{Planner, RuleMask};
pub use product::{mesh_product_embedding, product_embedding};
pub use strategy::{default_strategies, plan_with_strategies, PlanStrategy, StrategyPlan};

use cubemesh_embedding::{gray_mesh_embedding, Embedding};
use cubemesh_topology::Shape;

/// Embed a mesh with the full §4.2 strategy: a minimal-expansion
/// dilation-≤2 embedding when the planner finds one, otherwise the Gray
/// code embedding (dilation 1, non-minimal expansion).
///
/// Returns the embedding and whether it is minimal-expansion.
pub fn embed_mesh(shape: &Shape) -> (Embedding, bool) {
    let mut planner = Planner::new();
    match planner
        .plan(shape)
        .and_then(|plan| construct(shape, &plan).ok())
    {
        Some(emb) => (emb, true),
        None => (gray_mesh_embedding(shape), false),
    }
}
