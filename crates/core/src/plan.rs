//! The decomposition-plan IR.
//!
//! A [`Plan`] records *how* a mesh is to be embedded, mirroring §4.2 of the
//! paper: Gray-code it whole, take it from the direct catalog, or write it
//! as (a subgraph of) a product of two planned factor meshes per
//! Corollary 2. Plans are built by [`crate::planner::Planner`] and lowered
//! to embeddings by [`crate::construct::construct`].
//!
//! Plans are expressed on *reduced* shapes (length-1 axes dropped); the
//! construct step lifts the result back to the caller's rank, which is free
//! because length-1 axes change neither linear indices nor edge sets.

use cubemesh_search::catalog_lookup;
use cubemesh_topology::Shape;
use std::fmt;

/// How to embed one (reduced-rank) mesh.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Binary-reflected Gray code on every axis (dilation 1).
    Gray,
    /// A baked direct embedding from the search catalog (dilation ≤ 2,
    /// congestion ≤ 2, minimal cube).
    Direct,
    /// Corollary 2: the mesh is a subgraph of `f1 ⊙ f2` (per-axis
    /// products, `shape ≤ f1 ⊙ f2` axiswise); embed the factors with the
    /// sub-plans and compose with the reflected product construction.
    Product {
        /// First factor shape (same rank as the planned shape).
        f1: Shape,
        /// Plan for `f1` (on its reduced shape).
        p1: Box<Plan>,
        /// Second factor shape.
        f2: Shape,
        /// Plan for `f2` (on its reduced shape).
        p2: Box<Plan>,
    },
}

impl Plan {
    /// Host-cube dimension this plan produces for `shape`.
    ///
    /// A `Direct` node whose shape is absent from the catalog (a
    /// malformed plan tree; planner output never is) falls back to the
    /// minimal cube dimension, which is where every catalog embedding
    /// lands anyway.
    pub fn host_dim(&self, shape: &Shape) -> u32 {
        match self {
            Plan::Gray => shape.gray_cube_dim(),
            Plan::Direct => {
                let reduced = reduce(shape);
                catalog_lookup(&reduced)
                    .map(|(e, _)| e.host_dim)
                    .unwrap_or_else(|| reduced.minimal_cube_dim())
            }
            Plan::Product { f1, p1, f2, p2 } => p1.host_dim(f1) + p2.host_dim(f2),
        }
    }

    /// Worst-case dilation bound of the plan (Theorem 3: the max over the
    /// decomposition tree; Gray = 1, Direct = 2).
    pub fn dilation_bound(&self) -> u32 {
        match self {
            Plan::Gray => 1,
            Plan::Direct => 2,
            Plan::Product { p1, p2, .. } => p1.dilation_bound().max(p2.dilation_bound()),
        }
    }

    /// Worst-case congestion bound of the plan (Theorem 3).
    pub fn congestion_bound(&self) -> u32 {
        match self {
            Plan::Gray => 1,
            Plan::Direct => 2,
            Plan::Product { p1, p2, .. } => p1.congestion_bound().max(p2.congestion_bound()),
        }
    }

    /// Number of leaves (Gray/Direct pieces) in the plan tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            Plan::Gray | Plan::Direct => 1,
            Plan::Product { p1, p2, .. } => p1.leaf_count() + p2.leaf_count(),
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Gray => write!(f, "gray"),
            Plan::Direct => write!(f, "direct"),
            Plan::Product { f1, p1, f2, p2 } => {
                write!(f, "({} as {}) x ({} as {})", f1, p1, f2, p2)
            }
        }
    }
}

/// Drop length-1 axes; a 0-rank result becomes the 1-node shape `[1]`.
pub fn reduce(shape: &Shape) -> Shape {
    let dims: Vec<usize> = shape.dims().iter().copied().filter(|&d| d > 1).collect();
    if dims.is_empty() {
        Shape::new(&[1])
    } else {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_drops_ones() {
        assert_eq!(reduce(&Shape::new(&[1, 5, 1, 3])), Shape::new(&[5, 3]));
        assert_eq!(reduce(&Shape::new(&[1, 1])), Shape::new(&[1]));
        assert_eq!(reduce(&Shape::new(&[4, 4])), Shape::new(&[4, 4]));
    }

    #[test]
    fn gray_plan_dims() {
        let shape = Shape::new(&[5, 6, 7]);
        assert_eq!(Plan::Gray.host_dim(&shape), 9);
        assert_eq!(Plan::Gray.dilation_bound(), 1);
        assert_eq!(Plan::Gray.congestion_bound(), 1);
    }

    #[test]
    fn direct_plan_dims_from_catalog() {
        let shape = Shape::new(&[3, 5]);
        assert_eq!(Plan::Direct.host_dim(&shape), 4);
        // Length-1 axes are transparent.
        let shape3 = Shape::new(&[3, 1, 5]);
        assert_eq!(Plan::Direct.host_dim(&shape3), 4);
    }

    #[test]
    fn product_plan_dims_add() {
        // 12x20 = (3x5) ⊙ (4x4) — the paper's §4.2 example.
        let plan = Plan::Product {
            f1: Shape::new(&[3, 5]),
            p1: Box::new(Plan::Direct),
            f2: Shape::new(&[4, 4]),
            p2: Box::new(Plan::Gray),
        };
        let shape = Shape::new(&[12, 20]);
        assert_eq!(plan.host_dim(&shape), 4 + 4);
        assert_eq!(plan.dilation_bound(), 2);
        assert_eq!(plan.congestion_bound(), 2);
        assert_eq!(plan.leaf_count(), 2);
        assert_eq!(shape.minimal_cube_dim(), 8);
    }
}
