//! The decomposition-plan IR.
//!
//! A [`Plan`] records *how* a mesh is to be embedded, mirroring §4.2 of the
//! paper: Gray-code it whole, take it from the direct catalog, or write it
//! as (a subgraph of) a product of two planned factor meshes per
//! Corollary 2. Plans are built by [`crate::planner::Planner`] and lowered
//! to embeddings by [`crate::construct::construct`].
//!
//! Plans are expressed on *reduced* shapes (length-1 axes dropped); the
//! construct step lifts the result back to the caller's rank, which is free
//! because length-1 axes change neither linear indices nor edge sets.

use cubemesh_search::catalog_lookup;
use cubemesh_topology::Shape;
use std::fmt;

/// How to embed one (reduced-rank) mesh.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Binary-reflected Gray code on every axis (dilation 1).
    Gray,
    /// A baked direct embedding from the search catalog (dilation ≤ 2,
    /// congestion ≤ 2, minimal cube).
    Direct,
    /// Corollary 2: the mesh is a subgraph of `f1 ⊙ f2` (per-axis
    /// products, `shape ≤ f1 ⊙ f2` axiswise); embed the factors with the
    /// sub-plans and compose with the reflected product construction.
    Product {
        /// First factor shape (same rank as the planned shape).
        f1: Shape,
        /// Plan for `f1` (on its reduced shape).
        p1: Box<Plan>,
        /// Second factor shape.
        f2: Shape,
        /// Plan for `f2` (on its reduced shape).
        p2: Box<Plan>,
    },
}

impl Plan {
    /// Host-cube dimension this plan produces for `shape`.
    ///
    /// A `Direct` node whose shape is absent from the catalog (a
    /// malformed plan tree; planner output never is) falls back to the
    /// minimal cube dimension, which is where every catalog embedding
    /// lands anyway.
    pub fn host_dim(&self, shape: &Shape) -> u32 {
        match self {
            Plan::Gray => shape.gray_cube_dim(),
            Plan::Direct => {
                let reduced = reduce(shape);
                catalog_lookup(&reduced)
                    .map(|(e, _)| e.host_dim)
                    .unwrap_or_else(|| reduced.minimal_cube_dim())
            }
            Plan::Product { f1, p1, f2, p2 } => p1.host_dim(f1) + p2.host_dim(f2),
        }
    }

    /// Worst-case dilation bound of the plan (Theorem 3: the max over the
    /// decomposition tree; Gray = 1, Direct = 2).
    pub fn dilation_bound(&self) -> u32 {
        match self {
            Plan::Gray => 1,
            Plan::Direct => 2,
            Plan::Product { p1, p2, .. } => p1.dilation_bound().max(p2.dilation_bound()),
        }
    }

    /// Worst-case congestion bound of the plan (Theorem 3).
    pub fn congestion_bound(&self) -> u32 {
        match self {
            Plan::Gray => 1,
            Plan::Direct => 2,
            Plan::Product { p1, p2, .. } => p1.congestion_bound().max(p2.congestion_bound()),
        }
    }

    /// Number of leaves (Gray/Direct pieces) in the plan tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            Plan::Gray | Plan::Direct => 1,
            Plan::Product { p1, p2, .. } => p1.leaf_count() + p2.leaf_count(),
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Gray => write!(f, "gray"),
            Plan::Direct => write!(f, "direct"),
            Plan::Product { f1, p1, f2, p2 } => {
                write!(f, "({} as {}) x ({} as {})", f1, p1, f2, p2)
            }
        }
    }
}

/// Why a canonical plan string failed to parse. The offset is a byte
/// position into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanParseError {
    /// Input ended while a production was still open.
    UnexpectedEnd {
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// An unexpected byte where a production had to start or continue.
    Unexpected {
        /// Byte offset of the offending character.
        offset: usize,
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// A shape token named an extent outside `1..=Shape::MAX_AXIS`, or
    /// the extents multiply past `Shape::MAX_NODES`.
    BadShape {
        /// Byte offset where the shape token started.
        offset: usize,
    },
    /// Parsing consumed a valid plan but bytes remained.
    TrailingInput {
        /// Byte offset of the first unconsumed character.
        offset: usize,
    },
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanParseError::UnexpectedEnd { expected } => {
                write!(f, "input ended while expecting {expected}")
            }
            PlanParseError::Unexpected { offset, expected } => {
                write!(f, "expected {expected} at byte {offset}")
            }
            PlanParseError::BadShape { offset } => {
                write!(f, "shape at byte {offset} is out of the valid extent range")
            }
            PlanParseError::TrailingInput { offset } => {
                write!(f, "trailing input after the plan at byte {offset}")
            }
        }
    }
}

impl std::error::Error for PlanParseError {}

impl Plan {
    /// Render the plan in the *canonical* stable grammar:
    ///
    /// ```text
    /// plan  := "g" | "d" | "(" shape " " plan " * " shape " " plan ")"
    /// shape := extent ("x" extent)*
    /// ```
    ///
    /// e.g. `(3x5 d * 4x4 g)`. Unlike the human-facing [`Display`]
    /// rendering, this grammar is a versioned wire format: it
    /// round-trips through [`Plan::parse`] byte-for-byte and is the
    /// string [`cubemesh-audit`'s plan fingerprint][fp] hashes, so its
    /// stability is pinned by golden tests and must never change
    /// silently.
    ///
    /// [fp]: https://example.org/cubemesh
    ///
    /// [`Display`]: fmt::Display
    pub fn to_canonical_string(&self) -> String {
        let mut out = String::new();
        self.canonical_into(&mut out);
        out
    }

    fn canonical_into(&self, out: &mut String) {
        match self {
            Plan::Gray => out.push('g'),
            Plan::Direct => out.push('d'),
            Plan::Product { f1, p1, f2, p2 } => {
                out.push('(');
                canonical_shape_into(f1, out);
                out.push(' ');
                p1.canonical_into(out);
                out.push_str(" * ");
                canonical_shape_into(f2, out);
                out.push(' ');
                p2.canonical_into(out);
                out.push(')');
            }
        }
    }

    /// Parse a plan from the canonical grammar produced by
    /// [`Plan::to_canonical_string`]. Inverse of that rendering:
    /// `Plan::parse(&p.to_canonical_string()) == Ok(p)` for every plan
    /// tree, and any accepted input re-renders to itself.
    pub fn parse(input: &str) -> Result<Plan, PlanParseError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let plan = parse_plan(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(PlanParseError::TrailingInput { offset: pos });
        }
        Ok(plan)
    }
}

fn canonical_shape_into(shape: &Shape, out: &mut String) {
    for (i, d) in shape.dims().iter().enumerate() {
        if i > 0 {
            out.push('x');
        }
        out.push_str(&d.to_string());
    }
}

fn parse_plan(b: &[u8], pos: &mut usize) -> Result<Plan, PlanParseError> {
    match b.get(*pos) {
        Some(b'g') => {
            *pos += 1;
            Ok(Plan::Gray)
        }
        Some(b'd') => {
            *pos += 1;
            Ok(Plan::Direct)
        }
        Some(b'(') => {
            *pos += 1;
            let f1 = parse_shape(b, pos)?;
            expect(b, pos, b" ")?;
            let p1 = parse_plan(b, pos)?;
            expect(b, pos, b" * ")?;
            let f2 = parse_shape(b, pos)?;
            expect(b, pos, b" ")?;
            let p2 = parse_plan(b, pos)?;
            expect(b, pos, b")")?;
            Ok(Plan::Product {
                f1,
                p1: Box::new(p1),
                f2,
                p2: Box::new(p2),
            })
        }
        Some(_) => Err(PlanParseError::Unexpected {
            offset: *pos,
            expected: "'g', 'd' or '('",
        }),
        None => Err(PlanParseError::UnexpectedEnd {
            expected: "'g', 'd' or '('",
        }),
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &'static [u8]) -> Result<(), PlanParseError> {
    // The literals are ASCII renderings of themselves; safe to name in
    // the error without re-encoding.
    let expected = match lit {
        b" " => "' '",
        b" * " => "' * '",
        _ => "')'",
    };
    if b.len() < *pos + lit.len() {
        return Err(PlanParseError::UnexpectedEnd { expected });
    }
    if &b[*pos..*pos + lit.len()] != lit {
        return Err(PlanParseError::Unexpected {
            offset: *pos,
            expected,
        });
    }
    *pos += lit.len();
    Ok(())
}

fn parse_shape(b: &[u8], pos: &mut usize) -> Result<Shape, PlanParseError> {
    let start = *pos;
    let mut dims: Vec<usize> = Vec::new();
    let mut nodes: usize = 1;
    loop {
        let d = parse_extent(b, pos)?;
        // Mirror `Shape::new`'s invariants as typed errors so a hostile
        // string can never reach the constructor's assertions.
        if d == 0 || d > Shape::MAX_AXIS {
            return Err(PlanParseError::BadShape { offset: start });
        }
        nodes = match nodes.checked_mul(d) {
            Some(n) if n <= Shape::MAX_NODES => n,
            _ => return Err(PlanParseError::BadShape { offset: start }),
        };
        dims.push(d);
        if b.get(*pos) == Some(&b'x') {
            *pos += 1;
        } else {
            return Ok(Shape::new(&dims));
        }
    }
}

fn parse_extent(b: &[u8], pos: &mut usize) -> Result<usize, PlanParseError> {
    let mut v: usize = 0;
    let start = *pos;
    // Reject leading zeros so every accepted input is already in
    // canonical spelling (re-rendering reproduces it byte-for-byte).
    if b.get(*pos) == Some(&b'0') && b.get(*pos + 1).is_some_and(u8::is_ascii_digit) {
        return Err(PlanParseError::BadShape { offset: start });
    }
    while let Some(c) = b.get(*pos) {
        if !c.is_ascii_digit() {
            break;
        }
        v = match v
            .checked_mul(10)
            .and_then(|v| v.checked_add((c - b'0') as usize))
        {
            Some(v) => v,
            None => return Err(PlanParseError::BadShape { offset: start }),
        };
        *pos += 1;
    }
    if *pos == start {
        return match b.get(*pos) {
            Some(_) => Err(PlanParseError::Unexpected {
                offset: *pos,
                expected: "an extent digit",
            }),
            None => Err(PlanParseError::UnexpectedEnd {
                expected: "an extent digit",
            }),
        };
    }
    Ok(v)
}

/// Drop length-1 axes; a 0-rank result becomes the 1-node shape `[1]`.
pub fn reduce(shape: &Shape) -> Shape {
    let dims: Vec<usize> = shape.dims().iter().copied().filter(|&d| d > 1).collect();
    if dims.is_empty() {
        Shape::new(&[1])
    } else {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_drops_ones() {
        assert_eq!(reduce(&Shape::new(&[1, 5, 1, 3])), Shape::new(&[5, 3]));
        assert_eq!(reduce(&Shape::new(&[1, 1])), Shape::new(&[1]));
        assert_eq!(reduce(&Shape::new(&[4, 4])), Shape::new(&[4, 4]));
    }

    #[test]
    fn gray_plan_dims() {
        let shape = Shape::new(&[5, 6, 7]);
        assert_eq!(Plan::Gray.host_dim(&shape), 9);
        assert_eq!(Plan::Gray.dilation_bound(), 1);
        assert_eq!(Plan::Gray.congestion_bound(), 1);
    }

    #[test]
    fn direct_plan_dims_from_catalog() {
        let shape = Shape::new(&[3, 5]);
        assert_eq!(Plan::Direct.host_dim(&shape), 4);
        // Length-1 axes are transparent.
        let shape3 = Shape::new(&[3, 1, 5]);
        assert_eq!(Plan::Direct.host_dim(&shape3), 4);
    }

    #[test]
    fn canonical_round_trip() {
        let plan = Plan::Product {
            f1: Shape::new(&[3, 5]),
            p1: Box::new(Plan::Direct),
            f2: Shape::new(&[4, 4]),
            p2: Box::new(Plan::Gray),
        };
        let s = plan.to_canonical_string();
        assert_eq!(s, "(3x5 d * 4x4 g)");
        assert_eq!(Plan::parse(&s), Ok(plan));
        assert_eq!(Plan::parse("g"), Ok(Plan::Gray));
        assert_eq!(Plan::parse("d"), Ok(Plan::Direct));
        let nested = Plan::Product {
            f1: Shape::new(&[15, 1]),
            p1: Box::new(Plan::Product {
                f1: Shape::new(&[3, 1]),
                p1: Box::new(Plan::Gray),
                f2: Shape::new(&[5, 1]),
                p2: Box::new(Plan::Direct),
            }),
            f2: Shape::new(&[1, 7]),
            p2: Box::new(Plan::Gray),
        };
        let s = nested.to_canonical_string();
        assert_eq!(s, "(15x1 (3x1 g * 5x1 d) * 1x7 g)");
        assert_eq!(Plan::parse(&s), Ok(nested));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Plan::parse("").is_err());
        assert!(Plan::parse("x").is_err());
        assert!(Plan::parse("gg").is_err());
        assert!(Plan::parse("(3x5 d * 4x4 g").is_err());
        assert!(Plan::parse("(3x5 d 4x4 g)").is_err());
        assert!(Plan::parse("(03 g * 2 g)").is_err());
        assert!(Plan::parse("(0x5 d * 4 g)").is_err());
        assert!(Plan::parse("(99999999 g * 2 g)").is_err());
        assert!(Plan::parse("(32768x32768x32768x32768 g * 2 g)").is_err());
    }

    #[test]
    fn product_plan_dims_add() {
        // 12x20 = (3x5) ⊙ (4x4) — the paper's §4.2 example.
        let plan = Plan::Product {
            f1: Shape::new(&[3, 5]),
            p1: Box::new(Plan::Direct),
            f2: Shape::new(&[4, 4]),
            p2: Box::new(Plan::Gray),
        };
        let shape = Shape::new(&[12, 20]);
        assert_eq!(plan.host_dim(&shape), 4 + 4);
        assert_eq!(plan.dilation_bound(), 2);
        assert_eq!(plan.congestion_bound(), 2);
        assert_eq!(plan.leaf_count(), 2);
        assert_eq!(shape.minimal_cube_dim(), 8);
    }
}
