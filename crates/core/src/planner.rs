//! The §4.2 decomposition strategy as a memoized recursive planner.
//!
//! [`Planner::plan`] returns a [`Plan`] whose host cube is *minimal* for
//! the shape and whose dilation bound is ≤ 2 (congestion ≤ 2), or `None`
//! when the strategy finds nothing — mirroring the paper, where the same
//! shapes (e.g. `5×5×5`) remain open. The search applies, in order:
//!
//! 1. **Gray** whole (method 1);
//! 2. **Direct** catalog hit, exact or by axis extension inside the same
//!    cube (`10×11 ⊆ 11×11`, both `→ Q₇`);
//! 3. **Power-of-two peel**: `ℓᵢ = oᵢ·2^{eᵢ}` with the odd core planned
//!    recursively and the `2^{eᵢ}` Gray factor split off (§4.2 step 1);
//! 4. **Catalog ⊙ factor**: a 3-D catalog entry times an exact quotient or
//!    a Gray extension factor (method 3, generalized);
//! 5. **Pair + Gray** (method 2), with the pair planned recursively;
//! 6. **Axis split** `ℓⱼ → ℓ′·ℓ″ ≥ ℓⱼ` into two recursively planned 2-D
//!    pieces (method 4), both pairings;
//! 7. for rank ≥ 4 (beyond the paper, supporting its §8 conjecture):
//!    bipartitions of the axis set and axis splits across bipartitions.
//!
//! Unlike the arithmetic classification in [`crate::classify`] (which
//! treats Chan's 2-D result \[4] as a black box), every plan returned here
//! is *constructible*: [`crate::construct`] lowers it to a verified
//! embedding. The planner therefore under-covers the classification
//! slightly; EXPERIMENTS.md quantifies the gap.

use crate::plan::{reduce, Plan};
use cubemesh_obs as obs;
use cubemesh_search::{catalog_entries, catalog_lookup};
use cubemesh_topology::{cube_dim, Shape};
use std::collections::HashMap;

/// Bit-set selecting which planner rules a pass may apply — the
/// mechanism behind the pluggable [`crate::strategy`] layer. Each
/// constant enables one rule family; recursion inside a masked pass
/// stays inside the mask, so `plan_masked(s, DIRECT_SET)` proves "s is
/// coverable by methods 1 + direct lookup alone", not merely "the first
/// rule that fired was a lookup".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RuleMask(u16);

impl RuleMask {
    /// Method 1: whole-mesh Gray code.
    pub const GRAY: RuleMask = RuleMask(1 << rule::GRAY);
    /// Exact direct-catalog hit.
    pub const DIRECT: RuleMask = RuleMask(1 << rule::DIRECT);
    /// Catalog hit by axis extension inside the same cube.
    pub const DIRECT_EXT: RuleMask = RuleMask(1 << rule::DIRECT_EXT);
    /// §4.2 step 1: peel the power-of-two factors off every axis.
    pub const PEEL_POW2: RuleMask = RuleMask(1 << rule::PEEL_POW2);
    /// Method 3 generalized: catalog entry ⊙ planned factor.
    pub const CATALOG_PRODUCT: RuleMask = RuleMask(1 << rule::CATALOG_PRODUCT);
    /// Method 2: pair two axes, Gray the third.
    pub const PAIR_GRAY: RuleMask = RuleMask(1 << rule::PAIR_GRAY);
    /// Method 4: split an axis `ℓⱼ → ℓ′·ℓ″ ≥ ℓⱼ`.
    pub const AXIS_SPLIT: RuleMask = RuleMask(1 << rule::AXIS_SPLIT);
    /// Rank ≥ 4 bipartitions of the axis set.
    pub const BIPARTITION: RuleMask = RuleMask(1 << rule::BIPARTITION);
    /// Every rule — the behavior of [`Planner::plan`].
    pub const ALL: RuleMask = RuleMask((1 << rule::NAMES.len()) - 1);
    /// No rules; useful as a fold identity.
    pub const NONE: RuleMask = RuleMask(0);

    /// Union of two masks.
    #[must_use]
    pub const fn union(self, other: RuleMask) -> RuleMask {
        RuleMask(self.0 | other.0)
    }

    /// Does the mask enable rule index `r` (a `rule::*` constant)?
    const fn has(self, r: usize) -> bool {
        self.0 & (1 << r) != 0
    }
}

/// Memoized decomposition planner. Reuse one instance across queries — the
/// memo table is shared (and keyed by rule mask, so masked passes never
/// see conclusions a wider rule set reached).
#[derive(Default)]
pub struct Planner {
    memo: HashMap<(RuleMask, Vec<usize>), Option<Plan>>,
    /// Current recursion depth (observability only).
    depth: u32,
    /// Batched metric tallies, flushed to the global registry once per
    /// top-level [`plan`](Planner::plan) call. The planner is `&mut self`
    /// (single-threaded), so plain integers keep the recursion free of
    /// atomics.
    stats: PlannerStats,
}

/// Index names for [`PlannerStats::attempts`] / `hits`.
mod rule {
    pub const GRAY: usize = 0;
    pub const DIRECT: usize = 1;
    pub const DIRECT_EXT: usize = 2;
    pub const PEEL_POW2: usize = 3;
    pub const CATALOG_PRODUCT: usize = 4;
    pub const PAIR_GRAY: usize = 5;
    pub const AXIS_SPLIT: usize = 6;
    pub const BIPARTITION: usize = 7;
    pub const NAMES: [&str; 8] = [
        "gray",
        "direct",
        "direct_ext",
        "peel_pow2",
        "catalog_product",
        "pair_gray",
        "axis_split",
        "bipartition",
    ];
}

/// Local tallies mirroring the `planner.*` metrics.
#[derive(Default)]
struct PlannerStats {
    memo_hit: u64,
    memo_miss: u64,
    attempts: [u64; 8],
    hits: [u64; 8],
    /// Samples of the `planner.depth` histogram: `depth_seen[d]` counts
    /// recursions entered at depth `d` (clamped to the array).
    depth_seen: [u64; 32],
}

/// `planner.rule.<r>.attempt` / `.hit` metric names, index-aligned with
/// [`rule::NAMES`].
const ATTEMPT_NAMES: [&str; 8] = [
    "planner.rule.gray.attempt",
    "planner.rule.direct.attempt",
    "planner.rule.direct_ext.attempt",
    "planner.rule.peel_pow2.attempt",
    "planner.rule.catalog_product.attempt",
    "planner.rule.pair_gray.attempt",
    "planner.rule.axis_split.attempt",
    "planner.rule.bipartition.attempt",
];
const HIT_NAMES: [&str; 8] = [
    "planner.rule.gray.hit",
    "planner.rule.direct.hit",
    "planner.rule.direct_ext.hit",
    "planner.rule.peel_pow2.hit",
    "planner.rule.catalog_product.hit",
    "planner.rule.pair_gray.hit",
    "planner.rule.axis_split.hit",
    "planner.rule.bipartition.hit",
];

impl Planner {
    /// Fresh planner with an empty memo table.
    pub fn new() -> Self {
        Planner::default()
    }

    /// Plan a minimal-expansion, dilation-≤2 embedding for `shape`.
    pub fn plan(&mut self, shape: &Shape) -> Option<Plan> {
        self.plan_masked(shape, RuleMask::ALL)
    }

    /// [`plan`](Planner::plan) restricted to the rules in `mask`; the
    /// restriction applies recursively, so the result is a plan the
    /// masked rule set can justify on its own.
    pub fn plan_masked(&mut self, shape: &Shape, mask: RuleMask) -> Option<Plan> {
        // Rules recurse through `replan`; only the outermost call
        // opens a trace span, so a query shows up as one `planner.plan`
        // with rule-hit instants nested inside it.
        let _span = (self.depth == 0).then(|| obs::span!("planner.plan"));
        let result = self.replan(shape, mask);
        // Only the outermost call (depth back at 0) publishes the
        // batched tallies.
        if self.depth == 0 {
            self.flush_stats();
        }
        result
    }

    /// Internal recursion entry: reduce, then consult the masked memo.
    fn replan(&mut self, shape: &Shape, mask: RuleMask) -> Option<Plan> {
        let reduced = reduce(shape);
        self.plan_dims(reduced.dims().to_vec(), mask)
    }

    /// `true` if the planner covers `shape`.
    pub fn covers(&mut self, shape: &Shape) -> bool {
        self.plan(shape).is_some()
    }

    /// Tally a rule hit; when tracing is on, also drop an instant event
    /// so the trace shows *which* rule resolved each (sub)shape.
    fn rule_hit(&mut self, r: usize) {
        self.stats.hits[r] += 1;
        obs::trace::instant("planner.rule.hit", rule::NAMES[r]);
    }

    fn plan_dims(&mut self, dims: Vec<usize>, mask: RuleMask) -> Option<Plan> {
        let key = (mask, dims);
        if let Some(hit) = self.memo.get(&key) {
            self.stats.memo_hit += 1;
            return hit.clone();
        }
        self.stats.memo_miss += 1;
        // Cycle guard (recursion always shrinks, but stay defensive).
        self.memo.insert(key.clone(), None);
        let result = self.compute(&key.1, mask);
        self.memo.insert(key, result.clone());
        result
    }

    fn compute(&mut self, dims: &[usize], mask: RuleMask) -> Option<Plan> {
        self.depth += 1;
        let d = (self.depth as usize).min(self.stats.depth_seen.len() - 1);
        self.stats.depth_seen[d] += 1;
        let result = self.compute_rules(dims, mask);
        self.depth -= 1;
        result
    }

    /// Publish and clear the batched tallies. Cheap no-op (one relaxed
    /// load plus the local reset) while stats are disabled.
    fn flush_stats(&mut self) {
        let stats = std::mem::take(&mut self.stats);
        if !obs::enabled() {
            return;
        }
        // Register hit and miss unconditionally so every snapshot carries
        // the pair (and thus the derived `planner.memo.hit_rate`).
        obs::counter!("planner.memo.hit").add(stats.memo_hit);
        obs::counter!("planner.memo.miss").add(stats.memo_miss);
        // Registry lookups are mutex-guarded; resolve the 16 rule counters
        // once and reuse the references on every flush.
        static RULE_COUNTERS: std::sync::OnceLock<
            Vec<(&'static obs::Counter, &'static obs::Counter)>,
        > = std::sync::OnceLock::new();
        let counters = RULE_COUNTERS.get_or_init(|| {
            (0..rule::NAMES.len())
                .map(|i| {
                    (
                        obs::counter_named(ATTEMPT_NAMES[i]),
                        obs::counter_named(HIT_NAMES[i]),
                    )
                })
                .collect()
        });
        for (i, (attempt, hit)) in counters.iter().enumerate() {
            attempt.add(stats.attempts[i]);
            hit.add(stats.hits[i]);
        }
        let depth_hist = obs::histogram!("planner.depth");
        for (d, &n) in stats.depth_seen.iter().enumerate() {
            depth_hist.record_n(d as u64, n);
        }
    }

    fn compute_rules(&mut self, dims: &[usize], mask: RuleMask) -> Option<Plan> {
        let shape = Shape::new(dims);
        let total = shape.minimal_cube_dim();

        // 1. Gray.
        if mask.has(rule::GRAY) {
            self.stats.attempts[rule::GRAY] += 1;
            if shape.gray_is_minimal() {
                self.rule_hit(rule::GRAY);
                return Some(Plan::Gray);
            }
        }
        // 2. Direct, exact…
        if mask.has(rule::DIRECT) {
            self.stats.attempts[rule::DIRECT] += 1;
            if catalog_lookup(&shape).is_some() {
                self.rule_hit(rule::DIRECT);
                return Some(Plan::Direct);
            }
        }
        // …or by extension into a catalog shape with the same cube.
        if mask.has(rule::DIRECT_EXT) {
            self.stats.attempts[rule::DIRECT_EXT] += 1;
            if let Some(plan) = self.direct_extension(&shape, total) {
                self.rule_hit(rule::DIRECT_EXT);
                return Some(plan);
            }
        }
        // 3. Peel powers of two.
        if mask.has(rule::PEEL_POW2) {
            self.stats.attempts[rule::PEEL_POW2] += 1;
            if let Some(plan) = self.peel_pow2(&shape, total, mask) {
                self.rule_hit(rule::PEEL_POW2);
                return Some(plan);
            }
        }
        match dims.len() {
            0 | 1 => None, // Gray is always minimal for rank ≤ 1; unreachable.
            2 => self.plan2(&shape, total, mask),
            3 => self.plan3(&shape, total, mask),
            _ => self.plan_k(&shape, total, mask),
        }
    }

    /// Rule 2b: `shape ≤ entry` axiswise (some permutation) with the same
    /// minimal cube.
    fn direct_extension(&mut self, shape: &Shape, total: u32) -> Option<Plan> {
        let k = shape.rank();
        for entry in catalog_entries() {
            if entry.dims.len() != k || entry.host_dim != total {
                continue;
            }
            // Try to assign each shape axis under a distinct entry axis.
            if fits_under_permuted(shape.dims(), entry.dims) {
                let target: Vec<usize> = sorted_cover(shape.dims(), entry.dims);
                let ones = Shape::new(&vec![1; k]);
                return Some(Plan::Product {
                    f1: Shape::new(&target),
                    p1: Box::new(Plan::Direct),
                    f2: ones,
                    p2: Box::new(Plan::Gray),
                });
            }
        }
        None
    }

    /// Rule 3: write `ℓᵢ = oᵢ·2^{eᵢ}`, plan the odd core, Gray the rest.
    fn peel_pow2(&mut self, shape: &Shape, total: u32, mask: RuleMask) -> Option<Plan> {
        let mut odd = Vec::with_capacity(shape.rank());
        let mut pow = Vec::with_capacity(shape.rank());
        let mut epsilon = 0u32;
        for &d in shape.dims() {
            let e = d.trailing_zeros();
            odd.push(d >> e);
            pow.push(1usize << e);
            epsilon += e;
        }
        if epsilon == 0 {
            return None; // nothing to peel
        }
        let odd_shape = Shape::new(&odd);
        let odd_total = cube_dim(odd_shape.nodes() as u64);
        if odd_total + epsilon != total {
            return None;
        }
        let p1 = self.replan(&odd_shape, mask)?;
        Some(Plan::Product {
            f1: odd_shape,
            p1: Box::new(p1),
            f2: Shape::new(&pow),
            p2: Box::new(Plan::Gray),
        })
    }

    /// Rank-2 strategy: axis splits `ℓ → ℓ′·ℓ″ ≥ ℓ`.
    fn plan2(&mut self, shape: &Shape, total: u32, mask: RuleMask) -> Option<Plan> {
        if !mask.has(rule::AXIS_SPLIT) {
            return None;
        }
        let (l1, l2) = (shape.len(0), shape.len(1));
        self.stats.attempts[rule::AXIS_SPLIT] += 1;
        // Split axis 1: pieces (l1 × ℓ′) and (1 × ℓ″).
        for (axis, la, lm) in [(1usize, l1, l2), (0, l2, l1)] {
            for lp in 2..lm {
                let ls = lm.div_ceil(lp);
                if cube_dim((la * lp) as u64) + cube_dim(ls as u64) != total {
                    continue;
                }
                // The piece must keep the target's axis order: its plan is
                // constructed against `reduce(f1)` verbatim.
                let piece = if axis == 1 {
                    Shape::new(&[la, lp])
                } else {
                    Shape::new(&[lp, la])
                };
                if let Some(p1) = self.replan(&piece, mask) {
                    self.rule_hit(rule::AXIS_SPLIT);
                    let f2 = if axis == 1 {
                        Shape::new(&[1, ls])
                    } else {
                        Shape::new(&[ls, 1])
                    };
                    let f1 = piece;
                    return Some(Plan::Product {
                        f1,
                        p1: Box::new(p1),
                        f2,
                        p2: Box::new(Plan::Gray),
                    });
                }
            }
        }
        None
    }

    /// Rank-3 strategy: catalog⊙quotient, pair + Gray, axis splits.
    fn plan3(&mut self, shape: &Shape, total: u32, mask: RuleMask) -> Option<Plan> {
        let l: Vec<usize> = shape.dims().to_vec();

        // 4. Catalog entry ⊙ planned factor (exact quotient or Gray
        //    extension).
        if mask.has(rule::CATALOG_PRODUCT) {
            self.stats.attempts[rule::CATALOG_PRODUCT] += 1;
            if let Some(plan) = self.catalog_product3(shape, total, mask) {
                self.rule_hit(rule::CATALOG_PRODUCT);
                return Some(plan);
            }
        }

        // 5. Pair + Gray third (method 2).
        if mask.has(rule::PAIR_GRAY) {
            self.stats.attempts[rule::PAIR_GRAY] += 1;
        }
        for c in 0..3 {
            // The two paired axes, in ascending index order: the pair's
            // plan is constructed against `reduce(f1)`, which keeps the
            // target's axis order.
            let (a, b) = match c {
                0 => (1, 2),
                1 => (0, 2),
                _ => (0, 1),
            };
            if !mask.has(rule::PAIR_GRAY) {
                break;
            }
            if cube_dim((l[a] * l[b]) as u64) + cube_dim(l[c] as u64) != total {
                continue;
            }
            let pair = Shape::new(&[l[a], l[b]]);
            if let Some(p1) = self.replan(&pair, mask) {
                self.rule_hit(rule::PAIR_GRAY);
                let mut f1 = vec![1usize; 3];
                f1[a] = l[a];
                f1[b] = l[b];
                let mut f2 = vec![1usize; 3];
                f2[c] = l[c];
                return Some(Plan::Product {
                    f1: Shape::new(&f1),
                    p1: Box::new(p1),
                    f2: Shape::new(&f2),
                    p2: Box::new(Plan::Gray),
                });
            }
        }

        // 6. Axis split (method 4): ℓⱼ → ℓ′·ℓ″, pieces (la×ℓ′), (ℓ″×lb).
        if !mask.has(rule::AXIS_SPLIT) {
            return None;
        }
        self.stats.attempts[rule::AXIS_SPLIT] += 1;
        for j in 0..3 {
            let a = (j + 1) % 3;
            let b = (j + 2) % 3;
            for (a, b) in [(a, b), (b, a)] {
                for lp in 2..l[j] {
                    let ls = l[j].div_ceil(lp);
                    if cube_dim((l[a] * lp) as u64) + cube_dim((ls * l[b]) as u64) != total {
                        continue;
                    }
                    // Pieces keep the target's axis order (they are
                    // constructed against `reduce(f1)`/`reduce(f2)`).
                    let piece1 = if a < j {
                        Shape::new(&[l[a], lp])
                    } else {
                        Shape::new(&[lp, l[a]])
                    };
                    let piece2 = if j < b {
                        Shape::new(&[ls, l[b]])
                    } else {
                        Shape::new(&[l[b], ls])
                    };
                    if let (Some(p1), Some(p2)) =
                        (self.replan(&piece1, mask), self.replan(&piece2, mask))
                    {
                        self.rule_hit(rule::AXIS_SPLIT);
                        let mut f1 = vec![1usize; 3];
                        f1[a] = l[a];
                        f1[j] = lp;
                        let mut f2 = vec![1usize; 3];
                        f2[j] = ls;
                        f2[b] = l[b];
                        return Some(Plan::Product {
                            f1: Shape::new(&f1),
                            p1: Box::new(p1),
                            f2: Shape::new(&f2),
                            p2: Box::new(p2),
                        });
                    }
                }
            }
        }
        None
    }

    /// Rule 4 helper: 3-D catalog entries times exact quotients or Gray
    /// extension factors.
    fn catalog_product3(&mut self, shape: &Shape, total: u32, mask: RuleMask) -> Option<Plan> {
        let l = shape.dims();
        for entry in catalog_entries() {
            if entry.dims.len() != 3 {
                continue;
            }
            for perm in PERMS3 {
                let d = [
                    entry.dims[perm[0]],
                    entry.dims[perm[1]],
                    entry.dims[perm[2]],
                ];
                // (a) Gray extension: f2ᵢ = 2^{eᵢ}, minimal eᵢ.
                let e: u32 = (0..3).map(|i| cube_dim(l[i].div_ceil(d[i]) as u64)).sum();
                if entry.host_dim + e == total {
                    let f1 = Shape::new(&d);
                    let f2: Vec<usize> = (0..3)
                        .map(|i| 1usize << cube_dim(l[i].div_ceil(d[i]) as u64))
                        .collect();
                    return Some(Plan::Product {
                        f1,
                        p1: Box::new(Plan::Direct),
                        f2: Shape::new(&f2),
                        p2: Box::new(Plan::Gray),
                    });
                }
                // (b) Exact quotient, planned recursively.
                if (0..3).all(|i| l[i].is_multiple_of(d[i])) {
                    let q: Vec<usize> = (0..3).map(|i| l[i] / d[i]).collect();
                    let q_shape = Shape::new(&q);
                    if let Some(p2) = self.replan(&q_shape, mask) {
                        if entry.host_dim + p2.host_dim(&reduce(&q_shape)) == total {
                            return Some(Plan::Product {
                                f1: Shape::new(&d),
                                p1: Box::new(Plan::Direct),
                                f2: q_shape,
                                p2: Box::new(p2),
                            });
                        }
                    }
                }
            }
        }
        None
    }

    /// Rank ≥ 4 (beyond the paper): bipartitions and cross-partition axis
    /// splits.
    fn plan_k(&mut self, shape: &Shape, total: u32, rules: RuleMask) -> Option<Plan> {
        let k = shape.rank();
        let l = shape.dims();
        // Bipartitions of the axis set.
        if !rules.has(rule::BIPARTITION) {
            return None;
        }
        self.stats.attempts[rule::BIPARTITION] += 1;
        for mask in 1..(1u32 << k) - 1 {
            let mut g1 = vec![1usize; k];
            let mut g2 = vec![1usize; k];
            for i in 0..k {
                if mask & (1 << i) != 0 {
                    g1[i] = l[i];
                } else {
                    g2[i] = l[i];
                }
            }
            let s1 = Shape::new(&g1);
            let s2 = Shape::new(&g2);
            let h1 = cube_dim(s1.nodes() as u64);
            let h2 = cube_dim(s2.nodes() as u64);
            if h1 + h2 != total {
                continue;
            }
            if let (Some(p1), Some(p2)) = (self.replan(&s1, rules), self.replan(&s2, rules)) {
                self.rule_hit(rule::BIPARTITION);
                return Some(Plan::Product {
                    f1: s1,
                    p1: Box::new(p1),
                    f2: s2,
                    p2: Box::new(p2),
                });
            }
        }
        // Axis splits across bipartitions of the remaining axes.
        if !rules.has(rule::AXIS_SPLIT) {
            return None;
        }
        self.stats.attempts[rule::AXIS_SPLIT] += 1;
        for j in 0..k {
            if l[j] < 3 {
                continue;
            }
            let others: Vec<usize> = (0..k).filter(|&i| i != j).collect();
            for mask in 0..(1u32 << others.len()) {
                for lp in 2..l[j] {
                    let ls = l[j].div_ceil(lp);
                    let mut g1 = vec![1usize; k];
                    let mut g2 = vec![1usize; k];
                    g1[j] = lp;
                    g2[j] = ls;
                    for (bit, &i) in others.iter().enumerate() {
                        if mask & (1 << bit) != 0 {
                            g1[i] = l[i];
                        } else {
                            g2[i] = l[i];
                        }
                    }
                    let s1 = Shape::new(&g1);
                    let s2 = Shape::new(&g2);
                    if cube_dim(s1.nodes() as u64) + cube_dim(s2.nodes() as u64) != total {
                        continue;
                    }
                    if let (Some(p1), Some(p2)) = (self.replan(&s1, rules), self.replan(&s2, rules))
                    {
                        self.rule_hit(rule::AXIS_SPLIT);
                        return Some(Plan::Product {
                            f1: s1,
                            p1: Box::new(p1),
                            f2: s2,
                            p2: Box::new(p2),
                        });
                    }
                }
            }
        }
        None
    }
}

const PERMS3: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

/// Can each of `dims` be matched one-to-one under some permutation of
/// `cover` with `dims[i] ≤ cover[σ(i)]`?
fn fits_under_permuted(dims: &[usize], cover: &[usize]) -> bool {
    // Greedy works because both are small (k ≤ 3 in the catalog): sort both
    // ascending and compare elementwise.
    let mut a: Vec<usize> = dims.to_vec();
    let mut b: Vec<usize> = cover.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    a.iter().zip(&b).all(|(x, y)| x <= y)
}

/// The cover's dims arranged so `dims[i] ≤ out[i]` — ascending-by-rank
/// matching (valid per [`fits_under_permuted`]).
fn sorted_cover(dims: &[usize], cover: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..dims.len()).collect();
    order.sort_by_key(|&i| dims[i]);
    let mut b: Vec<usize> = cover.to_vec();
    b.sort_unstable();
    let mut out = vec![0usize; dims.len()];
    for (rank, &i) in order.iter().enumerate() {
        out[i] = b[rank];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_of(dims: &[usize]) -> Option<Plan> {
        Planner::new().plan(&Shape::new(dims))
    }

    #[test]
    fn gray_minimal_meshes_plan_as_gray() {
        assert_eq!(plan_of(&[4, 8, 16]), Some(Plan::Gray));
        assert_eq!(plan_of(&[3, 3]), Some(Plan::Gray));
        assert_eq!(plan_of(&[7]), Some(Plan::Gray));
        assert_eq!(plan_of(&[1, 1, 1]), Some(Plan::Gray));
    }

    #[test]
    fn catalog_meshes_plan_as_direct() {
        assert_eq!(plan_of(&[3, 5]), Some(Plan::Direct));
        assert_eq!(plan_of(&[3, 3, 3]), Some(Plan::Direct));
        assert_eq!(plan_of(&[7, 3, 3]), Some(Plan::Direct)); // permuted 3x3x7
        assert_eq!(plan_of(&[5, 1, 3]), Some(Plan::Direct)); // 1-axes dropped
    }

    #[test]
    fn plans_are_minimal_expansion() {
        let mut planner = Planner::new();
        for dims in [
            vec![12usize, 20],
            vec![5, 6, 7],
            vec![21, 9, 5],
            vec![3, 3, 23],
            vec![6, 6, 6],
            vec![27, 3, 3],
            vec![9, 9, 9],
            vec![10, 11],
        ] {
            let shape = Shape::new(&dims);
            let plan = planner
                .plan(&shape)
                .unwrap_or_else(|| panic!("no plan for {:?}", dims));
            assert_eq!(
                plan.host_dim(&reduce(&shape)),
                shape.minimal_cube_dim(),
                "{:?}: {}",
                dims,
                plan
            );
            assert!(plan.dilation_bound() <= 2);
            assert!(plan.congestion_bound() <= 2);
        }
    }

    #[test]
    fn open_meshes_have_no_plan() {
        // The paper's §5 exceptions must remain unplanned.
        let mut planner = Planner::new();
        for dims in [
            vec![5usize, 5, 5],
            vec![5, 7, 7],
            vec![3, 9, 9],
            vec![5, 5, 10],
            vec![3, 5, 17],
        ] {
            assert_eq!(planner.plan(&Shape::new(&dims)), None, "{:?}", dims);
        }
    }

    #[test]
    fn paper_worked_examples_plan() {
        let mut planner = Planner::new();
        // 12x20 = (3x5) ⊙ (4x4).
        let plan = planner.plan(&Shape::new(&[12, 20])).unwrap();
        assert!(matches!(plan, Plan::Product { .. }));
        // 3x25x3 reduces to two 3x5 pieces.
        assert!(planner.covers(&Shape::new(&[3, 25, 3])));
        // 5x10x11: minimal via a pair.
        assert!(planner.covers(&Shape::new(&[5, 10, 11])));
        // 6x11x7: no pairing is minimal but splits work or not — at least
        // classification says method 4 covers it; check the planner agrees.
        assert!(planner.covers(&Shape::new(&[6, 11, 7])));
    }

    #[test]
    fn four_dimensional_extension_conjecture() {
        // §8 conjectures higher-k meshes mostly decompose; check a few.
        let mut planner = Planner::new();
        assert!(planner.covers(&Shape::new(&[3, 5, 2, 4])));
        assert!(planner.covers(&Shape::new(&[3, 3, 3, 3])));
        assert_eq!(planner.plan(&Shape::new(&[2, 4, 8, 16])), Some(Plan::Gray));
    }

    #[test]
    fn fits_under_permuted_works() {
        assert!(fits_under_permuted(&[10, 11], &[11, 11]));
        assert!(fits_under_permuted(&[11, 10], &[11, 11]));
        assert!(!fits_under_permuted(&[12, 3], &[11, 11]));
        assert!(fits_under_permuted(&[3, 7, 3], &[3, 3, 7]));
        let cover = sorted_cover(&[11, 10], &[11, 11]);
        assert_eq!(cover, vec![11, 11]);
        let cover = sorted_cover(&[7, 2, 3], &[3, 3, 7]);
        assert_eq!(cover, vec![7, 3, 3]);
    }
}
