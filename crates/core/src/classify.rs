//! Paper-faithful arithmetic classification of 3-D meshes (§5, methods
//! 1–4).
//!
//! This is what the Figure-2 census runs: pure `u64` arithmetic per mesh
//! shape, no allocation, safe to evaluate ~10⁸ times. It answers *"which of
//! the paper's cumulative method sets gives this mesh a minimal-expansion
//! embedding with dilation ≤ 2?"* using the same black-box facts the paper
//! uses:
//!
//! 1. **Gray code** is minimal iff `Σ ⌈log₂ ℓᵢ⌉ = ⌈log₂ Π ℓᵢ⌉` (dilation 1);
//! 2. **any 2-D mesh** embeds in its minimal cube with dilation 2 (Chan
//!    \[4]), so a pair + Gray third axis works iff
//!    `⌈ℓ_aℓ_b⌉₂ · ⌈ℓ_c⌉₂ = ⌈ℓ₁ℓ₂ℓ₃⌉₂`;
//! 3. the **`3×3×3` / `3×3×7` direct embeddings** combine with Gray by
//!    Corollary 2 whenever `ℓᵢ = dᵢ·2^{eᵢ}` exactly (any axis permutation);
//! 4. the **axis-splitting search**: some axis `ℓⱼ` extends/splits into
//!    `ℓ′·ℓ″ ≥ ℓⱼ` with `⌈ℓ_aℓ′⌉₂ · ⌈ℓ″ℓ_b⌉₂ = ⌈ℓ₁ℓ₂ℓ₃⌉₂`, each piece a
//!    2-D mesh handled by \[4].

use cubemesh_topology::cube_dim;

/// The cheapest method class that covers a mesh (paper §5 numbering), or
/// `None` when methods 1–4 all fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Method {
    /// Gray code embedding (dilation 1).
    Gray = 1,
    /// Dilation-2 2-D embedding of one pair of axes + Gray third.
    PairGray = 2,
    /// `3×3×3` or `3×3×7` direct embedding × Gray (Corollary 2).
    Direct3d = 3,
    /// Axis split `ℓⱼ → ℓ′·ℓ″ ≥ ℓⱼ` into two 2-D pieces (Corollary 2 + \[4]).
    Split = 4,
}

/// Classify `l1 × l2 × l3` per the paper's cumulative methods.
#[inline]
pub fn classify3(l1: u64, l2: u64, l3: u64) -> Option<Method> {
    if method1(l1, l2, l3) {
        Some(Method::Gray)
    } else if method2(l1, l2, l3) {
        Some(Method::PairGray)
    } else if method3(l1, l2, l3) {
        Some(Method::Direct3d)
    } else if method4(l1, l2, l3) {
        Some(Method::Split)
    } else {
        None
    }
}

/// Method 1: Gray code is minimal.
#[inline]
pub fn method1(l1: u64, l2: u64, l3: u64) -> bool {
    cube_dim(l1) + cube_dim(l2) + cube_dim(l3) == cube_dim(l1 * l2 * l3)
}

/// Method 2: some pair of axes at dilation 2 (Chan) + Gray third is
/// minimal.
#[inline]
pub fn method2(l1: u64, l2: u64, l3: u64) -> bool {
    let total = cube_dim(l1 * l2 * l3);
    cube_dim(l1 * l2) + cube_dim(l3) == total
        || cube_dim(l2 * l3) + cube_dim(l1) == total
        || cube_dim(l3 * l1) + cube_dim(l2) == total
}

/// Method 3: some axis permutation extends to `(3·2^a, 3·2^b, d·2^c)` with
/// `d ∈ {3, 7}` inside the *same* minimal cube (strategy step 3 of §4.2:
/// axes may be extended slightly when that does not grow the cube — e.g.
/// `27×3×3 ⊆ 28×3×3 = (7×3×3) ⊙ (4×1×1)`).
#[inline]
pub fn method3(l1: u64, l2: u64, l3: u64) -> bool {
    /// Minimal `e` with `d·2^e ≥ l`.
    #[inline]
    fn ext_pow(l: u64, d: u64) -> u32 {
        cube_dim(l.div_ceil(d))
    }
    let total = cube_dim(l1 * l2 * l3);
    let l = [l1, l2, l3];
    for (d, base_host) in [(3u64, 5u32), (7, 6)] {
        for c in 0..3 {
            let a = (c + 1) % 3;
            let b = (c + 2) % 3;
            let host = base_host + ext_pow(l[c], d) + ext_pow(l[a], 3) + ext_pow(l[b], 3);
            if host == total {
                return true;
            }
        }
    }
    false
}

/// Method 4: axis split per the paper's §5 step 4, over every axis and
/// both pairings of the remaining axes.
#[inline]
pub fn method4(l1: u64, l2: u64, l3: u64) -> bool {
    let total = cube_dim(l1 * l2 * l3);
    split_axis_works(l2, l1, l3, total)
        || split_axis_works(l1, l2, l3, total)
        || split_axis_works(l3, l1, l2, total)
}

/// Does some `ℓ′·ℓ″ ≥ mid` satisfy `⌈a·ℓ′⌉₂ · ⌈ℓ″·b⌉₂ = 2^total` (in
/// either pairing)? `ℓ″ = ⌈mid/ℓ′⌉` is the only candidate per `ℓ′`:
/// `⌈·⌉₂` is monotone and the left side is already ≥ the target.
#[inline]
pub fn split_axis_works(mid: u64, a: u64, b: u64, total: u32) -> bool {
    let mut lp = 1u64;
    while lp <= mid {
        let ls = mid.div_ceil(lp);
        if cube_dim(a * lp) + cube_dim(ls * b) == total
            || cube_dim(b * lp) + cube_dim(ls * a) == total
        {
            return true;
        }
        lp += 1;
    }
    false
}

/// The classification is invariant under axis permutation — used by the
/// census to enumerate sorted triples only.
#[cfg(test)]
fn classify_all_perms(l: [u64; 3]) -> Vec<Option<Method>> {
    let perms = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    perms
        .iter()
        .map(|p| classify3(l[p[0]], l[p[1]], l[p[2]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_method1() {
        // 12x16x20x32 reduces axis-wise; in 3-D: 4x8x16 is pure Gray.
        assert!(method1(4, 8, 16));
        assert!(method1(3, 3, 1)); // 9 -> Q4, Gray 2+2+0
        assert!(!method1(5, 6, 7));
    }

    #[test]
    fn paper_examples_method2() {
        // §5: for 5x10x11 more than one pairing is minimal…
        assert!(method2(5, 10, 11));
        // …for 6x11x7 no pairing works.
        assert!(!method2(6, 11, 7));
        // 5x6x7: axes 5 and 6 chosen for the 2-D embedding.
        assert!(method2(5, 6, 7));
        let total = cube_dim(5 * 6 * 7);
        assert_eq!(cube_dim(5 * 6) + cube_dim(7), total);
    }

    #[test]
    fn paper_examples_method3() {
        assert!(method3(3, 3, 3));
        assert!(method3(3, 3, 7));
        assert!(method3(6, 6, 6)); // (3·2)³
        assert!(method3(12, 3, 14)); // 3·4, 3·1, 7·2
        assert!(!method3(5, 5, 5)); // extensions 6x6x6 / 6x6x7 leave Q7
                                    // Extension inside the same cube (strategy step 3):
                                    // 27x3x3 ⊆ 28x3x3 = (7·4)x3x3, host 6+2 = 8 = ⌈log₂ 243⌉.
        assert!(method3(27, 3, 3));
        assert!(!method2(27, 3, 3));
        assert!(!method4(27, 3, 3));
    }

    #[test]
    fn paper_examples_method4() {
        // 21x9x5 embeds by (7x9x1)·(3x1x5) or (21x3x1)·(1x3x5): split
        // works. (It is also method-2: ⌈21·9⌉₂⌈5⌉₂ = 256·8 = 2048 =
        // ⌈945⌉₂? 945 -> 1024. 256*8 = 2048 ≠ 1024, so NOT method 2 —
        // check pairings: ⌈9·5⌉₂⌈21⌉₂ = 64·32 = 2048; ⌈21·5⌉₂⌈9⌉₂ =
        // 128·16 = 2048. Indeed method 4 is required.)
        assert!(!method2(21, 9, 5));
        assert!(method4(21, 9, 5));
        // 3x3x23 extends to 3x3x25 = (3x5x1)·(1x… split of 23 into 5·5.
        assert!(!method2(3, 3, 23));
        assert!(method4(3, 3, 23));
        // 3x25x3 splits 25 = 5·5.
        assert!(method4(3, 25, 3));
    }

    #[test]
    fn exceptions_fail_all_methods() {
        // §5: the open meshes ≤ 256 nodes.
        for (a, b, c) in [(5, 5, 5), (5, 7, 7), (3, 9, 9), (5, 5, 10), (3, 5, 17)] {
            assert_eq!(classify3(a, b, c), None, "{}x{}x{}", a, b, c);
        }
    }

    #[test]
    fn classification_is_permutation_invariant() {
        for l in [
            [5u64, 6, 7],
            [21, 9, 5],
            [3, 3, 23],
            [5, 5, 5],
            [6, 11, 7],
            [8, 4, 2],
        ] {
            let all = classify_all_perms(l);
            assert!(all.windows(2).all(|w| w[0] == w[1]), "{:?}: {:?}", l, all);
        }
    }

    #[test]
    fn methods_are_cumulative_not_exclusive() {
        // method1 implies method2 (pair via trivial grouping? No —
        // method2's pair uses a dilation-2 2-D embedding of the *product*
        // pair: ⌈l1·l2⌉₂ ≤ ⌈l1⌉₂⌈l2⌉₂ keeps it minimal whenever Gray is).
        for (a, b, c) in [(4u64, 8, 16), (3, 3, 1), (2, 2, 2), (3, 5, 7)] {
            if method1(a, b, c) {
                assert!(method2(a, b, c), "{}x{}x{}", a, b, c);
            }
        }
    }

    #[test]
    fn split_subsumes_pair() {
        // ℓ′ = ℓⱼ, ℓ″ = 1 reduces method 4 to a method-2 pairing.
        for (a, b, c) in [(5u64, 10, 11), (5, 6, 7), (3, 5, 7)] {
            if method2(a, b, c) {
                assert!(method4(a, b, c), "{}x{}x{}", a, b, c);
            }
        }
    }
}
