//! Pluggable decomposition strategies ranked by confidence.
//!
//! The census-sweep builder and the query service both want more than
//! "a plan": they want to know *which* family of machinery justified it
//! and how much to trust that family, so the plan database can rank
//! candidate plans and a future k-D planner can slot in beside the 3-D
//! rules. A [`PlanStrategy`] is one such family — a named, confidence-
//! weighted view onto the [`Planner`]'s rule space, restricted through
//! [`RuleMask`] so a strategy's claim ("methods 1–3 cover this shape")
//! is justified by exactly the rules it names, recursion included.
//!
//! Strategies mirror the paper's method sets S₁ ⊂ S₂ ⊂ S₃ ⊂ S₄: each
//! widens the previous one, so trying them in descending confidence
//! order and keeping the first hit records the *weakest* machinery that
//! covers a shape — the same reading as the paper's cumulative census
//! columns. Construction (route resolution) stays deferred: a strategy
//! produces a [`Plan`], and callers decide if and when to lower it.

use crate::plan::Plan;
use crate::planner::{Planner, RuleMask};
use cubemesh_topology::Shape;

/// One pluggable decomposition family: a named, confidence-ranked
/// proposal engine over shapes.
pub trait PlanStrategy {
    /// Stable machine-readable name, persisted in plan-database records.
    fn name(&self) -> &'static str;

    /// Confidence in `0..=1000` (per-mille). Ranks strategies: higher
    /// means "prefer a plan from me over one from a lower-ranked
    /// strategy for the same shape". The scale is ordinal, not a
    /// probability.
    fn confidence(&self) -> u16;

    /// Propose a minimal-expansion dilation-≤2 plan for `shape`, or
    /// `None` when this family's machinery does not cover it. `planner`
    /// carries the shared memo table; masked passes never cross-read
    /// wider passes' conclusions.
    fn propose(&self, planner: &mut Planner, shape: &Shape) -> Option<Plan>;
}

/// A [`PlanStrategy`] defined by a rule mask — every built-in strategy
/// is one of these; external crates can implement the trait directly.
#[derive(Clone, Copy, Debug)]
pub struct MaskedStrategy {
    name: &'static str,
    confidence: u16,
    mask: RuleMask,
}

impl PlanStrategy for MaskedStrategy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn confidence(&self) -> u16 {
        self.confidence
    }

    fn propose(&self, planner: &mut Planner, shape: &Shape) -> Option<Plan> {
        planner.plan_masked(shape, self.mask)
    }
}

/// Method 1 alone: whole-mesh binary-reflected Gray code. Dilation 1
/// and congestion 1, exactly — the only strategy whose plans beat the
/// dilation-2 family, hence the top confidence.
pub const GRAY_WHOLE: MaskedStrategy = MaskedStrategy {
    name: "gray",
    confidence: 1000,
    mask: RuleMask::GRAY,
};

/// Methods 1 + direct lookup: Gray, exact catalog hits, and catalog
/// hits by axis extension inside the same cube. Plans are baked,
/// hand-verified embeddings composed with nothing else.
pub const DIRECT_CATALOG: MaskedStrategy = MaskedStrategy {
    name: "direct",
    confidence: 950,
    mask: RuleMask::GRAY
        .union(RuleMask::DIRECT)
        .union(RuleMask::DIRECT_EXT),
};

/// Methods 1–3: the above plus power-of-two peeling, catalog ⊙ factor
/// products and pair + Gray decompositions (§4.2 steps 1–3).
pub const PRODUCT_DECOMPOSITION: MaskedStrategy = MaskedStrategy {
    name: "product",
    confidence: 850,
    mask: RuleMask::GRAY
        .union(RuleMask::DIRECT)
        .union(RuleMask::DIRECT_EXT)
        .union(RuleMask::PEEL_POW2)
        .union(RuleMask::CATALOG_PRODUCT)
        .union(RuleMask::PAIR_GRAY),
};

/// Methods 1–4 plus the rank ≥ 4 bipartition search: the full rule
/// space, including the axis-split search `ℓⱼ → ℓ′·ℓ″ ≥ ℓⱼ`. Widest
/// coverage, deepest recursion, most slack in the factor products.
pub const AXIS_SPLIT_SEARCH: MaskedStrategy = MaskedStrategy {
    name: "axis-split",
    confidence: 750,
    mask: RuleMask::ALL,
};

/// The built-in strategy ladder, descending by confidence — the order
/// the plan-database builder and the service's cold-miss path try them.
pub fn default_strategies() -> Vec<Box<dyn PlanStrategy + Send + Sync>> {
    vec![
        Box::new(GRAY_WHOLE),
        Box::new(DIRECT_CATALOG),
        Box::new(PRODUCT_DECOMPOSITION),
        Box::new(AXIS_SPLIT_SEARCH),
    ]
}

/// A strategy's successful proposal: the winning plan plus the
/// provenance the plan database persists alongside it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrategyPlan {
    /// Name of the strategy that produced the plan.
    pub strategy: &'static str,
    /// That strategy's confidence (per-mille).
    pub confidence: u16,
    /// The proposed plan.
    pub plan: Plan,
}

/// Try `strategies` in the order given (callers pass them ranked by
/// descending confidence) and return the first proposal, tagged with
/// its provenance. `None` means no strategy covers the shape — for the
/// 3-D universe, the ~3.9% census exception set.
pub fn plan_with_strategies(
    planner: &mut Planner,
    shape: &Shape,
    strategies: &[Box<dyn PlanStrategy + Send + Sync>],
) -> Option<StrategyPlan> {
    strategies.iter().find_map(|s| {
        s.propose(planner, shape).map(|plan| StrategyPlan {
            strategy: s.name(),
            confidence: s.confidence(),
            plan,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> Vec<Box<dyn PlanStrategy + Send + Sync>> {
        default_strategies()
    }

    #[test]
    fn ladder_is_ranked_descending() {
        let s = ladder();
        assert!(s.windows(2).all(|w| w[0].confidence() > w[1].confidence()));
        assert_eq!(s[0].name(), "gray");
        assert_eq!(s.last().map(|s| s.name()), Some("axis-split"));
    }

    #[test]
    fn weakest_covering_strategy_wins() {
        let mut planner = Planner::new();
        let s = ladder();
        // 4x8x16: Gray is minimal — method 1 takes it.
        let hit = plan_with_strategies(&mut planner, &Shape::new(&[4, 8, 16]), &s);
        assert_eq!(hit.map(|h| h.strategy), Some("gray"));
        // 3x3x3: a direct catalog shape, not Gray-minimal.
        let hit = plan_with_strategies(&mut planner, &Shape::new(&[3, 3, 3]), &s);
        assert_eq!(hit.map(|h| h.strategy), Some("direct"));
        // 5x6x7: needs a product decomposition.
        let hit = plan_with_strategies(&mut planner, &Shape::new(&[5, 6, 7]), &s)
            .expect("5x6x7 is covered");
        assert_eq!(hit.strategy, "product");
        assert_eq!(hit.confidence, 850);
        // 5x5x5: the paper's open case — no strategy covers it.
        assert!(plan_with_strategies(&mut planner, &Shape::new(&[5, 5, 5]), &s).is_none());
    }

    #[test]
    fn masked_pass_agrees_with_full_planner_on_coverage() {
        // The widest strategy must cover exactly what `Planner::plan`
        // covers — RuleMask::ALL is the identity restriction.
        let mut a = Planner::new();
        let mut b = Planner::new();
        for dims in [[3usize, 5, 17], [6, 11, 7], [9, 9, 9], [5, 7, 7]] {
            let shape = Shape::new(&dims);
            assert_eq!(
                AXIS_SPLIT_SEARCH.propose(&mut a, &shape),
                b.plan(&shape),
                "{shape}"
            );
        }
    }

    #[test]
    fn masked_recursion_stays_inside_the_mask() {
        // 2x5x11 needs an axis split; the product-only strategy must
        // not find a plan for it even though the full planner does.
        let mut planner = Planner::new();
        let shape = Shape::new(&[2, 5, 11]);
        assert!(PRODUCT_DECOMPOSITION
            .propose(&mut planner, &shape)
            .is_none());
        assert!(AXIS_SPLIT_SEARCH.propose(&mut planner, &shape).is_some());
    }
}
