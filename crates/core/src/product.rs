//! The constructive product-embedding machinery (Theorem 3, Corollary 2).
//!
//! Two layers:
//!
//! * [`product_embedding`] — the literal Theorem 3 construction for
//!   arbitrary guest graphs: `G₁ × G₂ → Q_{n₁+n₂}`, every `G₁`-type edge
//!   routed inside its copy of `H₁`, every `G₂`-type edge inside its copy
//!   of `H₂`. Expansion multiplies; dilation and congestion take maxima —
//!   *exactly*, which the tests check.
//!
//! * [`mesh_product_embedding`] — the Corollary 2 construction: an
//!   `ℓ₁ × ⋯ × ℓ_k` mesh with `ℓᵢ ≤ ℓ₁ᵢ·ℓ₂ᵢ` is embedded through the
//!   product of an `ℓ₁₁ × ⋯ × ℓ₁ₖ` mesh `M₁` and an `ℓ₂₁ × ⋯ × ℓ₂ₖ`
//!   mesh `M₂`, using the boustrophedon reflection `φ̃₁` (instances of
//!   `M₁` with odd `M₂`-coordinate are reflected) so the big mesh really is
//!   a subgraph of the product. Writing `zᵢ = yᵢ·ℓ₁ᵢ + xᵢ`, the address is
//!   `φ₂(y) ‖ φ₁(x′)`. Allowing `ℓᵢ < ℓ₁ᵢ·ℓ₂ᵢ` implements the §4.2
//!   axis-extension trick (embed the slightly larger mesh, restrict).

use cubemesh_embedding::builders::{node_chunks, MeshEdgeView};
use cubemesh_embedding::{Embedding, RouteSet};
use cubemesh_obs as obs;
use cubemesh_topology::{Hypercube, Mesh, Shape};
use rayon::prelude::*;
use std::ops::Range;

/// Edge-id lookup for the canonical mesh edge enumeration: `id(node, axis)`
/// is the position of that edge in [`Mesh::edges`] order.
pub struct MeshEdgeIndex {
    rank: usize,
    ids: Vec<u32>,
}

impl MeshEdgeIndex {
    /// Build the lookup for a mesh shape.
    pub fn new(shape: &Shape) -> Self {
        let rank = shape.rank();
        let mesh = Mesh::new(shape.clone());
        let mut ids = vec![u32::MAX; shape.nodes() * rank];
        for (i, e) in mesh.edges().enumerate() {
            ids[e.node * rank + e.axis] = i as u32;
        }
        MeshEdgeIndex { rank, ids }
    }

    /// Edge id of the edge starting at linear index `node` along `axis`.
    ///
    /// # Panics
    /// Panics if no such edge exists (node at the high end of the axis).
    #[inline]
    pub fn id(&self, node: usize, axis: usize) -> usize {
        let id = self.ids[node * self.rank + axis];
        assert!(id != u32::MAX, "no edge at node {} axis {}", node, axis);
        id as usize
    }
}

/// The Theorem 3 construction for arbitrary guests.
///
/// Guest nodes of the product are indexed `u * |V(G₂)| + v`; guest edges
/// are emitted `G₂`-type first (per `u`, in `e2`'s edge order), then
/// `G₁`-type (per `v`, in `e1`'s edge order). The host is
/// `Q_{n₁+n₂}` with `φ([u,v]) = φ₁(u) ‖ φ₂(v)` (`φ₁` in the high bits).
pub fn product_embedding(e1: &Embedding, e2: &Embedding) -> Embedding {
    let n1 = e1.guest_nodes();
    let n2 = e2.guest_nodes();
    let host = Hypercube::new(e1.host().dim() + e2.host().dim());
    let shift = e2.host().dim();

    // The guest count n1·n2 is at most 2^{d1+d2} — the node count of the
    // host cube built above (d1+d2 <= 48) — a relational bound interval
    // analysis cannot carry.
    // audit:allow(CM-A009): n1·n2 <= 2^{d1+d2} <= 2^48, see host above
    let guest = n1 * n2;
    let mut map = Vec::with_capacity(guest);
    for u in 0..n1 {
        let hi = e1.image(u) << shift;
        for v in 0..n2 {
            map.push(hi | e2.image(v));
        }
    }

    // audit:allow(CM-A009): each term is below the product edge count < 3·guest
    let edge_total = n1 * e2.edge_count() + n2 * e1.edge_count();
    let mut edges = Vec::with_capacity(edge_total);
    let mut routes = RouteSet::with_capacity(edge_total, edge_total * 2);

    // G₂-type edges: copy of G₂ for every node u of G₁.
    for u in 0..n1 {
        let hi = e1.image(u) << shift;
        // audit:allow(CM-A009): u < n1, so u·n2 < guest ≤ 2^48.
        let base = (u * n2) as u32;
        for (i, (a, b)) in e2.edges_iter().enumerate() {
            edges.push((base + a, base + b));
            routes.push_iter(e2.routes().route(i).iter().map(|&r| hi | r));
        }
    }
    // G₁-type edges: copy of G₁ for every node v of G₂.
    for v in 0..n2 {
        let lo = e2.image(v);
        for (i, (a, b)) in e1.edges_iter().enumerate() {
            // audit:allow(CM-A009): a,b < n1, so a·n2 + v < guest ≤ 2^48.
            edges.push(((a as usize * n2 + v) as u32, (b as usize * n2 + v) as u32));
            routes.push_iter(e1.routes().route(i).iter().map(|&r| (r << shift) | lo));
        }
    }

    Embedding::new(guest, edges, host, map, routes)
}

/// The Corollary 2 construction.
///
/// * `shape` — the target mesh, with `shape[i] ≤ s1[i] * s2[i]`;
/// * `(s1, e1)` — the inner factor `M₁` and its embedding (reflected per
///   instance);
/// * `(s2, e2)` — the outer factor `M₂` and its embedding.
///
/// The returned embedding maps `z` with `zᵢ = yᵢ·ℓ₁ᵢ + xᵢ` to
/// `φ₂(y) ‖ φ₁(x′)` and routes every mesh edge inside a single copy of the
/// relevant factor's host cube, so dilation and congestion are bounded by
/// the factor embeddings' (Theorem 3).
pub fn mesh_product_embedding(
    shape: &Shape,
    s1: &Shape,
    e1: &Embedding,
    s2: &Shape,
    e2: &Embedding,
) -> Embedding {
    let k = shape.rank();
    assert_eq!(s1.rank(), k, "factor ranks must match the target");
    assert_eq!(s2.rank(), k, "factor ranks must match the target");
    for i in 0..k {
        assert!(
            shape.len(i) <= s1.len(i) * s2.len(i),
            "axis {} does not fit: {} > {}*{}",
            i,
            shape.len(i),
            s1.len(i),
            s2.len(i)
        );
    }
    assert_eq!(e1.guest_nodes(), s1.nodes());
    assert_eq!(e2.guest_nodes(), s2.nodes());

    let n1 = e1.host().dim();
    let host = Hypercube::new(n1 + e2.host().dim());
    let idx1 = MeshEdgeIndex::new(s1);
    let idx2 = MeshEdgeIndex::new(s2);

    // Decompose z into (y, x) and the reflected x'.
    let split = |z: &[usize], x: &mut [usize], y: &mut [usize], xr: &mut [usize]| {
        for i in 0..z.len() {
            let l1 = s1.len(i);
            y[i] = z[i] / l1;
            x[i] = z[i] % l1;
            xr[i] = if y[i].is_multiple_of(2) {
                x[i]
            } else {
                l1 - 1 - x[i]
            };
        }
    };

    // Node map, filled in parallel chunks. The factor indices fold over the
    // axes directly, so a worker needs no coordinate scratch beyond the
    // cursor `fill_node_map` maintains.
    let map = {
        let _span = obs::span!("product.map");
        cubemesh_embedding::builders::fill_node_map(shape, |z| {
            let mut nidx1 = 0usize;
            let mut nidx2 = 0usize;
            for (i, &zi) in z.iter().enumerate() {
                let l1 = s1.len(i);
                let y = zi / l1;
                let x = zi % l1;
                let xr = if y.is_multiple_of(2) { x } else { l1 - 1 - x };
                nidx1 = nidx1 * l1 + xr;
                nidx2 = nidx2 * s2.len(i) + y;
            }
            (e2.image(nidx2) << n1) | e1.image(nidx1)
        })
    };

    // Routes, built per contiguous node range. The canonical enumeration
    // visits nodes in linear order and axes ascending within a node, so
    // ranges split at node boundaries produce dense, splicable edge-id
    // runs; `edges_before_node` sizes each worker's arena exactly.
    let view = MeshEdgeView::new(shape);
    let fill_routes = |range: Range<usize>| -> RouteSet {
        let chunk_edges = view.edges_before_node(range.end) - view.edges_before_node(range.start);
        let mut rs = RouteSet::with_capacity(chunk_edges, chunk_edges * 3);
        let mut z = vec![0usize; k];
        let mut x = vec![0usize; k];
        let mut y = vec![0usize; k];
        let mut xr = vec![0usize; k];
        shape.coords_into(range.start, &mut z);
        for _ in range {
            split(&z, &mut x, &mut y, &mut xr);
            for axis in 0..k {
                if z[axis] + 1 >= shape.len(axis) {
                    continue;
                }
                let l1 = s1.len(axis);
                if (z[axis] + 1).is_multiple_of(l1) {
                    // M₂-type edge: y -> y + e_axis; x' identical on both ends.
                    let ynode = s2.index(&y);
                    let a1 = e1.image(s1.index(&xr));
                    let rid = idx2.id(ynode, axis);
                    rs.push_iter(e2.routes().route(rid).iter().map(|&r| (r << n1) | a1));
                } else {
                    // M₁-type edge within instance y; reflected when y is odd.
                    let a2 = e2.image(s2.index(&y)) << n1;
                    let xnode = s1.index(&xr);
                    if y[axis].is_multiple_of(2) {
                        // x' increases along the edge: stored route runs forward.
                        let rid = idx1.id(xnode, axis);
                        rs.push_iter(e1.routes().route(rid).iter().map(|&r| a2 | r));
                    } else {
                        // x' decreases: the canonical edge starts at x' - 1;
                        // reverse its route.
                        let s1_stride: usize = s1.dims()[axis + 1..].iter().product();
                        let rid = idx1.id(xnode - s1_stride, axis);
                        rs.push_iter(e1.routes().route(rid).iter().rev().map(|&r| a2 | r));
                    }
                }
            }
            shape.advance_coords(&mut z);
        }
        rs
    };

    let routes = {
        let _span = obs::span!("product.routes");
        let chunks = node_chunks(shape.nodes());
        if chunks.len() == 1 {
            fill_routes(0..shape.nodes())
        } else {
            let parts: Vec<RouteSet> = chunks.into_par_iter().map(fill_routes).collect();
            let total_nodes: usize = parts
                .iter()
                .map(|p| p.total_length() as usize + p.len())
                .sum();
            let mut combined = RouteSet::with_capacity(view.edge_count(), total_nodes);
            for p in &parts {
                combined.append(p);
            }
            combined
        }
    };

    Embedding::new_mesh(shape, host, map, routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubemesh_embedding::gray_mesh_embedding;

    #[test]
    fn mesh_edge_index_matches_enumeration() {
        let shape = Shape::new(&[3, 4]);
        let idx = MeshEdgeIndex::new(&shape);
        let mesh = Mesh::new(shape.clone());
        for (i, e) in mesh.edges().enumerate() {
            assert_eq!(idx.id(e.node, e.axis), i);
        }
    }

    #[test]
    fn corollary2_gray_times_gray_is_valid() {
        // (4x2) ⊙ (2x3) ⊇ 8x6.
        let s1 = Shape::new(&[4, 2]);
        let s2 = Shape::new(&[2, 3]);
        let e1 = gray_mesh_embedding(&s1);
        let e2 = gray_mesh_embedding(&s2);
        let shape = Shape::new(&[8, 6]);
        let emb = mesh_product_embedding(&shape, &s1, &e1, &s2, &e2);
        emb.verify().unwrap();
        let m = emb.metrics();
        assert_eq!(m.dilation, 1, "gray x gray stays dilation 1");
        assert_eq!(m.host_dim, e1.host().dim() + e2.host().dim());
    }

    #[test]
    fn corollary2_restriction_embeds_smaller_mesh() {
        // 3x3x23 inside (3x3x5) ⊙ (1x1x5) — the paper's extension example
        // (3x3x25 ⊇ 3x3x23), with the 3x3x5 factor Gray-coded here.
        let s1 = Shape::new(&[3, 3, 5]);
        let s2 = Shape::new(&[1, 1, 5]);
        let e1 = gray_mesh_embedding(&s1);
        let e2 = gray_mesh_embedding(&s2);
        let shape = Shape::new(&[3, 3, 23]);
        let emb = mesh_product_embedding(&shape, &s1, &e1, &s2, &e2);
        emb.verify().unwrap();
        assert_eq!(emb.metrics().dilation, 1);
        assert_eq!(emb.guest_nodes(), 207);
    }

    #[test]
    fn theorem3_metric_laws_hold_exactly() {
        // Factors with different dilation: Gray (d=1) x snake-ish… use two
        // Gray factors and check multiplicativity of expansion instead;
        // dilation/congestion maxima are exercised with the catalog in the
        // cross-crate integration tests.
        let s1 = Shape::new(&[3, 1]);
        let s2 = Shape::new(&[1, 5]);
        let e1 = gray_mesh_embedding(&s1);
        let e2 = gray_mesh_embedding(&s2);
        let shape = Shape::new(&[3, 5]);
        let emb = mesh_product_embedding(&shape, &s1, &e1, &s2, &e2);
        emb.verify().unwrap();
        let m = emb.metrics();
        assert_eq!(m.dilation, 1);
        assert_eq!(m.congestion, 1);
        assert!((emb.expansion() - e1.expansion() * e2.expansion()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn oversize_target_rejected() {
        let s1 = Shape::new(&[2, 2]);
        let s2 = Shape::new(&[2, 2]);
        let e1 = gray_mesh_embedding(&s1);
        let e2 = gray_mesh_embedding(&s2);
        let shape = Shape::new(&[5, 4]);
        let _ = mesh_product_embedding(&shape, &s1, &e1, &s2, &e2);
    }
}
