//! Lowering a [`Plan`] to a concrete, verifiable embedding.

use crate::plan::{reduce, Plan};
use crate::product::mesh_product_embedding;
use cubemesh_embedding::{gray_mesh_embedding, Embedding, MeshEdgeView};
use cubemesh_obs as obs;
use cubemesh_search::catalog_embedding;
use cubemesh_topology::Shape;

/// Why a plan cannot be lowered to an embedding.
///
/// The planner only emits `Direct` after a successful catalog lookup, so
/// this error indicates a hand-built or corrupted plan tree (use
/// `cubemesh_audit::check_plan` to validate plans before constructing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConstructError {
    /// A `Direct` plan names a shape absent from the embedding catalog.
    DirectNotInCatalog { shape: Shape },
}

impl std::fmt::Display for ConstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstructError::DirectNotInCatalog { shape } => {
                write!(f, "Direct plan but {shape} not in catalog")
            }
        }
    }
}

impl std::error::Error for ConstructError {}

/// Build the embedding a plan describes for `shape`.
///
/// The plan must have been produced for this shape (or one with the same
/// reduced dims). The result's host cube is `Q_{plan.host_dim()}` and its
/// dilation/congestion obey the plan's Theorem 3 bounds —
/// property-checked in the crate tests rather than here (construction is
/// hot in censuses).
pub fn construct(shape: &Shape, plan: &Plan) -> Result<Embedding, ConstructError> {
    // One span per top-level lowering; the product recursion shows up as
    // nested `product.map` / `product.routes` children in a trace.
    let _span = obs::span!("construct");
    let reduced = reduce(shape);
    let emb = construct_reduced(&reduced, plan)?;
    Ok(lift(emb, shape))
}

fn construct_reduced(shape: &Shape, plan: &Plan) -> Result<Embedding, ConstructError> {
    match plan {
        Plan::Gray => Ok(gray_mesh_embedding(shape)),
        Plan::Direct => {
            catalog_embedding(shape).ok_or_else(|| ConstructError::DirectNotInCatalog {
                shape: shape.clone(),
            })
        }
        Plan::Product { f1, p1, f2, p2 } => {
            // Factors are planned on their reduced shapes; construct and
            // lift back to the product rank.
            let e1 = lift(construct_reduced(&reduce(f1), p1)?, f1);
            let e2 = lift(construct_reduced(&reduce(f2), p2)?, f2);
            Ok(mesh_product_embedding(shape, f1, &e1, f2, &e2))
        }
    }
}

/// Re-declare a mesh embedding at a different rank with the same reduced
/// shape. Length-1 axes change neither linear node indices nor the edge
/// enumeration, so the map and routes transfer verbatim and only the guest
/// shape is swapped — an O(rank) relabel, with no edge list materialized
/// at any recursion level of [`construct`].
pub fn lift(emb: Embedding, shape: &Shape) -> Embedding {
    emb.with_mesh_guest(shape)
}

/// Restrict a mesh embedding of `big` to the submesh `small`
/// (`small ≤ big` axiswise): nodes with out-of-range coordinates are
/// dropped, routes of surviving edges transfer verbatim. All metrics can
/// only improve; the host cube is unchanged.
pub fn restrict(emb: &Embedding, big: &Shape, small: &Shape) -> Embedding {
    assert!(small.fits_in(big), "{} does not fit in {}", small, big);
    assert_eq!(emb.guest_nodes(), big.nodes());
    let idx = crate::product::MeshEdgeIndex::new(big);
    let view = MeshEdgeView::new(small);
    let edge_count = view.edge_count();
    let rank = small.rank();

    let mut map = Vec::with_capacity(small.nodes());
    let mut routes = cubemesh_embedding::RouteSet::with_capacity(edge_count, edge_count * 3);
    let mut c = vec![0usize; rank];
    loop {
        let big_node = big.index(&c);
        map.push(emb.image(big_node));
        for (axis, &coord) in c.iter().enumerate() {
            if coord + 1 >= small.len(axis) {
                continue;
            }
            routes.push(emb.routes().route(idx.id(big_node, axis)));
        }
        if !small.advance_coords(&mut c) {
            break;
        }
    }
    Embedding::new_mesh(small, emb.host(), map, routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;

    fn check(dims: &[usize]) -> cubemesh_embedding::Metrics {
        let shape = Shape::new(dims);
        let plan = Planner::new()
            .plan(&shape)
            .unwrap_or_else(|| panic!("no plan for {:?}", dims));
        let emb = construct(&shape, &plan).expect("plan lowers");
        emb.verify().unwrap_or_else(|e| panic!("{:?}: {}", dims, e));
        let m = emb.metrics();
        assert!(m.is_minimal_expansion(), "{:?} not minimal", dims);
        assert!(
            m.dilation <= plan.dilation_bound(),
            "{:?} dilation {} > bound {}",
            dims,
            m.dilation,
            plan.dilation_bound()
        );
        assert!(
            m.congestion <= plan.congestion_bound(),
            "{:?} congestion {} > bound {}",
            dims,
            m.congestion,
            plan.congestion_bound()
        );
        m
    }

    #[test]
    fn paper_examples_construct_and_verify() {
        // §4.2/§5 worked examples.
        check(&[12, 20]); // (3x5)·(4x4)
        check(&[3, 25, 3]); // two 3x5 pieces
        check(&[21, 9, 5]); // (7x9x1)·(3x1x5)
        check(&[3, 3, 23]); // extension to 3x3x25
        check(&[5, 6, 7]); // pair (5,6) + Gray 7
        check(&[5, 10, 11]);
        check(&[6, 11, 7]);
    }

    #[test]
    fn method3_style_products_construct() {
        check(&[6, 6, 6]); // (3x3x3)·(2x2x2)
        check(&[3, 3, 14]); // (3x3x7)·(1x1x2)
        check(&[27, 3, 3]); // extension 28x3x3 = (7x3x3)·(4x1x1)
    }

    #[test]
    fn direct_extension_constructs() {
        let m = check(&[10, 11]); // inside 11x11
        assert_eq!(m.host_dim, 7);
    }

    #[test]
    fn gray_plans_construct_at_dilation_one() {
        let m = check(&[4, 8, 16]);
        assert_eq!(m.dilation, 1);
        assert_eq!(m.congestion, 1);
    }

    #[test]
    fn larger_meshes_construct() {
        check(&[9, 9, 9]); // (3x9)-style splits
        check(&[12, 10, 20]);
        check(&[24, 20, 12]);
    }

    #[test]
    fn four_d_construction() {
        check(&[3, 5, 2, 4]);
        check(&[3, 3, 3, 3]);
    }

    #[test]
    fn restrict_keeps_metrics_bounded() {
        let big = Shape::new(&[4, 8]);
        let emb = gray_mesh_embedding(&big);
        let small = Shape::new(&[3, 7]);
        let r = restrict(&emb, &big, &small);
        r.verify().unwrap();
        assert_eq!(r.guest_nodes(), 21);
        let m = r.metrics();
        assert_eq!(m.dilation, 1);
        assert!(m.congestion <= 1);
        assert_eq!(r.host().dim(), emb.host().dim());
    }

    #[test]
    fn lift_preserves_everything() {
        let shape2 = Shape::new(&[3, 5]);
        let emb = gray_mesh_embedding(&shape2);
        let shape3 = Shape::new(&[3, 1, 5]);
        let lifted = lift(emb.clone(), &shape3);
        lifted.verify().unwrap();
        assert_eq!(lifted.map(), emb.map());
        assert_eq!(lifted.metrics().dilation, emb.metrics().dilation);
    }
}
