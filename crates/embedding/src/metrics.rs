//! Expansion, dilation, congestion, and their averages (Definitions 1–3),
//! plus the load-factor of §7 for many-to-one maps.
//!
//! Congestion is exact and never materializes a per-host-edge array the
//! size of the cube. When the host's edge-index space fits in `u32` (any
//! cube up to `Q_26`), steps take the *bucketed counting* path: each
//! route shard computes its dilation max and partitions its dense step
//! indices into contiguous buckets of `2^15` indices (a 128 KiB count
//! window — L2-resident), then each bucket is counted through the reused
//! window with an on-the-fly max. Both phases are embarrassingly
//! parallel (shards, then buckets) and every value is an exact integer,
//! so the sharded result is bitwise identical to the sequential one.
//! When the route arena is all dilation-1 pairs (`RouteSet::all_pairs`,
//! the shape every Gray-code embedding produces), the gather reads the
//! node arena directly as `(u, v)` lanes, skipping the offsets table.
//!
//! Larger cubes (`space > u32::MAX`) fall back to the sort-and-merge
//! path: per-shard sorted `u64` step lists, k-way merged while counting
//! runs. [`metrics_par`] and [`metrics_seq`] are property-tested for
//! exact agreement on both paths.

use crate::builders::PAR_MIN_NODES;
use crate::map::Embedding;
use cubemesh_obs as obs;
use cubemesh_topology::Hypercube;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// All figures of merit of an embedding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metrics {
    /// Host cube dimension `n`.
    pub host_dim: u32,
    /// `|V(G)|`.
    pub guest_nodes: usize,
    /// `|E(G)|`.
    pub guest_edge_count: usize,
    /// `|V(H)| / |V(G)|`.
    pub expansion: f64,
    /// `max_e |φ(e)|`.
    pub dilation: u32,
    /// `Σ_e |φ(e)| / |E(G)|`.
    pub avg_dilation: f64,
    /// `max_{e'∈E(H)} cong(e')`.
    pub congestion: u32,
    /// `Σ_{e'∈E(H)} cong(e') / |E(H)| = Σ_e |φ(e)| / |E(H)|`.
    pub avg_congestion: f64,
}

impl Metrics {
    /// `true` if the embedding is into the minimal cube.
    pub fn is_minimal_expansion(&self) -> bool {
        let minimal = cubemesh_topology::cube_dim(self.guest_nodes as u64);
        self.host_dim == minimal
    }
}

/// Compute all metrics of an embedding. Dispatches to the sharded path when
/// more than one rayon thread is available and the route arena is large
/// enough to amortize the worker hand-off; both paths return identical
/// values.
pub fn metrics(e: &Embedding) -> Metrics {
    if rayon::current_num_threads() > 1 && e.routes().total_length() >= PAR_MIN_NODES as u64 {
        metrics_par(e)
    } else {
        metrics_seq(e)
    }
}

/// Single-threaded metrics: one pass gathering steps, one sort, one run
/// count.
pub fn metrics_seq(e: &Embedding) -> Metrics {
    let _span = obs::span!("metrics.seq");
    dil_cong_dispatch(e, 1)
}

/// Sharded metrics: contiguous route chunks per worker, per-worker sorts,
/// k-way run-counting merge. Always uses at least two shards so the merge
/// path is exercised (and testable) even on a single-core host; agrees
/// exactly with [`metrics_seq`].
pub fn metrics_par(e: &Embedding) -> Metrics {
    let _span = obs::span!("metrics.par");
    let parts = rayon::current_num_threads().max(2);
    obs::trace::gauge("metrics.shards", parts as u64);
    dil_cong_dispatch(e, parts)
}

fn dil_cong_dispatch(e: &Embedding, parts: usize) -> Metrics {
    let host = e.host();
    let space = host.edge_index_space();
    // Any cube with edge_index_space() <= u32::MAX (dim <= 26) takes the
    // bucketed u32 counting path — half the memory traffic of u64 and no
    // sort; giant cubes fall back to sort-and-merge over u64 steps, and
    // so do tiny route sets, where the count window's zero-fill would
    // dominate the handful of steps being counted.
    let bucketed = space <= u32::MAX as usize && e.routes().total_length() >= SMALL_SORT_MAX;
    let (dilation, congestion) = if bucketed {
        dil_cong_bucketed(e, parts)
    } else {
        dil_cong(e, parts, |i| i as u64)
    };
    finish_metrics(e, dilation, congestion)
}

/// Bucket granularity for the counting path: `2^15` u32 slots = 128 KiB
/// per count window, sized to stay L2-resident while counting.
const BUCKET_BITS: u32 = 15;
const BUCKET_WIDTH: usize = 1 << BUCKET_BITS;

/// Route arenas shorter than this sort faster than they bucket (the
/// count window's zero-fill alone outweighs sorting a few thousand
/// steps), so they keep the u64 sort-and-merge path.
const SMALL_SORT_MAX: u64 = 1 << 16;

/// One route shard's gathered steps: dilation max plus step indices
/// partitioned into bucket-contiguous segments (`offs` holds the prefix
/// sums; bucket `b` is `steps[offs[b]..offs[b + 1]]`). Steps are stored
/// as *in-bucket* offsets — the low `BUCKET_BITS` of the edge index,
/// which is all the count phase needs once the bucket is fixed — so the
/// scatter writes and the two count-phase reads move half the bytes a
/// full `u32` index would.
struct ShardSteps {
    dil: u32,
    offs: Vec<u32>,
    steps: Vec<u16>,
}

/// Gather one contiguous route range: dilation max plus step indices,
/// with the per-bucket histogram folded into the same pass; then one
/// counting scatter into bucket-contiguous order.
fn gather_shard(e: &Embedding, lo: usize, hi: usize, nbuckets: usize) -> ShardSteps {
    let host = e.host();
    let routes = e.routes();
    let mut dil = 0u32;
    let mut raw: Vec<u32>;
    if routes.all_pairs() {
        // Every route is a 2-node path: read the arena as (u, v) lanes —
        // no offsets indirection, dilation is 1 wherever routes exist.
        // Writing through a pre-sized iterator keeps the loop free of
        // capacity checks and memory-dependency chains.
        dil = u32::from(hi > lo);
        let lanes = &routes.pair_lanes()[lo * 2..hi * 2];
        raw = vec![0u32; lanes.len() / 2];
        for (o, pair) in raw.iter_mut().zip(lanes.chunks_exact(2)) {
            let bit = (pair[0] ^ pair[1]).trailing_zeros();
            *o = host.edge_index(pair[0], bit) as u32;
        }
    } else {
        raw = Vec::with_capacity(routes.span_length(lo, hi));
        for i in lo..hi {
            dil = dil.max(routes.dilation(i));
            for w in routes.route(i).windows(2) {
                let bit = (w[0] ^ w[1]).trailing_zeros();
                raw.push(host.edge_index(w[0], bit) as u32);
            }
        }
    }
    const LOW_MASK: u32 = (BUCKET_WIDTH - 1) as u32;
    if nbuckets <= 1 {
        let total = raw.len() as u32;
        return ShardSteps {
            dil,
            offs: vec![0, total],
            steps: raw.iter().map(|&s| s as u16).collect(),
        };
    }
    let mut offs = vec![0u32; nbuckets + 1];
    bucket_histogram(&raw, &mut offs);
    for b in 1..=nbuckets {
        offs[b] += offs[b - 1];
    }
    let mut cursor = offs.clone();
    let mut steps = vec![0u16; raw.len()];
    for &s in &raw {
        let b = (s >> BUCKET_BITS) as usize;
        steps[cursor[b] as usize] = (s & LOW_MASK) as u16;
        cursor[b] += 1;
    }
    ShardSteps { dil, offs, steps }
}

/// Per-bucket step counts into `offs[bucket + 1]` (the shifted layout the
/// prefix sum in [`gather_shard`] expects). Four interleaved
/// sub-histograms: consecutive steps usually land in the same bucket, and
/// a single counter array would serialize every increment on
/// store-to-load forwarding.
fn bucket_histogram(steps: &[u32], offs: &mut [u32]) {
    let nb = offs.len() - 1;
    let mut h1 = vec![0u32; nb];
    let mut h2 = vec![0u32; nb];
    let mut h3 = vec![0u32; nb];
    let mut lanes = steps.chunks_exact(4);
    for q in &mut lanes {
        offs[(q[0] >> BUCKET_BITS) as usize + 1] += 1;
        h1[(q[1] >> BUCKET_BITS) as usize] += 1;
        h2[(q[2] >> BUCKET_BITS) as usize] += 1;
        h3[(q[3] >> BUCKET_BITS) as usize] += 1;
    }
    for &s in lanes.remainder() {
        offs[(s >> BUCKET_BITS) as usize + 1] += 1;
    }
    for b in 0..nb {
        offs[b + 1] += h1[b] + h2[b] + h3[b];
    }
}

/// Count a run of buckets across all shards through one reused
/// L2-resident window, tracking the max on the fly. Each slot carries the
/// bucket index that last wrote it in its high half; a slot whose tag is
/// stale reads as zero, so no reset pass between buckets is needed and
/// every step is touched exactly once. (A fresh window starts all-zero,
/// which is exactly "tag 0, count 0" — correct for the first bucket too.)
fn bucket_group_max(shards: &[ShardSteps], blo: usize, bhi: usize, space: usize) -> u32 {
    let mut window = vec![0u64; BUCKET_WIDTH.min(space.max(1))];
    let mut best = 0u32;
    for b in blo..bhi {
        let tag = (b as u64) << 32;
        for sh in shards {
            let seg = &sh.steps[sh.offs[b] as usize..sh.offs[b + 1] as usize];
            for &s in seg {
                let k = s as usize;
                let v = window[k];
                let c = (if v >> 32 == b as u64 { v } else { tag }) + 1;
                window[k] = c;
                best = best.max(c as u32);
            }
        }
    }
    best
}

/// Dilation + congestion via bucketed counting (see module docs): route
/// shards gather and partition in parallel, buckets count in parallel,
/// and every merge is an integer max — the sharded result is bitwise
/// identical to `parts == 1` by construction.
fn dil_cong_bucketed(e: &Embedding, parts: usize) -> (u32, u32) {
    let space = e.host().edge_index_space();
    let nbuckets = space.max(1).div_ceil(BUCKET_WIDTH);
    let n = e.routes().len();
    let shards: Vec<ShardSteps> = if parts <= 1 || n < 2 {
        vec![gather_shard(e, 0, n, nbuckets)]
    } else {
        let chunk = n.div_ceil(parts);
        let bounds: Vec<(usize, usize)> = (0..n)
            .step_by(chunk)
            .map(|lo| (lo, (lo + chunk).min(n)))
            .collect();
        bounds
            .into_par_iter()
            .map(|(lo, hi)| gather_shard(e, lo, hi, nbuckets))
            .collect()
    };
    let dil = shards.iter().map(|s| s.dil).max().unwrap_or(0);
    let shards = &shards;
    let congestion = if parts <= 1 || nbuckets < 2 {
        bucket_group_max(shards, 0, nbuckets, space)
    } else {
        // One reused window per bucket group; groups oversplit so the
        // pool can rebalance unevenly-loaded bucket ranges.
        let group = nbuckets.div_ceil(parts * 4).max(1);
        let groups: Vec<(usize, usize)> = (0..nbuckets)
            .step_by(group)
            .map(|blo| (blo, (blo + group).min(nbuckets)))
            .collect();
        groups
            .into_par_iter()
            .map(|(blo, bhi)| bucket_group_max(shards, blo, bhi, space))
            .reduce(|| 0u32, u32::max)
    };
    (dil, congestion)
}

fn finish_metrics(e: &Embedding, dilation: u32, congestion: u32) -> Metrics {
    let host = e.host();
    let guest_edge_count = e.edge_count();
    let total_len = e.routes().total_length();
    let host_edges = host.edge_count();
    Metrics {
        host_dim: host.dim(),
        guest_nodes: e.guest_nodes(),
        guest_edge_count,
        expansion: e.expansion(),
        dilation,
        avg_dilation: if guest_edge_count == 0 {
            0.0
        } else {
            total_len as f64 / guest_edge_count as f64
        },
        congestion,
        avg_congestion: if host_edges == 0 {
            0.0
        } else {
            total_len as f64 / host_edges as f64
        },
    }
}

/// Maximum dilation and congestion over the routes, sharded `parts` ways.
/// `conv` narrows the dense host-edge index to the counting type.
fn dil_cong<T>(e: &Embedding, parts: usize, conv: impl Fn(usize) -> T + Send + Sync) -> (u32, u32)
where
    T: Ord + Copy + Send,
{
    let host = e.host();
    let routes = e.routes();
    let n = routes.len();

    let gather = |lo: usize, hi: usize| -> (u32, Vec<T>) {
        let mut dil = 0u32;
        let mut steps: Vec<T> = Vec::with_capacity(routes.span_length(lo, hi));
        for i in lo..hi {
            dil = dil.max(routes.dilation(i));
            for w in routes.route(i).windows(2) {
                let bit = (w[0] ^ w[1]).trailing_zeros();
                steps.push(conv(host.edge_index(w[0], bit)));
            }
        }
        steps.sort_unstable();
        (dil, steps)
    };

    if parts <= 1 || n < 2 {
        let (dil, steps) = gather(0, n);
        return (dil, max_run_sorted(&steps));
    }

    let chunk = n.div_ceil(parts);
    let bounds: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(n)))
        .collect();
    let shards: Vec<(u32, Vec<T>)> = bounds
        .into_par_iter()
        .map(|(lo, hi)| gather(lo, hi))
        .collect();
    let dil = shards.iter().map(|s| s.0).max().unwrap_or(0);
    let lists: Vec<Vec<T>> = shards.into_iter().map(|s| s.1).collect();
    (dil, max_run_merged(&lists))
}

/// Longest run in an already-sorted slice.
fn max_run_sorted<T: Ord + Copy>(items: &[T]) -> u32 {
    let mut best = 0u32;
    let mut run = 0u32;
    let mut prev = None;
    for &x in items {
        if prev == Some(x) {
            run += 1;
        } else {
            run = 1;
            prev = Some(x);
        }
        best = best.max(run);
    }
    best
}

/// Longest run across sorted lists, k-way merged with a min-heap. The merge
/// visits elements in exactly the order a global sort would, so the result
/// equals `max_run_sorted` of the concatenated-and-sorted lists.
fn max_run_merged<T: Ord + Copy>(lists: &[Vec<T>]) -> u32 {
    let mut heap: BinaryHeap<Reverse<(T, usize)>> = lists
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.is_empty())
        .map(|(i, l)| Reverse((l[0], i)))
        .collect();
    let mut pos = vec![1usize; lists.len()];
    let mut best = 0u32;
    let mut run = 0u32;
    let mut prev = None;
    while let Some(Reverse((x, i))) = heap.pop() {
        if prev == Some(x) {
            run += 1;
        } else {
            run = 1;
            prev = Some(x);
        }
        best = best.max(run);
        let p = pos[i];
        if p < lists[i].len() {
            heap.push(Reverse((lists[i][p], i)));
            pos[i] = p + 1;
        }
    }
    best
}

/// Load-factor (Definition 5): the maximum number of guest nodes mapped to
/// one host node. For one-to-one maps this is 1 (or 0 for an empty map).
pub fn load_factor(map: &[u64], host: Hypercube) -> u32 {
    debug_assert!(map.iter().all(|&a| host.contains(a)));
    let _ = host;
    let mut sorted: Vec<u64> = map.to_vec();
    sorted.sort_unstable();
    max_run_sorted(&sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteSet;

    fn ring4_in_q2() -> Embedding {
        // 4-ring onto all of Q2 via the cyclic Gray code.
        let map = vec![0b00, 0b01, 0b11, 0b10];
        let edges = vec![(0u32, 1u32), (1, 2), (2, 3), (0, 3)];
        let mut rs = RouteSet::new();
        rs.push(&[0b00, 0b01]);
        rs.push(&[0b01, 0b11]);
        rs.push(&[0b11, 0b10]);
        rs.push(&[0b00, 0b10]);
        Embedding::new(4, edges, Hypercube::new(2), map, rs)
    }

    #[test]
    fn perfect_embedding_metrics() {
        let e = ring4_in_q2();
        e.verify().unwrap();
        let m = e.metrics();
        assert_eq!(m.dilation, 1);
        assert_eq!(m.congestion, 1);
        assert_eq!(m.expansion, 1.0);
        assert_eq!(m.avg_dilation, 1.0);
        assert_eq!(m.avg_congestion, 1.0);
        assert!(m.is_minimal_expansion());
    }

    #[test]
    fn dilated_route_counts() {
        // Path 0-1 mapped to opposite corners of Q2 with a length-2 route.
        let mut rs = RouteSet::new();
        rs.push(&[0b00, 0b01, 0b11]);
        let e = Embedding::new(2, vec![(0, 1)], Hypercube::new(2), vec![0b00, 0b11], rs);
        e.verify().unwrap();
        let m = e.metrics();
        assert_eq!(m.dilation, 2);
        assert_eq!(m.avg_dilation, 2.0);
        assert_eq!(m.congestion, 1);
        assert_eq!(m.expansion, 2.0);
        assert!(!m.is_minimal_expansion());
    }

    #[test]
    fn congestion_counts_overlaps() {
        // Two guest edges routed across the same cube edge 00-01.
        let mut rs = RouteSet::new();
        rs.push(&[0b00, 0b01]);
        rs.push(&[0b10, 0b00, 0b01, 0b11]);
        let e = Embedding::new(
            4,
            vec![(0, 1), (2, 3)],
            Hypercube::new(2),
            vec![0b00, 0b01, 0b10, 0b11],
            rs,
        );
        e.verify().unwrap();
        let m = e.metrics();
        assert_eq!(m.congestion, 2);
        assert_eq!(m.dilation, 3);
    }

    #[test]
    fn zero_edge_guest() {
        let e = Embedding::new(1, vec![], Hypercube::new(0), vec![0], RouteSet::new());
        for m in [metrics_seq(&e), metrics_par(&e)] {
            assert_eq!(m.dilation, 0);
            assert_eq!(m.congestion, 0);
            assert_eq!(m.avg_dilation, 0.0);
            assert_eq!(m.avg_congestion, 0.0);
        }
    }

    #[test]
    fn par_agrees_with_seq_on_small_fixture() {
        let e = ring4_in_q2();
        assert_eq!(metrics_seq(&e), metrics_par(&e));
    }

    #[test]
    fn merged_run_equals_global_sort() {
        let lists = vec![vec![1u32, 3, 3, 9], vec![], vec![2, 3, 3, 3], vec![3]];
        let mut flat: Vec<u32> = lists.iter().flatten().copied().collect();
        flat.sort_unstable();
        assert_eq!(max_run_merged(&lists), max_run_sorted(&flat));
        assert_eq!(max_run_merged(&lists), 6); // six 3s across the lists
        assert_eq!(max_run_merged::<u32>(&[]), 0);
    }

    #[test]
    fn load_factor_counts_max_multiplicity() {
        let host = Hypercube::new(2);
        assert_eq!(load_factor(&[0, 1, 2, 3], host), 1);
        assert_eq!(load_factor(&[0, 1, 1, 3], host), 2);
        assert_eq!(load_factor(&[2, 2, 2, 2], host), 4);
        assert_eq!(load_factor(&[], host), 0);
    }
}
