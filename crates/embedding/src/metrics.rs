//! Expansion, dilation, congestion, and their averages (Definitions 1–3),
//! plus the load-factor of §7 for many-to-one maps.
//!
//! Congestion is computed by sorting the dense edge indices of every route
//! step and counting runs — `O(L log L)` in the total route length `L`, with
//! no per-host-edge allocation, so it scales to guests with millions of
//! edges in cubes far too large to materialize. Two refinements keep the
//! paper-scale shapes fast:
//!
//! * when the host's edge-index space fits in `u32` (any cube up to `Q_26`),
//!   steps are gathered and sorted as `u32`, halving sort traffic;
//! * with more than one rayon thread, routes are sharded into contiguous
//!   index chunks, each worker sorts its own steps, and the sorted partials
//!   are k-way merged while counting runs — bitwise the same `Metrics` as
//!   the sequential path ([`metrics_par`] and [`metrics_seq`] are
//!   property-tested for exact agreement).

use crate::builders::PAR_MIN_NODES;
use crate::map::Embedding;
use cubemesh_obs as obs;
use cubemesh_topology::Hypercube;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// All figures of merit of an embedding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metrics {
    /// Host cube dimension `n`.
    pub host_dim: u32,
    /// `|V(G)|`.
    pub guest_nodes: usize,
    /// `|E(G)|`.
    pub guest_edge_count: usize,
    /// `|V(H)| / |V(G)|`.
    pub expansion: f64,
    /// `max_e |φ(e)|`.
    pub dilation: u32,
    /// `Σ_e |φ(e)| / |E(G)|`.
    pub avg_dilation: f64,
    /// `max_{e'∈E(H)} cong(e')`.
    pub congestion: u32,
    /// `Σ_{e'∈E(H)} cong(e') / |E(H)| = Σ_e |φ(e)| / |E(H)|`.
    pub avg_congestion: f64,
}

impl Metrics {
    /// `true` if the embedding is into the minimal cube.
    pub fn is_minimal_expansion(&self) -> bool {
        let minimal = cubemesh_topology::cube_dim(self.guest_nodes as u64);
        self.host_dim == minimal
    }
}

/// Compute all metrics of an embedding. Dispatches to the sharded path when
/// more than one rayon thread is available and the route arena is large
/// enough to amortize the worker hand-off; both paths return identical
/// values.
pub fn metrics(e: &Embedding) -> Metrics {
    if rayon::current_num_threads() > 1 && e.routes().total_length() >= PAR_MIN_NODES as u64 {
        metrics_par(e)
    } else {
        metrics_seq(e)
    }
}

/// Single-threaded metrics: one pass gathering steps, one sort, one run
/// count.
pub fn metrics_seq(e: &Embedding) -> Metrics {
    let _span = obs::span!("metrics.seq");
    dil_cong_dispatch(e, 1)
}

/// Sharded metrics: contiguous route chunks per worker, per-worker sorts,
/// k-way run-counting merge. Always uses at least two shards so the merge
/// path is exercised (and testable) even on a single-core host; agrees
/// exactly with [`metrics_seq`].
pub fn metrics_par(e: &Embedding) -> Metrics {
    let _span = obs::span!("metrics.par");
    let parts = rayon::current_num_threads().max(2);
    obs::trace::gauge("metrics.shards", parts as u64);
    dil_cong_dispatch(e, parts)
}

fn dil_cong_dispatch(e: &Embedding, parts: usize) -> Metrics {
    let host = e.host();
    let space = host.edge_index_space();
    // When the host's edge-index space is within a small factor of the
    // total route length, a direct count array beats sorting the steps:
    // one increment per step plus a linear max scan, no O(L log L) sort.
    // (The cap keeps the array under ~256 MiB for sparse giant cubes.)
    let total_len = e.routes().total_length();
    if parts <= 1 && space as u64 <= 16 * total_len && space <= 1 << 26 {
        let (dilation, congestion) = dil_cong_counted(e);
        return finish_metrics(e, dilation, congestion);
    }
    // Any cube with edge_index_space() <= u32::MAX (dim <= 26) can count
    // congestion over u32 steps — half the memory traffic of u64.
    let (dilation, congestion) = if space <= u32::MAX as usize {
        dil_cong(e, parts, |i| i as u32)
    } else {
        dil_cong(e, parts, |i| i as u64)
    };
    finish_metrics(e, dilation, congestion)
}

/// Dilation + congestion via a dense per-host-edge count array — exact,
/// and faster than sort-and-count when the index space is not much larger
/// than the number of route steps.
fn dil_cong_counted(e: &Embedding) -> (u32, u32) {
    let host = e.host();
    let routes = e.routes();
    let mut counts = vec![0u32; host.edge_index_space()];
    let mut dil = 0u32;
    for i in 0..routes.len() {
        dil = dil.max(routes.dilation(i));
        for w in routes.route(i).windows(2) {
            let bit = (w[0] ^ w[1]).trailing_zeros();
            counts[host.edge_index(w[0], bit)] += 1;
        }
    }
    (dil, counts.iter().copied().max().unwrap_or(0))
}

fn finish_metrics(e: &Embedding, dilation: u32, congestion: u32) -> Metrics {
    let host = e.host();
    let guest_edge_count = e.edge_count();
    let total_len = e.routes().total_length();
    let host_edges = host.edge_count();
    Metrics {
        host_dim: host.dim(),
        guest_nodes: e.guest_nodes(),
        guest_edge_count,
        expansion: e.expansion(),
        dilation,
        avg_dilation: if guest_edge_count == 0 {
            0.0
        } else {
            total_len as f64 / guest_edge_count as f64
        },
        congestion,
        avg_congestion: if host_edges == 0 {
            0.0
        } else {
            total_len as f64 / host_edges as f64
        },
    }
}

/// Maximum dilation and congestion over the routes, sharded `parts` ways.
/// `conv` narrows the dense host-edge index to the counting type.
fn dil_cong<T>(e: &Embedding, parts: usize, conv: impl Fn(usize) -> T + Send + Sync) -> (u32, u32)
where
    T: Ord + Copy + Send,
{
    let host = e.host();
    let routes = e.routes();
    let n = routes.len();

    let gather = |lo: usize, hi: usize| -> (u32, Vec<T>) {
        let mut dil = 0u32;
        let mut steps: Vec<T> = Vec::with_capacity(routes.span_length(lo, hi));
        for i in lo..hi {
            dil = dil.max(routes.dilation(i));
            for w in routes.route(i).windows(2) {
                let bit = (w[0] ^ w[1]).trailing_zeros();
                steps.push(conv(host.edge_index(w[0], bit)));
            }
        }
        steps.sort_unstable();
        (dil, steps)
    };

    if parts <= 1 || n < 2 {
        let (dil, steps) = gather(0, n);
        return (dil, max_run_sorted(&steps));
    }

    let chunk = n.div_ceil(parts);
    let bounds: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(n)))
        .collect();
    let shards: Vec<(u32, Vec<T>)> = bounds
        .into_par_iter()
        .map(|(lo, hi)| gather(lo, hi))
        .collect();
    let dil = shards.iter().map(|s| s.0).max().unwrap_or(0);
    let lists: Vec<Vec<T>> = shards.into_iter().map(|s| s.1).collect();
    (dil, max_run_merged(&lists))
}

/// Longest run in an already-sorted slice.
fn max_run_sorted<T: Ord + Copy>(items: &[T]) -> u32 {
    let mut best = 0u32;
    let mut run = 0u32;
    let mut prev = None;
    for &x in items {
        if prev == Some(x) {
            run += 1;
        } else {
            run = 1;
            prev = Some(x);
        }
        best = best.max(run);
    }
    best
}

/// Longest run across sorted lists, k-way merged with a min-heap. The merge
/// visits elements in exactly the order a global sort would, so the result
/// equals `max_run_sorted` of the concatenated-and-sorted lists.
fn max_run_merged<T: Ord + Copy>(lists: &[Vec<T>]) -> u32 {
    let mut heap: BinaryHeap<Reverse<(T, usize)>> = lists
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.is_empty())
        .map(|(i, l)| Reverse((l[0], i)))
        .collect();
    let mut pos = vec![1usize; lists.len()];
    let mut best = 0u32;
    let mut run = 0u32;
    let mut prev = None;
    while let Some(Reverse((x, i))) = heap.pop() {
        if prev == Some(x) {
            run += 1;
        } else {
            run = 1;
            prev = Some(x);
        }
        best = best.max(run);
        let p = pos[i];
        if p < lists[i].len() {
            heap.push(Reverse((lists[i][p], i)));
            pos[i] = p + 1;
        }
    }
    best
}

/// Load-factor (Definition 5): the maximum number of guest nodes mapped to
/// one host node. For one-to-one maps this is 1 (or 0 for an empty map).
pub fn load_factor(map: &[u64], host: Hypercube) -> u32 {
    debug_assert!(map.iter().all(|&a| host.contains(a)));
    let _ = host;
    let mut sorted: Vec<u64> = map.to_vec();
    sorted.sort_unstable();
    max_run_sorted(&sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteSet;

    fn ring4_in_q2() -> Embedding {
        // 4-ring onto all of Q2 via the cyclic Gray code.
        let map = vec![0b00, 0b01, 0b11, 0b10];
        let edges = vec![(0u32, 1u32), (1, 2), (2, 3), (0, 3)];
        let mut rs = RouteSet::new();
        rs.push(&[0b00, 0b01]);
        rs.push(&[0b01, 0b11]);
        rs.push(&[0b11, 0b10]);
        rs.push(&[0b00, 0b10]);
        Embedding::new(4, edges, Hypercube::new(2), map, rs)
    }

    #[test]
    fn perfect_embedding_metrics() {
        let e = ring4_in_q2();
        e.verify().unwrap();
        let m = e.metrics();
        assert_eq!(m.dilation, 1);
        assert_eq!(m.congestion, 1);
        assert_eq!(m.expansion, 1.0);
        assert_eq!(m.avg_dilation, 1.0);
        assert_eq!(m.avg_congestion, 1.0);
        assert!(m.is_minimal_expansion());
    }

    #[test]
    fn dilated_route_counts() {
        // Path 0-1 mapped to opposite corners of Q2 with a length-2 route.
        let mut rs = RouteSet::new();
        rs.push(&[0b00, 0b01, 0b11]);
        let e = Embedding::new(2, vec![(0, 1)], Hypercube::new(2), vec![0b00, 0b11], rs);
        e.verify().unwrap();
        let m = e.metrics();
        assert_eq!(m.dilation, 2);
        assert_eq!(m.avg_dilation, 2.0);
        assert_eq!(m.congestion, 1);
        assert_eq!(m.expansion, 2.0);
        assert!(!m.is_minimal_expansion());
    }

    #[test]
    fn congestion_counts_overlaps() {
        // Two guest edges routed across the same cube edge 00-01.
        let mut rs = RouteSet::new();
        rs.push(&[0b00, 0b01]);
        rs.push(&[0b10, 0b00, 0b01, 0b11]);
        let e = Embedding::new(
            4,
            vec![(0, 1), (2, 3)],
            Hypercube::new(2),
            vec![0b00, 0b01, 0b10, 0b11],
            rs,
        );
        e.verify().unwrap();
        let m = e.metrics();
        assert_eq!(m.congestion, 2);
        assert_eq!(m.dilation, 3);
    }

    #[test]
    fn zero_edge_guest() {
        let e = Embedding::new(1, vec![], Hypercube::new(0), vec![0], RouteSet::new());
        for m in [metrics_seq(&e), metrics_par(&e)] {
            assert_eq!(m.dilation, 0);
            assert_eq!(m.congestion, 0);
            assert_eq!(m.avg_dilation, 0.0);
            assert_eq!(m.avg_congestion, 0.0);
        }
    }

    #[test]
    fn par_agrees_with_seq_on_small_fixture() {
        let e = ring4_in_q2();
        assert_eq!(metrics_seq(&e), metrics_par(&e));
    }

    #[test]
    fn merged_run_equals_global_sort() {
        let lists = vec![vec![1u32, 3, 3, 9], vec![], vec![2, 3, 3, 3], vec![3]];
        let mut flat: Vec<u32> = lists.iter().flatten().copied().collect();
        flat.sort_unstable();
        assert_eq!(max_run_merged(&lists), max_run_sorted(&flat));
        assert_eq!(max_run_merged(&lists), 6); // six 3s across the lists
        assert_eq!(max_run_merged::<u32>(&[]), 0);
    }

    #[test]
    fn load_factor_counts_max_multiplicity() {
        let host = Hypercube::new(2);
        assert_eq!(load_factor(&[0, 1, 2, 3], host), 1);
        assert_eq!(load_factor(&[0, 1, 1, 3], host), 2);
        assert_eq!(load_factor(&[2, 2, 2, 2], host), 4);
        assert_eq!(load_factor(&[], host), 0);
    }
}
