//! Expansion, dilation, congestion, and their averages (Definitions 1–3),
//! plus the load-factor of §7 for many-to-one maps.

use crate::map::Embedding;
use cubemesh_topology::Hypercube;

/// All figures of merit of an embedding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metrics {
    /// Host cube dimension `n`.
    pub host_dim: u32,
    /// `|V(G)|`.
    pub guest_nodes: usize,
    /// `|E(G)|`.
    pub guest_edge_count: usize,
    /// `|V(H)| / |V(G)|`.
    pub expansion: f64,
    /// `max_e |φ(e)|`.
    pub dilation: u32,
    /// `Σ_e |φ(e)| / |E(G)|`.
    pub avg_dilation: f64,
    /// `max_{e'∈E(H)} cong(e')`.
    pub congestion: u32,
    /// `Σ_{e'∈E(H)} cong(e') / |E(H)| = Σ_e |φ(e)| / |E(H)|`.
    pub avg_congestion: f64,
}

impl Metrics {
    /// `true` if the embedding is into the minimal cube.
    pub fn is_minimal_expansion(&self) -> bool {
        let minimal = cubemesh_topology::cube_dim(self.guest_nodes as u64);
        self.host_dim == minimal
    }
}

/// Compute all metrics of an embedding.
///
/// Congestion is computed by sorting the dense edge indices of every route
/// step and counting runs — O(L log L) in the total route length L, with no
/// per-host-edge allocation, so it scales to guests with millions of edges
/// in cubes far too large to materialize.
pub fn metrics(e: &Embedding) -> Metrics {
    let host = e.host();
    let routes = e.routes();
    let guest_edge_count = e.guest_edges().len();

    let mut dilation = 0u32;
    let total_len = routes.total_length();
    let mut steps: Vec<u64> = Vec::with_capacity(total_len as usize);
    for i in 0..routes.len() {
        dilation = dilation.max(routes.dilation(i));
        let r = routes.route(i);
        for w in r.windows(2) {
            let bit = (w[0] ^ w[1]).trailing_zeros();
            steps.push(host.edge_index(w[0], bit) as u64);
        }
    }
    let congestion = max_run_length(&mut steps);

    let host_edges = host.edge_count();
    Metrics {
        host_dim: host.dim(),
        guest_nodes: e.guest_nodes(),
        guest_edge_count,
        expansion: e.expansion(),
        dilation,
        avg_dilation: if guest_edge_count == 0 {
            0.0
        } else {
            total_len as f64 / guest_edge_count as f64
        },
        congestion,
        avg_congestion: if host_edges == 0 {
            0.0
        } else {
            total_len as f64 / host_edges as f64
        },
    }
}

/// Longest run in the multiset `items` (sorted in place).
fn max_run_length(items: &mut [u64]) -> u32 {
    items.sort_unstable();
    let mut best = 0u32;
    let mut run = 0u32;
    let mut prev = None;
    for &x in items.iter() {
        if prev == Some(x) {
            run += 1;
        } else {
            run = 1;
            prev = Some(x);
        }
        best = best.max(run);
    }
    best
}

/// Load-factor (Definition 5): the maximum number of guest nodes mapped to
/// one host node. For one-to-one maps this is 1 (or 0 for an empty map).
pub fn load_factor(map: &[u64], host: Hypercube) -> u32 {
    debug_assert!(map.iter().all(|&a| host.contains(a)));
    let _ = host;
    let mut sorted: Vec<u64> = map.to_vec();
    max_run_length(&mut sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteSet;

    fn ring4_in_q2() -> Embedding {
        // 4-ring onto all of Q2 via the cyclic Gray code.
        let map = vec![0b00, 0b01, 0b11, 0b10];
        let edges = vec![(0u32, 1u32), (1, 2), (2, 3), (0, 3)];
        let mut rs = RouteSet::new();
        rs.push(&[0b00, 0b01]);
        rs.push(&[0b01, 0b11]);
        rs.push(&[0b11, 0b10]);
        rs.push(&[0b00, 0b10]);
        Embedding::new(4, edges, Hypercube::new(2), map, rs)
    }

    #[test]
    fn perfect_embedding_metrics() {
        let e = ring4_in_q2();
        e.verify().unwrap();
        let m = e.metrics();
        assert_eq!(m.dilation, 1);
        assert_eq!(m.congestion, 1);
        assert_eq!(m.expansion, 1.0);
        assert_eq!(m.avg_dilation, 1.0);
        assert_eq!(m.avg_congestion, 1.0);
        assert!(m.is_minimal_expansion());
    }

    #[test]
    fn dilated_route_counts() {
        // Path 0-1 mapped to opposite corners of Q2 with a length-2 route.
        let mut rs = RouteSet::new();
        rs.push(&[0b00, 0b01, 0b11]);
        let e = Embedding::new(2, vec![(0, 1)], Hypercube::new(2), vec![0b00, 0b11], rs);
        e.verify().unwrap();
        let m = e.metrics();
        assert_eq!(m.dilation, 2);
        assert_eq!(m.avg_dilation, 2.0);
        assert_eq!(m.congestion, 1);
        assert_eq!(m.expansion, 2.0);
        assert!(!m.is_minimal_expansion());
    }

    #[test]
    fn congestion_counts_overlaps() {
        // Two guest edges routed across the same cube edge 00-01.
        let mut rs = RouteSet::new();
        rs.push(&[0b00, 0b01]);
        rs.push(&[0b10, 0b00, 0b01, 0b11]);
        let e = Embedding::new(
            4,
            vec![(0, 1), (2, 3)],
            Hypercube::new(2),
            vec![0b00, 0b01, 0b10, 0b11],
            rs,
        );
        e.verify().unwrap();
        let m = e.metrics();
        assert_eq!(m.congestion, 2);
        assert_eq!(m.dilation, 3);
    }

    #[test]
    fn zero_edge_guest() {
        let e = Embedding::new(1, vec![], Hypercube::new(0), vec![0], RouteSet::new());
        let m = e.metrics();
        assert_eq!(m.dilation, 0);
        assert_eq!(m.congestion, 0);
        assert_eq!(m.avg_dilation, 0.0);
        assert_eq!(m.avg_congestion, 0.0);
    }

    #[test]
    fn load_factor_counts_max_multiplicity() {
        let host = Hypercube::new(2);
        assert_eq!(load_factor(&[0, 1, 2, 3], host), 1);
        assert_eq!(load_factor(&[0, 1, 1, 3], host), 2);
        assert_eq!(load_factor(&[2, 2, 2, 2], host), 4);
        assert_eq!(load_factor(&[], host), 0);
    }
}
