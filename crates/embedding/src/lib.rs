//! Embedding representation, validation, metrics, and routing.
//!
//! An [`Embedding`] is the object the whole reproduction revolves around
//! (Definitions 1–3 of the paper): a one-to-one map from guest-graph nodes
//! to Boolean-cube addresses, plus an explicit *route* (path in the cube)
//! for every guest edge. All figures of merit are computed from it:
//!
//! * **expansion** `|V(H)| / |V(G)|` — [`Metrics::expansion`],
//! * **dilation** — max route length — [`Metrics::dilation`],
//! * **congestion** — max number of routes crossing one cube edge —
//!   [`Metrics::congestion`],
//! * the **average** dilation and congestion of §2.
//!
//! Routes are first-class because the paper's congestion results depend on
//! *which* shortest paths are chosen: the product construction of Theorem 3
//! inherits the component embeddings' routes, and the direct embeddings
//! achieve congestion 2 only under a specific route assignment. The
//! [`router`] module provides canonical and congestion-balanced route
//! generation for maps built without explicit routes.

pub mod builders;
pub mod map;
pub mod metrics;
pub mod portable;
pub mod route;
pub mod router;
pub mod verify;

pub use builders::{
    gray_mesh_embedding, mesh_embedding_from_fn, mesh_embedding_with_router, MeshEdgeView,
};
pub use map::{Embedding, GuestEdges};
pub use metrics::{load_factor, Metrics};
pub use route::RouteSet;
pub use router::RouteStrategy;
pub use verify::{verify_many_to_one, VerifyError};
