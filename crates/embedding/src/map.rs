//! The [`Embedding`] type: a guest graph, a host cube, a node map, routes.

use crate::builders::{MeshEdgeIter, MeshEdgeView};
use crate::route::RouteSet;
use crate::verify::{self, VerifyError};
use cubemesh_topology::{Hypercube, Shape};
use std::ops::Range;

/// The guest graph's edge set: either a materialized list (irregular
/// guests — tori, contracted graphs, test fixtures) or an implicit
/// [`MeshEdgeView`] that computes the canonical mesh enumeration from the
/// shape on demand. Edge *indices* are identical either way, so routes
/// line up across both representations.
#[derive(Clone, Debug)]
pub enum GuestEdges {
    /// Materialized endpoint pairs, in whatever order the builder chose.
    Explicit(Vec<(u32, u32)>),
    /// The canonical mesh enumeration, derived from the shape on the fly.
    Mesh(MeshEdgeView),
}

impl GuestEdges {
    /// Number of guest edges.
    #[inline]
    pub fn count(&self) -> usize {
        match self {
            GuestEdges::Explicit(v) => v.len(),
            GuestEdges::Mesh(view) => view.edge_count(),
        }
    }

    /// Iterate every edge as `(u, v)` endpoint indices, in edge-id order.
    pub fn iter(&self) -> GuestEdgeIter<'_> {
        match self {
            GuestEdges::Explicit(v) => GuestEdgeIter::Explicit(v.iter()),
            GuestEdges::Mesh(view) => GuestEdgeIter::Mesh(view.iter()),
        }
    }

    /// The guest mesh shape, when the edges are an implicit mesh view.
    pub fn mesh_shape(&self) -> Option<&Shape> {
        match self {
            GuestEdges::Explicit(_) => None,
            GuestEdges::Mesh(view) => Some(view.shape()),
        }
    }

    /// Materialize the edge list (allocates; prefer [`GuestEdges::iter`]
    /// on hot paths).
    pub fn to_vec(&self) -> Vec<(u32, u32)> {
        self.iter().collect()
    }

    /// Split the edge space into at most `parts` contiguous chunks, each
    /// a `(first_edge_id, iterator)` pair covering a dense id range —
    /// what parallel metrics/verify shard over. Mesh views split at node
    /// boundaries (edge ids stay dense via the closed-form
    /// [`MeshEdgeView::edges_before_node`]); explicit lists split by
    /// index.
    pub fn chunks(&self, parts: usize) -> Vec<(usize, GuestEdgeIter<'_>)> {
        let parts = parts.max(1);
        match self {
            GuestEdges::Explicit(v) => {
                if v.is_empty() {
                    return vec![(0, GuestEdgeIter::Explicit(v.iter()))];
                }
                let chunk = v.len().div_ceil(parts);
                (0..v.len())
                    .step_by(chunk)
                    .map(|lo| {
                        let hi = (lo + chunk).min(v.len());
                        (lo, GuestEdgeIter::Explicit(v[lo..hi].iter()))
                    })
                    .collect()
            }
            GuestEdges::Mesh(view) => {
                let nodes = view.shape().nodes();
                let chunk = nodes.div_ceil(parts).max(1);
                let mut out = Vec::new();
                let mut lo = 0usize;
                while lo < nodes {
                    let hi = (lo + chunk).min(nodes);
                    out.push((
                        view.edges_before_node(lo),
                        GuestEdgeIter::Mesh(view.iter_nodes(lo..hi)),
                    ));
                    lo = hi;
                }
                if out.is_empty() {
                    out.push((0, GuestEdgeIter::Mesh(view.iter_nodes(0..nodes))));
                }
                out
            }
        }
    }

    /// Iterate the edges of a node sub-range for mesh guests; `None` for
    /// explicit guests (whose edges have no node-locality guarantee).
    pub fn mesh_iter_nodes(&self, nodes: Range<usize>) -> Option<MeshEdgeIter<'_>> {
        match self {
            GuestEdges::Explicit(_) => None,
            GuestEdges::Mesh(view) => Some(view.iter_nodes(nodes)),
        }
    }
}

/// Iterator over a [`GuestEdges`] (or a chunk of one).
pub enum GuestEdgeIter<'a> {
    /// Over a materialized slice.
    Explicit(std::slice::Iter<'a, (u32, u32)>),
    /// Over an implicit mesh view.
    Mesh(MeshEdgeIter<'a>),
}

impl Iterator for GuestEdgeIter<'_> {
    type Item = (u32, u32);

    #[inline]
    fn next(&mut self) -> Option<(u32, u32)> {
        match self {
            GuestEdgeIter::Explicit(it) => it.next().copied(),
            GuestEdgeIter::Mesh(it) => it.next(),
        }
    }
}

/// A one-to-one embedding `φ : G → Q_n` with explicit edge routes
/// (Definition 1 of the paper).
///
/// The guest graph is stored as its node count plus a [`GuestEdges`]:
/// mesh guests carry their *shape* (edges computed on demand in the
/// canonical [`cubemesh_topology::Mesh::edges`] order), irregular guests
/// a materialized list. Route indices line up with edge ids across
/// crates either way.
#[derive(Clone, Debug)]
pub struct Embedding {
    guest_nodes: usize,
    guest_edges: GuestEdges,
    host: Hypercube,
    map: Vec<u64>,
    routes: RouteSet,
}

impl Embedding {
    /// Assemble an embedding from parts with a materialized edge list.
    /// Cheap structural checks only (lengths agree); semantic validation
    /// is [`Embedding::verify`].
    ///
    /// # Panics
    /// Panics if `map.len() != guest_nodes` or `routes.len()` differs from
    /// the edge count.
    pub fn new(
        guest_nodes: usize,
        guest_edges: Vec<(u32, u32)>,
        host: Hypercube,
        map: Vec<u64>,
        routes: RouteSet,
    ) -> Self {
        Embedding::from_guest(
            guest_nodes,
            GuestEdges::Explicit(guest_edges),
            host,
            map,
            routes,
        )
    }

    /// Assemble a mesh embedding whose guest edges are the implicit
    /// canonical enumeration of `shape` — no edge list is materialized.
    ///
    /// # Panics
    /// Panics if `map.len() != shape.nodes()` or `routes.len()` differs
    /// from the mesh edge count.
    pub fn new_mesh(shape: &Shape, host: Hypercube, map: Vec<u64>, routes: RouteSet) -> Self {
        Embedding::from_guest(
            shape.nodes(),
            GuestEdges::Mesh(MeshEdgeView::new(shape)),
            host,
            map,
            routes,
        )
    }

    /// Assemble an embedding from parts with any guest representation.
    ///
    /// # Panics
    /// Panics if `map.len() != guest_nodes` or `routes.len()` differs from
    /// the edge count.
    pub fn from_guest(
        guest_nodes: usize,
        guest_edges: GuestEdges,
        host: Hypercube,
        map: Vec<u64>,
        routes: RouteSet,
    ) -> Self {
        assert_eq!(map.len(), guest_nodes, "map length != node count");
        assert_eq!(
            routes.len(),
            guest_edges.count(),
            "route count != edge count"
        );
        Embedding {
            guest_nodes,
            guest_edges,
            host,
            map,
            routes,
        }
    }

    /// Number of guest nodes.
    #[inline]
    pub fn guest_nodes(&self) -> usize {
        self.guest_nodes
    }

    /// The guest edge set (implicit or materialized).
    #[inline]
    pub fn edges(&self) -> &GuestEdges {
        &self.guest_edges
    }

    /// Number of guest edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.guest_edges.count()
    }

    /// Iterate guest edges in edge-id order (each edge once; the
    /// canonical enumeration order of whichever builder produced this
    /// embedding).
    pub fn edges_iter(&self) -> GuestEdgeIter<'_> {
        self.guest_edges.iter()
    }

    /// Materialize the guest edge list (allocates; prefer
    /// [`Embedding::edges_iter`] on hot paths).
    pub fn edges_vec(&self) -> Vec<(u32, u32)> {
        self.guest_edges.to_vec()
    }

    /// The guest mesh shape, when the guest is an implicit mesh.
    pub fn guest_shape(&self) -> Option<&Shape> {
        self.guest_edges.mesh_shape()
    }

    /// The host cube.
    #[inline]
    pub fn host(&self) -> Hypercube {
        self.host
    }

    /// The node map `φ`.
    #[inline]
    pub fn map(&self) -> &[u64] {
        &self.map
    }

    /// Image of guest node `v`.
    #[inline]
    pub fn image(&self, v: usize) -> u64 {
        self.map[v]
    }

    /// The routes, parallel to the guest edge enumeration.
    #[inline]
    pub fn routes(&self) -> &RouteSet {
        &self.routes
    }

    /// Expansion `|V(H)| / |V(G)|` (Definition 1).
    #[inline]
    pub fn expansion(&self) -> f64 {
        self.host.nodes() as f64 / self.guest_nodes as f64
    }

    /// `true` if the host is the *minimal* cube for this guest
    /// (`n = ⌈log₂ |V(G)|⌉`), i.e. the embedding has minimal expansion.
    #[inline]
    pub fn is_minimal_expansion(&self) -> bool {
        self.host.dim() == cubemesh_topology::cube_dim(self.guest_nodes as u64)
    }

    /// Full semantic validation: injectivity, address ranges, and that every
    /// route is a path in the cube connecting the images of its edge's
    /// endpoints.
    pub fn verify(&self) -> Result<(), VerifyError> {
        verify::verify_embedding(self)
    }

    /// Compute all metrics (never fails; call [`Self::verify`] first if the
    /// embedding comes from untrusted construction code).
    pub fn metrics(&self) -> crate::metrics::Metrics {
        crate::metrics::metrics(self)
    }

    /// Replace the routes (e.g. re-route with a different strategy). The new
    /// route set must have one route per guest edge.
    pub fn set_routes(&mut self, routes: RouteSet) {
        assert_eq!(routes.len(), self.guest_edges.count());
        self.routes = routes;
    }

    /// Re-declare the guest as the mesh of `shape`, keeping map and
    /// routes verbatim. The new shape must have the same node count and
    /// the same edge count as the current guest — which is exactly the
    /// case for rank lifts (adding/removing length-1 axes changes neither
    /// linear indices nor the canonical edge enumeration).
    ///
    /// # Panics
    /// Panics if node or edge counts disagree.
    pub fn with_mesh_guest(self, shape: &Shape) -> Embedding {
        let view = MeshEdgeView::new(shape);
        assert_eq!(
            self.guest_nodes,
            shape.nodes(),
            "mesh guest must preserve nodes"
        );
        assert_eq!(
            self.guest_edges.count(),
            view.edge_count(),
            "mesh guest must preserve edges"
        );
        Embedding {
            guest_edges: GuestEdges::Mesh(view),
            ..self
        }
    }

    /// Decompose into parts (used by composition code in `cubemesh-core`).
    pub fn into_parts(self) -> (usize, GuestEdges, Hypercube, Vec<u64>, RouteSet) {
        (
            self.guest_nodes,
            self.guest_edges,
            self.host,
            self.map,
            self.routes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Embedding {
        // Path 0-1-2 into Q_2: 00, 01, 11.
        let mut routes = RouteSet::new();
        routes.push(&[0b00, 0b01]);
        routes.push(&[0b01, 0b11]);
        Embedding::new(
            3,
            vec![(0, 1), (1, 2)],
            Hypercube::new(2),
            vec![0b00, 0b01, 0b11],
            routes,
        )
    }

    #[test]
    fn accessors() {
        let e = tiny();
        assert_eq!(e.guest_nodes(), 3);
        assert_eq!(e.image(2), 0b11);
        assert_eq!(e.expansion(), 4.0 / 3.0);
        assert!(e.is_minimal_expansion());
        assert!(e.verify().is_ok());
        assert_eq!(e.edge_count(), 2);
        assert_eq!(e.edges_vec(), vec![(0, 1), (1, 2)]);
        assert!(e.guest_shape().is_none());
    }

    #[test]
    fn mesh_guest_matches_explicit() {
        let shape = Shape::new(&[2, 3]);
        let mesh = cubemesh_topology::Mesh::new(shape.clone());
        let explicit = crate::builders::mesh_edge_list(&mesh);
        let mut routes = RouteSet::new();
        let map: Vec<u64> = (0..6).collect();
        for &(u, v) in &explicit {
            routes.push_pair(map[u as usize], map[v as usize]);
        }
        let e = Embedding::new_mesh(&shape, Hypercube::new(3), map, routes);
        assert_eq!(e.edge_count(), explicit.len());
        assert_eq!(e.edges_vec(), explicit);
        assert_eq!(e.guest_shape(), Some(&shape));
    }

    #[test]
    fn chunked_edges_cover_everything_in_order() {
        let shape = Shape::new(&[3, 4]);
        let view = MeshEdgeView::new(&shape);
        let guest = GuestEdges::Mesh(view);
        for parts in [1, 2, 3, 7, 100] {
            let mut ids = Vec::new();
            let mut all = Vec::new();
            for (first_id, it) in guest.chunks(parts) {
                ids.push(first_id);
                all.extend(it);
            }
            assert_eq!(all, guest.to_vec(), "parts {}", parts);
            assert!(ids.windows(2).all(|w| w[0] <= w[1]));
        }
        let explicit = GuestEdges::Explicit(guest.to_vec());
        for parts in [1, 2, 5] {
            let mut all = Vec::new();
            for (_, it) in explicit.chunks(parts) {
                all.extend(it);
            }
            assert_eq!(all, guest.to_vec());
        }
    }

    #[test]
    fn with_mesh_guest_relabels() {
        let shape2 = Shape::new(&[2, 3]);
        let e = crate::builders::gray_mesh_embedding(&shape2);
        let shape3 = Shape::new(&[2, 1, 3]);
        let lifted = e.clone().with_mesh_guest(&shape3);
        assert_eq!(lifted.edges_vec(), e.edges_vec());
        assert_eq!(lifted.guest_shape(), Some(&shape3));
        lifted.verify().unwrap();
    }

    #[test]
    #[should_panic]
    fn mismatched_routes_rejected() {
        Embedding::new(
            2,
            vec![(0, 1)],
            Hypercube::new(1),
            vec![0, 1],
            RouteSet::new(),
        );
    }
}
