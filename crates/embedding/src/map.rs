//! The [`Embedding`] type: a guest graph, a host cube, a node map, routes.

use crate::route::RouteSet;
use crate::verify::{self, VerifyError};
use cubemesh_topology::Hypercube;

/// A one-to-one embedding `φ : G → Q_n` with explicit edge routes
/// (Definition 1 of the paper).
///
/// The guest graph is stored as its node count plus an edge list; mesh and
/// torus guests use the canonical edge enumeration order of
/// [`cubemesh_topology::Mesh::edges`] / [`cubemesh_topology::Torus::edges`]
/// so that route indices line up across crates.
#[derive(Clone, Debug)]
pub struct Embedding {
    guest_nodes: usize,
    guest_edges: Vec<(u32, u32)>,
    host: Hypercube,
    map: Vec<u64>,
    routes: RouteSet,
}

impl Embedding {
    /// Assemble an embedding from parts. Cheap structural checks only
    /// (lengths agree); semantic validation is [`Embedding::verify`].
    ///
    /// # Panics
    /// Panics if `map.len() != guest_nodes` or `routes.len()` differs from
    /// the edge count.
    pub fn new(
        guest_nodes: usize,
        guest_edges: Vec<(u32, u32)>,
        host: Hypercube,
        map: Vec<u64>,
        routes: RouteSet,
    ) -> Self {
        assert_eq!(map.len(), guest_nodes, "map length != node count");
        assert_eq!(routes.len(), guest_edges.len(), "route count != edge count");
        Embedding {
            guest_nodes,
            guest_edges,
            host,
            map,
            routes,
        }
    }

    /// Number of guest nodes.
    #[inline]
    pub fn guest_nodes(&self) -> usize {
        self.guest_nodes
    }

    /// Guest edge list (each edge once; order is the canonical enumeration
    /// order of whichever builder produced this embedding).
    #[inline]
    pub fn guest_edges(&self) -> &[(u32, u32)] {
        &self.guest_edges
    }

    /// The host cube.
    #[inline]
    pub fn host(&self) -> Hypercube {
        self.host
    }

    /// The node map `φ`.
    #[inline]
    pub fn map(&self) -> &[u64] {
        &self.map
    }

    /// Image of guest node `v`.
    #[inline]
    pub fn image(&self, v: usize) -> u64 {
        self.map[v]
    }

    /// The routes, parallel to [`Self::guest_edges`].
    #[inline]
    pub fn routes(&self) -> &RouteSet {
        &self.routes
    }

    /// Expansion `|V(H)| / |V(G)|` (Definition 1).
    #[inline]
    pub fn expansion(&self) -> f64 {
        self.host.nodes() as f64 / self.guest_nodes as f64
    }

    /// `true` if the host is the *minimal* cube for this guest
    /// (`n = ⌈log₂ |V(G)|⌉`), i.e. the embedding has minimal expansion.
    #[inline]
    pub fn is_minimal_expansion(&self) -> bool {
        self.host.dim() == cubemesh_topology::cube_dim(self.guest_nodes as u64)
    }

    /// Full semantic validation: injectivity, address ranges, and that every
    /// route is a path in the cube connecting the images of its edge's
    /// endpoints.
    pub fn verify(&self) -> Result<(), VerifyError> {
        verify::verify_embedding(self)
    }

    /// Compute all metrics (never fails; call [`Self::verify`] first if the
    /// embedding comes from untrusted construction code).
    pub fn metrics(&self) -> crate::metrics::Metrics {
        crate::metrics::metrics(self)
    }

    /// Replace the routes (e.g. re-route with a different strategy). The new
    /// route set must have one route per guest edge.
    pub fn set_routes(&mut self, routes: RouteSet) {
        assert_eq!(routes.len(), self.guest_edges.len());
        self.routes = routes;
    }

    /// Decompose into parts (used by composition code in `cubemesh-core`).
    pub fn into_parts(self) -> (usize, Vec<(u32, u32)>, Hypercube, Vec<u64>, RouteSet) {
        (
            self.guest_nodes,
            self.guest_edges,
            self.host,
            self.map,
            self.routes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Embedding {
        // Path 0-1-2 into Q_2: 00, 01, 11.
        let mut routes = RouteSet::new();
        routes.push(&[0b00, 0b01]);
        routes.push(&[0b01, 0b11]);
        Embedding::new(
            3,
            vec![(0, 1), (1, 2)],
            Hypercube::new(2),
            vec![0b00, 0b01, 0b11],
            routes,
        )
    }

    #[test]
    fn accessors() {
        let e = tiny();
        assert_eq!(e.guest_nodes(), 3);
        assert_eq!(e.image(2), 0b11);
        assert_eq!(e.expansion(), 4.0 / 3.0);
        assert!(e.is_minimal_expansion());
        assert!(e.verify().is_ok());
    }

    #[test]
    #[should_panic]
    fn mismatched_routes_rejected() {
        Embedding::new(
            2,
            vec![(0, 1)],
            Hypercube::new(1),
            vec![0, 1],
            RouteSet::new(),
        );
    }
}
