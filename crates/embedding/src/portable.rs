//! A plain-text interchange format for embeddings.
//!
//! Planning a large embedding can be expensive; downstream tools (or a
//! machine's loader) only need the result. The format is line-oriented,
//! versioned, and dependency-free:
//!
//! ```text
//! cubemesh-embedding v1
//! guest_nodes 15
//! host_dim 4
//! map 0 1 3 2 …
//! edges 0 1 0 5 1 2 …
//! route 0 1
//! route 0 4 5
//! …
//! end
//! ```
//!
//! Addresses and node ids are decimal; routes appear in guest-edge order.

use crate::map::Embedding;
use crate::route::RouteSet;
use cubemesh_topology::Hypercube;
use std::io::{self, BufRead, Write};

const MAGIC: &str = "cubemesh-embedding v1";

/// Serialize an embedding.
pub fn write_embedding(emb: &Embedding, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "{}", MAGIC)?;
    writeln!(w, "guest_nodes {}", emb.guest_nodes())?;
    writeln!(w, "host_dim {}", emb.host().dim())?;
    write!(w, "map")?;
    for &a in emb.map() {
        write!(w, " {}", a)?;
    }
    writeln!(w)?;
    write!(w, "edges")?;
    for &(u, v) in emb.guest_edges() {
        write!(w, " {} {}", u, v)?;
    }
    writeln!(w)?;
    for r in emb.routes().iter() {
        write!(w, "route")?;
        for &a in r {
            write!(w, " {}", a)?;
        }
        writeln!(w)?;
    }
    writeln!(w, "end")
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Deserialize an embedding written by [`write_embedding`].
///
/// Structural parsing only; call [`Embedding::verify`] afterwards if the
/// source is untrusted.
pub fn read_embedding(r: &mut impl BufRead) -> io::Result<Embedding> {
    let mut lines = r.lines();
    let mut next_line =
        || -> io::Result<String> { lines.next().ok_or_else(|| bad("unexpected end of file"))? };

    if next_line()?.trim() != MAGIC {
        return Err(bad("not a cubemesh-embedding v1 file"));
    }
    let nodes_line = next_line()?;
    let guest_nodes: usize = nodes_line
        .strip_prefix("guest_nodes ")
        .ok_or_else(|| bad("missing guest_nodes"))?
        .trim()
        .parse()
        .map_err(|_| bad("bad guest_nodes"))?;
    let dim_line = next_line()?;
    let host_dim: u32 = dim_line
        .strip_prefix("host_dim ")
        .ok_or_else(|| bad("missing host_dim"))?
        .trim()
        .parse()
        .map_err(|_| bad("bad host_dim"))?;

    let map_line = next_line()?;
    let map: Vec<u64> = map_line
        .strip_prefix("map")
        .ok_or_else(|| bad("missing map"))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| bad("bad map entry")))
        .collect::<io::Result<_>>()?;
    if map.len() != guest_nodes {
        return Err(bad("map length mismatch"));
    }

    let edges_line = next_line()?;
    let flat: Vec<u32> = edges_line
        .strip_prefix("edges")
        .ok_or_else(|| bad("missing edges"))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| bad("bad edge entry")))
        .collect::<io::Result<_>>()?;
    if !flat.len().is_multiple_of(2) {
        return Err(bad("odd edge list"));
    }
    let edges: Vec<(u32, u32)> = flat.chunks(2).map(|c| (c[0], c[1])).collect();

    let mut routes = RouteSet::with_capacity(edges.len(), edges.len() * 2);
    loop {
        let line = next_line()?;
        let line = line.trim();
        if line == "end" {
            break;
        }
        let body = line
            .strip_prefix("route")
            .ok_or_else(|| bad("expected route"))?;
        let path: Vec<u64> = body
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| bad("bad route entry")))
            .collect::<io::Result<_>>()?;
        if path.is_empty() {
            return Err(bad("empty route"));
        }
        routes.push(&path);
    }
    if routes.len() != edges.len() {
        return Err(bad("route count mismatch"));
    }
    Ok(Embedding::new(
        guest_nodes,
        edges,
        Hypercube::new(host_dim),
        map,
        routes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::gray_mesh_embedding;
    use cubemesh_topology::Shape;

    #[test]
    fn roundtrip() {
        let emb = gray_mesh_embedding(&Shape::new(&[3, 5]));
        let mut buf = Vec::new();
        write_embedding(&emb, &mut buf).unwrap();
        let back = read_embedding(&mut buf.as_slice()).unwrap();
        back.verify().unwrap();
        assert_eq!(back.map(), emb.map());
        assert_eq!(back.guest_edges(), emb.guest_edges());
        assert_eq!(back.host().dim(), emb.host().dim());
        assert_eq!(back.metrics(), emb.metrics());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_embedding(&mut "nope".as_bytes()).is_err());
        let mut buf = Vec::new();
        write_embedding(&gray_mesh_embedding(&Shape::new(&[2, 2])), &mut buf).unwrap();
        // Truncate: drop the trailing "end".
        let txt = String::from_utf8(buf).unwrap();
        let cut = txt.rsplit_once("end").unwrap().0;
        assert!(read_embedding(&mut cut.as_bytes()).is_err());
    }

    #[test]
    fn rejects_length_mismatches() {
        let bad_input = "cubemesh-embedding v1\nguest_nodes 3\nhost_dim 2\nmap 0 1\nedges\nend\n";
        assert!(read_embedding(&mut bad_input.as_bytes()).is_err());
    }
}
