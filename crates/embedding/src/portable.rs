//! A plain-text interchange format for embeddings.
//!
//! Planning a large embedding can be expensive; downstream tools (or a
//! machine's loader) only need the result. The format is line-oriented,
//! versioned, and dependency-free:
//!
//! ```text
//! cubemesh-embedding v1
//! guest_nodes 15
//! host_dim 4
//! map 0 1 3 2 …
//! edges 0 1 0 5 1 2 …
//! route 0 1
//! route 0 4 5
//! …
//! end
//! ```
//!
//! Addresses and node ids are decimal; routes appear in guest-edge order.
//! The writer formats into a reusable in-memory buffer and hands the sink
//! large blocks, so serializing a million-route embedding does not make a
//! million tiny `write` calls; the emitted bytes are identical to the
//! one-`write!`-per-number formulation (asserted by test).

use crate::map::Embedding;
use crate::route::RouteSet;
use cubemesh_topology::Hypercube;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

const MAGIC: &str = "cubemesh-embedding v1";

/// Flush the format buffer to the sink once it grows past this many bytes.
const FLUSH_AT: usize = 256 * 1024;

/// Serialize an embedding.
pub fn write_embedding(emb: &Embedding, w: &mut impl Write) -> io::Result<()> {
    // Formatting into a String is infallible; `buf` is drained to the sink
    // in ~256 KiB blocks instead of one syscall-sized write per number.
    let mut buf = String::with_capacity(FLUSH_AT + 4096);
    let flush = |buf: &mut String, w: &mut dyn Write, force: bool| -> io::Result<()> {
        if force || buf.len() >= FLUSH_AT {
            w.write_all(buf.as_bytes())?;
            buf.clear();
        }
        Ok(())
    };

    let _ = writeln!(buf, "{}", MAGIC);
    let _ = writeln!(buf, "guest_nodes {}", emb.guest_nodes());
    let _ = writeln!(buf, "host_dim {}", emb.host().dim());
    buf.push_str("map");
    for &a in emb.map() {
        let _ = write!(buf, " {}", a);
        flush(&mut buf, w, false)?;
    }
    buf.push('\n');
    buf.push_str("edges");
    for (u, v) in emb.edges_iter() {
        let _ = write!(buf, " {} {}", u, v);
        flush(&mut buf, w, false)?;
    }
    buf.push('\n');
    for r in emb.routes().iter() {
        buf.push_str("route");
        for &a in r {
            let _ = write!(buf, " {}", a);
        }
        buf.push('\n');
        flush(&mut buf, w, false)?;
    }
    buf.push_str("end\n");
    flush(&mut buf, w, true)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Deserialize an embedding written by [`write_embedding`].
///
/// Structural parsing only; call [`Embedding::verify`] afterwards if the
/// source is untrusted. The guest always comes back with an explicit edge
/// list (the format does not record mesh shapes).
pub fn read_embedding(r: &mut impl BufRead) -> io::Result<Embedding> {
    let mut lines = r.lines();
    let mut next_line =
        || -> io::Result<String> { lines.next().ok_or_else(|| bad("unexpected end of file"))? };

    if next_line()?.trim() != MAGIC {
        return Err(bad("not a cubemesh-embedding v1 file"));
    }
    let nodes_line = next_line()?;
    let guest_nodes: usize = nodes_line
        .strip_prefix("guest_nodes ")
        .ok_or_else(|| bad("missing guest_nodes"))?
        .trim()
        .parse()
        .map_err(|_| bad("bad guest_nodes"))?;
    let dim_line = next_line()?;
    let host_dim: u32 = dim_line
        .strip_prefix("host_dim ")
        .ok_or_else(|| bad("missing host_dim"))?
        .trim()
        .parse()
        .map_err(|_| bad("bad host_dim"))?;

    let map_line = next_line()?;
    let map: Vec<u64> = map_line
        .strip_prefix("map")
        .ok_or_else(|| bad("missing map"))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| bad("bad map entry")))
        .collect::<io::Result<_>>()?;
    if map.len() != guest_nodes {
        return Err(bad("map length mismatch"));
    }

    let edges_line = next_line()?;
    let flat: Vec<u32> = edges_line
        .strip_prefix("edges")
        .ok_or_else(|| bad("missing edges"))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| bad("bad edge entry")))
        .collect::<io::Result<_>>()?;
    if !flat.len().is_multiple_of(2) {
        return Err(bad("odd edge list"));
    }
    let edges: Vec<(u32, u32)> = flat.chunks(2).map(|c| (c[0], c[1])).collect();

    let mut routes = RouteSet::with_capacity(edges.len(), edges.len() * 2);
    loop {
        let line = next_line()?;
        let line = line.trim();
        if line == "end" {
            break;
        }
        let body = line
            .strip_prefix("route")
            .ok_or_else(|| bad("expected route"))?;
        let path: Vec<u64> = body
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| bad("bad route entry")))
            .collect::<io::Result<_>>()?;
        if path.is_empty() {
            return Err(bad("empty route"));
        }
        routes.push(&path);
    }
    if routes.len() != edges.len() {
        return Err(bad("route count mismatch"));
    }
    Ok(Embedding::new(
        guest_nodes,
        edges,
        Hypercube::new(host_dim),
        map,
        routes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::gray_mesh_embedding;
    use cubemesh_topology::Shape;

    /// The pre-buffering formulation: one `write!` per number. The format
    /// contract is that [`write_embedding`] emits these exact bytes.
    fn reference_write(emb: &Embedding, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "{}", MAGIC)?;
        writeln!(w, "guest_nodes {}", emb.guest_nodes())?;
        writeln!(w, "host_dim {}", emb.host().dim())?;
        write!(w, "map")?;
        for &a in emb.map() {
            write!(w, " {}", a)?;
        }
        writeln!(w)?;
        write!(w, "edges")?;
        for (u, v) in emb.edges_iter() {
            write!(w, " {} {}", u, v)?;
        }
        writeln!(w)?;
        for r in emb.routes().iter() {
            write!(w, "route")?;
            for &a in r {
                write!(w, " {}", a)?;
            }
            writeln!(w)?;
        }
        writeln!(w, "end")
    }

    #[test]
    fn roundtrip() {
        let emb = gray_mesh_embedding(&Shape::new(&[3, 5]));
        let mut buf = Vec::new();
        write_embedding(&emb, &mut buf).unwrap();
        let back = read_embedding(&mut buf.as_slice()).unwrap();
        back.verify().unwrap();
        assert_eq!(back.map(), emb.map());
        assert_eq!(back.edges_vec(), emb.edges_vec());
        assert_eq!(back.host().dim(), emb.host().dim());
        assert_eq!(back.metrics(), emb.metrics());
    }

    #[test]
    fn buffered_writer_is_byte_identical() {
        // Large enough that the buffer flushes mid-stream several times
        // (map + edges + routes of a 64x32x4 mesh is well past 256 KiB).
        let emb = gray_mesh_embedding(&Shape::new(&[64, 32, 4]));
        let mut fast = Vec::new();
        write_embedding(&emb, &mut fast).unwrap();
        let mut slow = Vec::new();
        reference_write(&emb, &mut slow).unwrap();
        assert!(
            fast.len() > FLUSH_AT,
            "fixture too small to exercise flushing"
        );
        assert_eq!(fast, slow);
    }

    #[test]
    fn large_mesh_roundtrip_preserves_everything() {
        let emb = gray_mesh_embedding(&Shape::new(&[64, 32, 4]));
        let mut buf = Vec::new();
        write_embedding(&emb, &mut buf).unwrap();
        let back = read_embedding(&mut buf.as_slice()).unwrap();
        back.verify().unwrap();
        assert_eq!(back.map(), emb.map());
        assert_eq!(back.edges_vec(), emb.edges_vec());
        assert_eq!(back.metrics(), emb.metrics());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_embedding(&mut "nope".as_bytes()).is_err());
        let mut buf = Vec::new();
        write_embedding(&gray_mesh_embedding(&Shape::new(&[2, 2])), &mut buf).unwrap();
        // Truncate: drop the trailing "end".
        let txt = String::from_utf8(buf).unwrap();
        let cut = txt.rsplit_once("end").unwrap().0;
        assert!(read_embedding(&mut cut.as_bytes()).is_err());
    }

    #[test]
    fn rejects_length_mismatches() {
        let bad_input = "cubemesh-embedding v1\nguest_nodes 3\nhost_dim 2\nmap 0 1\nedges\nend\n";
        assert!(read_embedding(&mut bad_input.as_bytes()).is_err());
    }
}
