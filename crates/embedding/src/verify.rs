//! Semantic validation of embeddings.
//!
//! Every construction in the workspace — Gray codes, product embeddings,
//! search results, torus constructions — is checked through this module in
//! tests, so a bug in any builder surfaces as a precise [`VerifyError`].
//!
//! Route checks shard over contiguous edge-id chunks when more than one
//! rayon thread is available. Chunks are scanned in order within a worker
//! and the error from the earliest failing chunk is reported, so the
//! parallel path returns *exactly* the error the sequential scan would —
//! [`verify_many_to_one_par`] and [`verify_many_to_one_seq`] are
//! property-tested for agreement on both passing and failing embeddings.

use crate::builders::PAR_MIN_NODES;
use crate::map::Embedding;
use cubemesh_obs as obs;
use cubemesh_topology::hamming;
use rayon::prelude::*;
use std::fmt;

/// Why an embedding failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A mapped address does not fit in the host cube.
    AddressOutOfRange { node: usize, address: u64 },
    /// Two guest nodes share a host address (the map is not one-to-one).
    NotInjective {
        node_a: usize,
        node_b: usize,
        address: u64,
    },
    /// A guest edge index is out of range.
    EdgeOutOfRange { edge: usize },
    /// A route does not start at the image of its edge's first endpoint.
    RouteStartMismatch {
        edge: usize,
        expected: u64,
        found: u64,
    },
    /// A route does not end at the image of its edge's second endpoint.
    RouteEndMismatch {
        edge: usize,
        expected: u64,
        found: u64,
    },
    /// Two consecutive route nodes are not cube neighbors.
    RouteStepNotAdjacent {
        edge: usize,
        step: usize,
        from: u64,
        to: u64,
    },
    /// A route visits the same cube node twice (routes must be simple
    /// paths; Definition 2 measures dilation as the path length, which is
    /// only meaningful for simple paths).
    RouteNotSimple { edge: usize, address: u64 },
    /// A route leaves the host cube.
    RouteOutOfRange { edge: usize, address: u64 },
    /// A route has no nodes at all (even a self-mapped edge must carry
    /// the single-node path). [`RouteSet::push`](crate::RouteSet::push)
    /// already rejects empty routes, so this is defense-in-depth: the
    /// verifier does not assume the container upheld its invariant.
    RouteEmpty { edge: usize },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::AddressOutOfRange { node, address } => {
                write!(f, "node {node} maps to {address:#x}, outside the host cube")
            }
            VerifyError::NotInjective {
                node_a,
                node_b,
                address,
            } => write!(f, "nodes {node_a} and {node_b} both map to {address:#x}"),
            VerifyError::EdgeOutOfRange { edge } => {
                write!(f, "edge {edge} references a node out of range")
            }
            VerifyError::RouteStartMismatch {
                edge,
                expected,
                found,
            } => write!(
                f,
                "route {edge} starts at {found:#x}, expected {expected:#x}"
            ),
            VerifyError::RouteEndMismatch {
                edge,
                expected,
                found,
            } => write!(f, "route {edge} ends at {found:#x}, expected {expected:#x}"),
            VerifyError::RouteStepNotAdjacent {
                edge,
                step,
                from,
                to,
            } => write!(
                f,
                "route {edge} step {step}: {from:#x} -> {to:#x} is not a cube edge"
            ),
            VerifyError::RouteNotSimple { edge, address } => {
                write!(f, "route {edge} revisits {address:#x}")
            }
            VerifyError::RouteOutOfRange { edge, address } => {
                write!(f, "route {edge} leaves the cube at {address:#x}")
            }
            VerifyError::RouteEmpty { edge } => {
                write!(f, "route {edge} is empty")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Validate an embedding end to end. See [`VerifyError`] for the checks.
/// Route checks shard across rayon threads for large edge sets; the result
/// (including which error is reported) is identical to a sequential scan.
pub fn verify_embedding(e: &Embedding) -> Result<(), VerifyError> {
    check_injective(e)?;
    verify_many_to_one(e)
}

/// Single-threaded [`verify_embedding`].
pub fn verify_embedding_seq(e: &Embedding) -> Result<(), VerifyError> {
    check_injective(e)?;
    verify_many_to_one_seq(e)
}

/// Force-sharded [`verify_embedding`]; agrees exactly with
/// [`verify_embedding_seq`].
pub fn verify_embedding_par(e: &Embedding) -> Result<(), VerifyError> {
    check_injective(e)?;
    verify_many_to_one_par(e)
}

/// Injectivity, by sorting (address, node) pairs.
fn check_injective(e: &Embedding) -> Result<(), VerifyError> {
    let mut pairs: Vec<(u64, usize)> = e.map().iter().enumerate().map(|(v, &a)| (a, v)).collect();
    pairs.sort_unstable();
    for w in pairs.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(VerifyError::NotInjective {
                node_a: w[0].1,
                node_b: w[1].1,
                address: w[0].0,
            });
        }
    }
    Ok(())
}

/// The non-injective validation used for §7's many-to-one embeddings:
/// address ranges and route well-formedness only. A route for an edge
/// whose endpoints share an address is the single-node path.
pub fn verify_many_to_one(e: &Embedding) -> Result<(), VerifyError> {
    if rayon::current_num_threads() > 1 && e.edge_count() >= PAR_MIN_NODES {
        verify_many_to_one_par(e)
    } else {
        verify_many_to_one_seq(e)
    }
}

/// Single-threaded [`verify_many_to_one`].
pub fn verify_many_to_one_seq(e: &Embedding) -> Result<(), VerifyError> {
    let _span = obs::span!("verify.seq");
    check_addresses(e)?;
    check_route_range(e, 0, e.edges_iter())
}

/// Force-sharded [`verify_many_to_one`] (at least two chunks, so the merge
/// logic runs even on one core); agrees exactly with
/// [`verify_many_to_one_seq`], including which error is reported.
pub fn verify_many_to_one_par(e: &Embedding) -> Result<(), VerifyError> {
    let _span = obs::span!("verify.par");
    check_addresses(e)?;
    let parts = rayon::current_num_threads().max(2);
    obs::trace::gauge("verify.shards", parts as u64);
    let chunks = e.edges().chunks(parts);
    let results: Vec<Result<(), VerifyError>> = chunks
        .into_par_iter()
        .map(|(first_edge, edges)| check_route_range(e, first_edge, edges))
        .collect();
    // Chunks cover ascending edge-id ranges, and within a chunk the scan is
    // sequential — so the first Err in chunk order is the globally first.
    for r in results {
        r?;
    }
    Ok(())
}

fn check_addresses(e: &Embedding) -> Result<(), VerifyError> {
    let host = e.host();
    for (node, &addr) in e.map().iter().enumerate() {
        if !host.contains(addr) {
            return Err(VerifyError::AddressOutOfRange {
                node,
                address: addr,
            });
        }
    }
    Ok(())
}

/// Check the routes for a contiguous run of edges starting at id
/// `first_edge`, in order, returning the first failure.
fn check_route_range(
    e: &Embedding,
    first_edge: usize,
    edges: impl Iterator<Item = (u32, u32)>,
) -> Result<(), VerifyError> {
    if e.routes().all_pairs() {
        return check_pair_route_range(e, first_edge, edges);
    }
    let host = e.host();
    let routes = e.routes();
    let mut seen: Vec<u64> = Vec::new();
    for (k, (u, v)) in edges.enumerate() {
        let i = first_edge + k;
        if u as usize >= e.guest_nodes() || v as usize >= e.guest_nodes() {
            return Err(VerifyError::EdgeOutOfRange { edge: i });
        }
        let route = routes.route(i);
        let (Some(&first), Some(&last)) = (route.first(), route.last()) else {
            return Err(VerifyError::RouteEmpty { edge: i });
        };
        let start = e.image(u as usize);
        let end = e.image(v as usize);
        if first != start {
            return Err(VerifyError::RouteStartMismatch {
                edge: i,
                expected: start,
                found: first,
            });
        }
        if last != end {
            return Err(VerifyError::RouteEndMismatch {
                edge: i,
                expected: end,
                found: last,
            });
        }
        for (step, w) in route.windows(2).enumerate() {
            if hamming(w[0], w[1]) != 1 {
                return Err(VerifyError::RouteStepNotAdjacent {
                    edge: i,
                    step,
                    from: w[0],
                    to: w[1],
                });
            }
        }
        seen.clear();
        for &addr in route {
            if !host.contains(addr) {
                return Err(VerifyError::RouteOutOfRange {
                    edge: i,
                    address: addr,
                });
            }
            if seen.contains(&addr) {
                return Err(VerifyError::RouteNotSimple {
                    edge: i,
                    address: addr,
                });
            }
            seen.push(addr);
        }
    }
    Ok(())
}

/// [`check_route_range`] specialized for an all-pairs route arena (the
/// shape every Gray construction produces): routes are read straight from
/// the `(u, v)` lanes, skipping the offsets indirection and the
/// `seen`-scratch machinery. Exactness: [`check_addresses`] has already
/// validated every mapped address, so a pair route whose endpoints match
/// the map and are cube-adjacent cannot fail the range or simple-path
/// checks — and when a check fails, the error precedence below is the
/// same one the generic scan applies (edge bounds, then start, then end,
/// then step-0 adjacency).
fn check_pair_route_range(
    e: &Embedding,
    first_edge: usize,
    edges: impl Iterator<Item = (u32, u32)>,
) -> Result<(), VerifyError> {
    let map = e.map();
    let n = e.guest_nodes();
    let lanes = &e.routes().pair_lanes()[first_edge * 2..];
    for (k, (u, v)) in edges.enumerate() {
        let (nu, nv) = (u as usize, v as usize);
        if nu >= n || nv >= n {
            return Err(VerifyError::EdgeOutOfRange {
                edge: first_edge + k,
            });
        }
        let from = lanes[2 * k];
        let to = lanes[2 * k + 1];
        if from == map[nu] && to == map[nv] && (from ^ to).is_power_of_two() {
            continue;
        }
        let i = first_edge + k;
        if from != map[nu] {
            return Err(VerifyError::RouteStartMismatch {
                edge: i,
                expected: map[nu],
                found: from,
            });
        }
        if to != map[nv] {
            return Err(VerifyError::RouteEndMismatch {
                edge: i,
                expected: map[nv],
                found: to,
            });
        }
        return Err(VerifyError::RouteStepNotAdjacent {
            edge: i,
            step: 0,
            from,
            to,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteSet;
    use cubemesh_topology::Hypercube;

    fn build(map: Vec<u64>, edges: Vec<(u32, u32)>, routes: Vec<Vec<u64>>) -> Embedding {
        let mut rs = RouteSet::new();
        for r in &routes {
            rs.push(r);
        }
        Embedding::new(map.len(), edges, Hypercube::new(3), map, rs)
    }

    fn both(e: &Embedding) -> (Result<(), VerifyError>, Result<(), VerifyError>) {
        let seq = verify_embedding_seq(e);
        let par = verify_embedding_par(e);
        assert_eq!(seq, par, "parallel verify must agree with sequential");
        (seq, par)
    }

    #[test]
    fn good_embedding_passes() {
        let e = build(
            vec![0b000, 0b001, 0b011],
            vec![(0, 1), (0, 2)],
            vec![vec![0b000, 0b001], vec![0b000, 0b010, 0b011]],
        );
        assert!(both(&e).0.is_ok());
    }

    #[test]
    fn detects_non_injective() {
        let e = build(vec![1, 1], vec![], vec![]);
        assert!(matches!(both(&e).0, Err(VerifyError::NotInjective { .. })));
    }

    #[test]
    fn detects_out_of_range_address() {
        let e = build(vec![0, 9], vec![], vec![]);
        assert!(matches!(
            both(&e).0,
            Err(VerifyError::AddressOutOfRange { node: 1, .. })
        ));
    }

    #[test]
    fn detects_route_endpoint_mismatch() {
        let e = build(vec![0, 1], vec![(0, 1)], vec![vec![0, 2]]);
        assert!(matches!(
            both(&e).0,
            Err(VerifyError::RouteEndMismatch { .. })
        ));
        let e = build(vec![0, 1], vec![(0, 1)], vec![vec![2, 1]]);
        assert!(matches!(
            both(&e).0,
            Err(VerifyError::RouteStartMismatch { .. })
        ));
    }

    #[test]
    fn detects_non_adjacent_step() {
        let e = build(vec![0, 3], vec![(0, 1)], vec![vec![0, 3]]);
        assert!(matches!(
            both(&e).0,
            Err(VerifyError::RouteStepNotAdjacent { step: 0, .. })
        ));
    }

    #[test]
    fn detects_non_simple_route() {
        let e = build(vec![0, 1], vec![(0, 1)], vec![vec![0, 2, 0, 1]]);
        assert!(matches!(
            both(&e).0,
            Err(VerifyError::RouteNotSimple { .. })
        ));
    }

    #[test]
    fn pair_fast_path_agrees_with_generic_scan() {
        // Identical failing pair content; the second embedding carries an
        // extra trailing 3-node route, forcing it down the generic scan.
        // Both must report the same (first) error.
        let map = vec![0u64, 1, 3, 7];
        let edges = vec![(0u32, 1u32), (1, 2), (2, 3)];
        let pair_routes = vec![vec![0u64, 1], vec![1, 0], vec![3, 7]];
        let a = build(map.clone(), edges.clone(), pair_routes.clone());
        assert!(a.routes().all_pairs());
        let mut edges2 = edges;
        edges2.push((0, 3));
        let mut routes2 = pair_routes;
        routes2.push(vec![0, 4, 5, 7]);
        let b = build(map, edges2, routes2);
        assert!(!b.routes().all_pairs());
        assert_eq!(verify_embedding_seq(&a), verify_embedding_seq(&b));
        assert_eq!(verify_embedding_par(&a), verify_embedding_par(&b));
        assert!(matches!(
            verify_embedding_seq(&a),
            Err(VerifyError::RouteEndMismatch { edge: 1, .. })
        ));
    }

    #[test]
    fn parallel_reports_the_first_error() {
        // Two bad routes; both paths must report edge 1, not edge 2.
        let e = build(
            vec![0, 1, 3, 7],
            vec![(0, 1), (1, 2), (2, 3)],
            vec![vec![0, 1], vec![1, 0], vec![3, 1]],
        );
        let (seq, par) = both(&e);
        assert!(matches!(
            seq,
            Err(VerifyError::RouteEndMismatch { edge: 1, .. })
        ));
        assert!(matches!(
            par,
            Err(VerifyError::RouteEndMismatch { edge: 1, .. })
        ));
    }
}
