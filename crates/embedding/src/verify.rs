//! Semantic validation of embeddings.
//!
//! Every construction in the workspace — Gray codes, product embeddings,
//! search results, torus constructions — is checked through this module in
//! tests, so a bug in any builder surfaces as a precise [`VerifyError`].

use crate::map::Embedding;
use cubemesh_topology::hamming;
use std::fmt;

/// Why an embedding failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A mapped address does not fit in the host cube.
    AddressOutOfRange { node: usize, address: u64 },
    /// Two guest nodes share a host address (the map is not one-to-one).
    NotInjective {
        node_a: usize,
        node_b: usize,
        address: u64,
    },
    /// A guest edge index is out of range.
    EdgeOutOfRange { edge: usize },
    /// A route does not start at the image of its edge's first endpoint.
    RouteStartMismatch {
        edge: usize,
        expected: u64,
        found: u64,
    },
    /// A route does not end at the image of its edge's second endpoint.
    RouteEndMismatch {
        edge: usize,
        expected: u64,
        found: u64,
    },
    /// Two consecutive route nodes are not cube neighbors.
    RouteStepNotAdjacent {
        edge: usize,
        step: usize,
        from: u64,
        to: u64,
    },
    /// A route visits the same cube node twice (routes must be simple
    /// paths; Definition 2 measures dilation as the path length, which is
    /// only meaningful for simple paths).
    RouteNotSimple { edge: usize, address: u64 },
    /// A route leaves the host cube.
    RouteOutOfRange { edge: usize, address: u64 },
    /// A route has no nodes at all (even a self-mapped edge must carry
    /// the single-node path). [`RouteSet::push`](crate::RouteSet::push)
    /// already rejects empty routes, so this is defense-in-depth: the
    /// verifier does not assume the container upheld its invariant.
    RouteEmpty { edge: usize },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::AddressOutOfRange { node, address } => {
                write!(f, "node {node} maps to {address:#x}, outside the host cube")
            }
            VerifyError::NotInjective {
                node_a,
                node_b,
                address,
            } => write!(f, "nodes {node_a} and {node_b} both map to {address:#x}"),
            VerifyError::EdgeOutOfRange { edge } => {
                write!(f, "edge {edge} references a node out of range")
            }
            VerifyError::RouteStartMismatch {
                edge,
                expected,
                found,
            } => write!(
                f,
                "route {edge} starts at {found:#x}, expected {expected:#x}"
            ),
            VerifyError::RouteEndMismatch {
                edge,
                expected,
                found,
            } => write!(f, "route {edge} ends at {found:#x}, expected {expected:#x}"),
            VerifyError::RouteStepNotAdjacent {
                edge,
                step,
                from,
                to,
            } => write!(
                f,
                "route {edge} step {step}: {from:#x} -> {to:#x} is not a cube edge"
            ),
            VerifyError::RouteNotSimple { edge, address } => {
                write!(f, "route {edge} revisits {address:#x}")
            }
            VerifyError::RouteOutOfRange { edge, address } => {
                write!(f, "route {edge} leaves the cube at {address:#x}")
            }
            VerifyError::RouteEmpty { edge } => {
                write!(f, "route {edge} is empty")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Validate an embedding end to end. See [`VerifyError`] for the checks.
pub fn verify_embedding(e: &Embedding) -> Result<(), VerifyError> {
    // Injectivity, by sorting (address, node) pairs.
    let mut pairs: Vec<(u64, usize)> = e.map().iter().enumerate().map(|(v, &a)| (a, v)).collect();
    pairs.sort_unstable();
    for w in pairs.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(VerifyError::NotInjective {
                node_a: w[0].1,
                node_b: w[1].1,
                address: w[0].0,
            });
        }
    }
    verify_many_to_one(e)
}

/// The non-injective validation used for §7's many-to-one embeddings:
/// address ranges and route well-formedness only. A route for an edge
/// whose endpoints share an address is the single-node path.
pub fn verify_many_to_one(e: &Embedding) -> Result<(), VerifyError> {
    let host = e.host();
    // Address ranges.
    for (node, &addr) in e.map().iter().enumerate() {
        if !host.contains(addr) {
            return Err(VerifyError::AddressOutOfRange {
                node,
                address: addr,
            });
        }
    }
    // Routes.
    for (i, &(u, v)) in e.guest_edges().iter().enumerate() {
        if u as usize >= e.guest_nodes() || v as usize >= e.guest_nodes() {
            return Err(VerifyError::EdgeOutOfRange { edge: i });
        }
        let route = e.routes().route(i);
        let (Some(&first), Some(&last)) = (route.first(), route.last()) else {
            return Err(VerifyError::RouteEmpty { edge: i });
        };
        let start = e.image(u as usize);
        let end = e.image(v as usize);
        if first != start {
            return Err(VerifyError::RouteStartMismatch {
                edge: i,
                expected: start,
                found: first,
            });
        }
        if last != end {
            return Err(VerifyError::RouteEndMismatch {
                edge: i,
                expected: end,
                found: last,
            });
        }
        let mut seen = Vec::with_capacity(route.len());
        for (step, w) in route.windows(2).enumerate() {
            if hamming(w[0], w[1]) != 1 {
                return Err(VerifyError::RouteStepNotAdjacent {
                    edge: i,
                    step,
                    from: w[0],
                    to: w[1],
                });
            }
        }
        for &addr in route {
            if !host.contains(addr) {
                return Err(VerifyError::RouteOutOfRange {
                    edge: i,
                    address: addr,
                });
            }
            if seen.contains(&addr) {
                return Err(VerifyError::RouteNotSimple {
                    edge: i,
                    address: addr,
                });
            }
            seen.push(addr);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteSet;
    use cubemesh_topology::Hypercube;

    fn build(map: Vec<u64>, edges: Vec<(u32, u32)>, routes: Vec<Vec<u64>>) -> Embedding {
        let mut rs = RouteSet::new();
        for r in &routes {
            rs.push(r);
        }
        Embedding::new(map.len(), edges, Hypercube::new(3), map, rs)
    }

    #[test]
    fn good_embedding_passes() {
        let e = build(
            vec![0b000, 0b001, 0b011],
            vec![(0, 1), (0, 2)],
            vec![vec![0b000, 0b001], vec![0b000, 0b010, 0b011]],
        );
        assert!(e.verify().is_ok());
    }

    #[test]
    fn detects_non_injective() {
        let e = build(vec![1, 1], vec![], vec![]);
        assert!(matches!(e.verify(), Err(VerifyError::NotInjective { .. })));
    }

    #[test]
    fn detects_out_of_range_address() {
        let e = build(vec![0, 9], vec![], vec![]);
        assert!(matches!(
            e.verify(),
            Err(VerifyError::AddressOutOfRange { node: 1, .. })
        ));
    }

    #[test]
    fn detects_route_endpoint_mismatch() {
        let e = build(vec![0, 1], vec![(0, 1)], vec![vec![0, 2]]);
        assert!(matches!(
            e.verify(),
            Err(VerifyError::RouteEndMismatch { .. })
        ));
        let e = build(vec![0, 1], vec![(0, 1)], vec![vec![2, 1]]);
        assert!(matches!(
            e.verify(),
            Err(VerifyError::RouteStartMismatch { .. })
        ));
    }

    #[test]
    fn detects_non_adjacent_step() {
        let e = build(vec![0, 3], vec![(0, 1)], vec![vec![0, 3]]);
        assert!(matches!(
            e.verify(),
            Err(VerifyError::RouteStepNotAdjacent { step: 0, .. })
        ));
    }

    #[test]
    fn detects_non_simple_route() {
        let e = build(vec![0, 1], vec![(0, 1)], vec![vec![0, 2, 0, 1]]);
        assert!(matches!(
            e.verify(),
            Err(VerifyError::RouteNotSimple { .. })
        ));
    }
}
