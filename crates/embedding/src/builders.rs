//! Convenience constructors for mesh embeddings, plus the implicit
//! (index-computable) mesh edge enumeration every hot path iterates.
//!
//! The canonical mesh edge order — nodes in row-major order, axes
//! ascending, skipping high-boundary nodes — is pure arithmetic on a
//! [`Shape`], so paper-scale guests never need a materialized
//! `Vec<(u32, u32)>`: a [`MeshEdgeView`] yields endpoints on the fly,
//! knows how many edges precede any node in closed form (which is what
//! lets metrics/verify/construction shard the edge space over workers at
//! node boundaries), and costs `O(rank)` memory.

use crate::map::Embedding;
use crate::route::RouteSet;
use crate::router::{route_all, RouteStrategy};
use cubemesh_gray::{gray_fill_run, gray_mesh_address, AxisLayout};
use cubemesh_topology::{Hypercube, Mesh, Shape};
use rayon::prelude::*;
use std::ops::Range;

/// Below this many guest nodes a mesh sweep stays sequential: thread
/// spawn/join overhead would dominate, and censuses construct thousands
/// of such small shapes in a tight loop.
pub const PAR_MIN_NODES: usize = 1 << 15;

/// Contiguous node ranges for a parallel mesh sweep: one per rayon
/// worker, or a single whole-range chunk when the sweep is too small (or
/// the worker pool has one thread) to be worth fanning out.
pub fn node_chunks(nodes: usize) -> Vec<Range<usize>> {
    let threads = rayon::current_num_threads();
    if threads <= 1 || nodes < PAR_MIN_NODES {
        return std::iter::once(0..nodes).collect();
    }
    let chunk = nodes.div_ceil(threads);
    (0..threads)
        .map(|w| w.saturating_mul(chunk).min(nodes)..(w + 1).saturating_mul(chunk).min(nodes))
        .filter(|r| !r.is_empty())
        .collect()
}

/// The canonical mesh edge enumeration as an implicit, index-computable
/// view: edge endpoints are derived from the shape on demand instead of
/// being stored. Replaces materialized [`mesh_edge_list`] vectors in the
/// hot construct/metrics/verify pipeline.
#[derive(Clone, Debug)]
pub struct MeshEdgeView {
    shape: Shape,
    /// Row-major stride of each axis (product of later axis lengths).
    strides: Vec<usize>,
    edges: usize,
}

impl MeshEdgeView {
    /// Build the view for a mesh shape. `O(rank)` work and memory.
    pub fn new(shape: &Shape) -> Self {
        let rank = shape.rank();
        let mut strides = vec![1usize; rank];
        for a in (0..rank.saturating_sub(1)).rev() {
            strides[a] = strides[a + 1] * shape.len(a + 1);
        }
        debug_assert!(
            shape.nodes() <= u32::MAX as usize,
            "mesh node indices must fit in u32"
        );
        MeshEdgeView {
            strides,
            edges: shape.mesh_edges(),
            shape: shape.clone(),
        }
    }

    /// The underlying mesh shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Row-major stride of `axis`.
    #[inline]
    pub fn stride(&self, axis: usize) -> usize {
        self.strides[axis]
    }

    /// Total number of mesh edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Number of edges whose lower endpoint precedes `node` in the
    /// canonical enumeration — in closed form, `O(rank)`. This is the
    /// edge-id offset of `node`'s first edge, which is what lets
    /// parallel sweeps align route indices across node-range chunks.
    pub fn edges_before_node(&self, node: usize) -> usize {
        let mut total = 0usize;
        for (a, &stride) in self.strides.iter().enumerate() {
            // Along axis `a`, node m carries an edge iff its coordinate
            // (m / stride) % len is below len - 1, i.e. m mod
            // (stride·len) < stride·(len − 1): count those m < node.
            let len = self.shape.len(a);
            let period = stride * len;
            let carry = stride * (len - 1);
            // audit:allow(CM-A009): carry < period, so (node/period)·carry <= node
            total += (node / period) * carry + (node % period).min(carry);
        }
        total
    }

    /// Iterate every edge as `(u, v)` linear-index endpoints, `u < v`,
    /// in canonical order.
    pub fn iter(&self) -> MeshEdgeIter<'_> {
        self.iter_nodes(0..self.shape.nodes())
    }

    /// Iterate only the edges whose lower endpoint lies in `nodes`
    /// (edge ids `edges_before_node(start)..edges_before_node(end)`).
    pub fn iter_nodes(&self, nodes: Range<usize>) -> MeshEdgeIter<'_> {
        let mut coords = vec![0usize; self.shape.rank()];
        if nodes.start > 0 && nodes.start < self.shape.nodes() {
            self.shape.coords_into(nodes.start, &mut coords);
        }
        MeshEdgeIter {
            view: self,
            coords,
            node: nodes.start,
            end: nodes.end.min(self.shape.nodes()),
            axis: 0,
        }
    }
}

/// Iterator over (a node range of) a [`MeshEdgeView`].
pub struct MeshEdgeIter<'a> {
    view: &'a MeshEdgeView,
    coords: Vec<usize>,
    node: usize,
    end: usize,
    axis: usize,
}

impl Iterator for MeshEdgeIter<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        let shape = &self.view.shape;
        let rank = shape.rank();
        while self.node < self.end {
            while self.axis < rank {
                let a = self.axis;
                self.axis += 1;
                if self.coords[a] + 1 < shape.len(a) {
                    return Some((self.node as u32, (self.node + self.view.strides[a]) as u32));
                }
            }
            self.axis = 0;
            self.node += 1;
            shape.advance_coords(&mut self.coords);
        }
        None
    }
}

/// The canonical edge list of a mesh, in [`Mesh::edges`] order, as index
/// pairs — the *materialized* form, for irregular-guest call sites and
/// routers that want a slice. Hot paths should use [`MeshEdgeView`].
pub fn mesh_edge_list(mesh: &Mesh) -> Vec<(u32, u32)> {
    let view = MeshEdgeView::new(mesh.shape());
    let mut out = Vec::with_capacity(view.edge_count());
    out.extend(view.iter());
    out
}

/// Fill the node map of `shape` by evaluating `f` on every coordinate
/// vector, fanning out over node-range chunks when the mesh is large.
pub fn fill_node_map(shape: &Shape, f: impl Fn(&[usize]) -> u64 + Sync) -> Vec<u64> {
    let nodes = shape.nodes();
    let chunks = node_chunks(nodes);
    let fill = |range: Range<usize>| {
        let mut part = Vec::with_capacity(range.len());
        let mut coords = vec![0usize; shape.rank()];
        shape.coords_into(range.start, &mut coords);
        for _ in range {
            part.push(f(&coords));
            shape.advance_coords(&mut coords);
        }
        part
    };
    if chunks.len() == 1 {
        return fill(0..nodes);
    }
    let parts: Vec<Vec<u64>> = chunks.into_par_iter().map(fill).collect();
    let mut map = Vec::with_capacity(nodes);
    for part in parts {
        map.extend_from_slice(&part);
    }
    map
}

/// Build a mesh embedding from an address function, generating routes with
/// the given strategy.
///
/// The address function receives mesh coordinates and must return a node of
/// `host`; injectivity is *not* checked here (call
/// [`Embedding::verify`]).
pub fn mesh_embedding_from_fn(
    shape: &Shape,
    host: Hypercube,
    f: impl Fn(&[usize]) -> u64 + Sync,
    strategy: RouteStrategy,
) -> Embedding {
    let map = fill_node_map(shape, f);
    let edges = mesh_edge_list(&Mesh::new(shape.clone()));
    let routes = route_all(&map, &edges, host, strategy);
    Embedding::new_mesh(shape, host, map, routes)
}

/// Build a mesh embedding from an explicit node map (indexed in row-major
/// order), generating routes with the given strategy.
pub fn mesh_embedding_with_router(
    shape: &Shape,
    host: Hypercube,
    map: Vec<u64>,
    strategy: RouteStrategy,
) -> Embedding {
    assert_eq!(map.len(), shape.nodes());
    let edges = mesh_edge_list(&Mesh::new(shape.clone()));
    let routes = route_all(&map, &edges, host, strategy);
    Embedding::new_mesh(shape, host, map, routes)
}

/// The Gray node map filled in innermost-axis runs through the batch
/// kernel: along the last axis only that axis' Gray field changes, so a
/// whole run shares one `base` address and [`gray_fill_run`] writes it
/// without re-walking the coordinate vector per node. Byte-identical to
/// `fill_node_map(shape, |c| gray_mesh_address(layout, c))`.
fn gray_node_map(shape: &Shape, layout: &AxisLayout) -> Vec<u64> {
    let nodes = shape.nodes();
    let rank = shape.rank();
    if rank == 0 || nodes == 0 {
        return fill_node_map(shape, |c| gray_mesh_address(layout, c));
    }
    let last = shape.len(rank - 1);
    let shift = layout.bit_offset(rank - 1);
    let fill = |range: Range<usize>| {
        let mut part = vec![0u64; range.len()];
        let mut coords = vec![0usize; rank];
        // A chunk boundary may fall mid-run; re-derive coordinates per
        // run start and emit the (possibly clipped) run in one call.
        let mut pos = range.start;
        let mut out = part.as_mut_slice();
        while !out.is_empty() {
            shape.coords_into(pos, &mut coords);
            let x0 = coords[rank - 1];
            let run = (last - x0).min(out.len());
            let (head, rest) = out.split_at_mut(run);
            let base = gray_mesh_address(layout, &coords[..rank - 1]);
            gray_fill_run(head, x0 as u64, base, shift);
            pos += run;
            out = rest;
        }
        part
    };
    let chunks = node_chunks(nodes);
    if chunks.len() == 1 {
        return fill(0..nodes);
    }
    let parts: Vec<Vec<u64>> = chunks.into_par_iter().map(fill).collect();
    let mut map = Vec::with_capacity(nodes);
    for part in parts {
        map.extend_from_slice(&part);
    }
    map
}

/// The binary-reflected Gray-code embedding of §3.1: dilation 1,
/// congestion 1, host dimension `Σᵢ ⌈log₂ ℓᵢ⌉`.
///
/// This is the paper's method 1; its expansion is minimal exactly when
/// [`Shape::gray_is_minimal`] holds (Theorem 1 makes this the best any
/// dilation-one embedding can do). The map and the route arena are both
/// filled in parallel node-range chunks on large meshes.
pub fn gray_mesh_embedding(shape: &Shape) -> Embedding {
    let layout = AxisLayout::from_shape(shape);
    let host = Hypercube::new(layout.total_dim());
    let map = gray_node_map(shape, &layout);
    let view = MeshEdgeView::new(shape);

    // Every Gray route is the two-node path between adjacent addresses.
    let build = |range: Range<usize>| {
        let lo = view.edges_before_node(range.start);
        let hi = view.edges_before_node(range.end);
        let mut part = RouteSet::with_capacity(hi - lo, (hi - lo) * 2);
        for (u, v) in view.iter_nodes(range) {
            part.push_pair(map[u as usize], map[v as usize]);
        }
        part
    };
    let chunks = node_chunks(shape.nodes());
    let routes = if chunks.len() == 1 {
        build(0..shape.nodes())
    } else {
        let parts: Vec<RouteSet> = chunks.into_par_iter().map(build).collect();
        let mut routes = RouteSet::with_capacity(view.edge_count(), view.edge_count() * 2);
        for part in &parts {
            routes.append(part);
        }
        routes
    };
    Embedding::new_mesh(shape, host, map, routes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_embedding_is_dilation_one_congestion_one() {
        for dims in [vec![4usize, 8], vec![5, 6], vec![3, 5, 7], vec![2, 2, 2, 2]] {
            let shape = Shape::new(&dims);
            let e = gray_mesh_embedding(&shape);
            e.verify().unwrap();
            let m = e.metrics();
            assert_eq!(m.dilation, 1, "shape {:?}", dims);
            assert_eq!(m.congestion, 1, "shape {:?}", dims);
            assert_eq!(m.avg_dilation, 1.0);
            assert_eq!(m.host_dim, shape.gray_cube_dim());
        }
    }

    #[test]
    fn gray_expansion_matches_theory() {
        // 5x6x7: Gray needs 3+3+3 = 9 dims for 210 nodes -> expansion 512/210.
        let shape = Shape::new(&[5, 6, 7]);
        let e = gray_mesh_embedding(&shape);
        assert!((e.expansion() - 512.0 / 210.0).abs() < 1e-12);
        assert!(!e.metrics().is_minimal_expansion());

        // 3x3: minimal.
        let shape = Shape::new(&[3, 3]);
        let e = gray_mesh_embedding(&shape);
        assert!(e.metrics().is_minimal_expansion());
    }

    #[test]
    fn batched_gray_map_matches_generic_fill() {
        for dims in [vec![5usize, 3, 6], vec![1, 7], vec![2, 2, 2, 3], vec![9]] {
            let shape = Shape::new(&dims);
            let layout = AxisLayout::from_shape(&shape);
            let batched = gray_node_map(&shape, &layout);
            let generic = fill_node_map(&shape, |c| gray_mesh_address(&layout, c));
            assert_eq!(batched, generic, "shape {:?}", dims);
        }
    }

    #[test]
    fn from_fn_builder_roundtrip() {
        let shape = Shape::new(&[2, 3]);
        let host = Hypercube::new(3);
        // Identity-ish packing: linear index as address.
        let e = mesh_embedding_from_fn(
            &shape,
            host,
            |c| (c[0] * 3 + c[1]) as u64,
            RouteStrategy::Canonical,
        );
        e.verify().unwrap();
        assert_eq!(e.guest_nodes(), 6);
    }

    #[test]
    fn single_node_mesh_embeds_in_point_cube() {
        let shape = Shape::new(&[1, 1]);
        let e = gray_mesh_embedding(&shape);
        e.verify().unwrap();
        assert_eq!(e.host().dim(), 0);
        assert_eq!(e.metrics().dilation, 0);
    }

    #[test]
    fn view_matches_mesh_enumeration() {
        for dims in [
            vec![1usize],
            vec![7],
            vec![1, 1, 1],
            vec![3, 4],
            vec![3, 4, 5],
            vec![1, 6, 1, 2],
            vec![2, 2, 2, 2],
        ] {
            let shape = Shape::new(&dims);
            let mesh = Mesh::new(shape.clone());
            let view = MeshEdgeView::new(&shape);
            let expected: Vec<(u32, u32)> = mesh
                .edges()
                .map(|e| {
                    let (a, b) = mesh.edge_endpoints(e);
                    (a as u32, b as u32)
                })
                .collect();
            let got: Vec<(u32, u32)> = view.iter().collect();
            assert_eq!(got, expected, "shape {:?}", dims);
            assert_eq!(view.edge_count(), expected.len());
        }
    }

    #[test]
    fn edges_before_node_matches_enumeration() {
        let shape = Shape::new(&[3, 4, 5]);
        let view = MeshEdgeView::new(&shape);
        let all: Vec<(u32, u32)> = view.iter().collect();
        for node in 0..=shape.nodes() {
            let expect = all.iter().filter(|&&(u, _)| (u as usize) < node).count();
            assert_eq!(view.edges_before_node(node), expect, "node {}", node);
        }
    }

    #[test]
    fn iter_nodes_partitions_the_edge_space() {
        let shape = Shape::new(&[4, 3, 5]);
        let view = MeshEdgeView::new(&shape);
        let all: Vec<(u32, u32)> = view.iter().collect();
        for split in [1, 7, 29, 43, shape.nodes()] {
            let mut joined: Vec<(u32, u32)> = view.iter_nodes(0..split).collect();
            joined.extend(view.iter_nodes(split..shape.nodes()));
            assert_eq!(joined, all, "split {}", split);
            assert_eq!(
                view.iter_nodes(0..split).count(),
                view.edges_before_node(split)
            );
        }
    }
}
