//! Convenience constructors for mesh embeddings.

use crate::map::Embedding;
use crate::route::RouteSet;
use crate::router::{route_all, RouteStrategy};
use cubemesh_gray::{gray_mesh_address, AxisLayout};
use cubemesh_topology::{Hypercube, Mesh, Shape};

/// The canonical edge list of a mesh, in [`Mesh::edges`] order, as index
/// pairs. Every mesh embedding in the workspace uses this order so routes
/// line up.
pub fn mesh_edge_list(mesh: &Mesh) -> Vec<(u32, u32)> {
    mesh.edges()
        .map(|e| {
            let (a, b) = mesh.edge_endpoints(e);
            (a as u32, b as u32)
        })
        .collect()
}

/// Build a mesh embedding from an address function, generating routes with
/// the given strategy.
///
/// The address function receives mesh coordinates and must return a node of
/// `host`; injectivity is *not* checked here (call
/// [`Embedding::verify`]).
pub fn mesh_embedding_from_fn(
    shape: &Shape,
    host: Hypercube,
    f: impl Fn(&[usize]) -> u64,
    strategy: RouteStrategy,
) -> Embedding {
    let mesh = Mesh::new(shape.clone());
    let map: Vec<u64> = shape.iter_coords().map(|c| f(&c)).collect();
    let edges = mesh_edge_list(&mesh);
    let routes = route_all(&map, &edges, host, strategy);
    Embedding::new(mesh.nodes(), edges, host, map, routes)
}

/// Build a mesh embedding from an explicit node map (indexed in row-major
/// order), generating routes with the given strategy.
pub fn mesh_embedding_with_router(
    shape: &Shape,
    host: Hypercube,
    map: Vec<u64>,
    strategy: RouteStrategy,
) -> Embedding {
    let mesh = Mesh::new(shape.clone());
    assert_eq!(map.len(), mesh.nodes());
    let edges = mesh_edge_list(&mesh);
    let routes = route_all(&map, &edges, host, strategy);
    Embedding::new(mesh.nodes(), edges, host, map, routes)
}

/// The binary-reflected Gray-code embedding of §3.1: dilation 1,
/// congestion 1, host dimension `Σᵢ ⌈log₂ ℓᵢ⌉`.
///
/// This is the paper's method 1; its expansion is minimal exactly when
/// [`Shape::gray_is_minimal`] holds (Theorem 1 makes this the best any
/// dilation-one embedding can do).
pub fn gray_mesh_embedding(shape: &Shape) -> Embedding {
    let layout = AxisLayout::from_shape(shape);
    let host = Hypercube::new(layout.total_dim());
    let mesh = Mesh::new(shape.clone());
    let map: Vec<u64> = shape
        .iter_coords()
        .map(|c| gray_mesh_address(&layout, &c))
        .collect();
    let edges = mesh_edge_list(&mesh);
    let mut routes = RouteSet::with_capacity(edges.len(), edges.len() * 2);
    for &(u, v) in &edges {
        routes.push(&[map[u as usize], map[v as usize]]);
    }
    Embedding::new(mesh.nodes(), edges, host, map, routes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_embedding_is_dilation_one_congestion_one() {
        for dims in [vec![4usize, 8], vec![5, 6], vec![3, 5, 7], vec![2, 2, 2, 2]] {
            let shape = Shape::new(&dims);
            let e = gray_mesh_embedding(&shape);
            e.verify().unwrap();
            let m = e.metrics();
            assert_eq!(m.dilation, 1, "shape {:?}", dims);
            assert_eq!(m.congestion, 1, "shape {:?}", dims);
            assert_eq!(m.avg_dilation, 1.0);
            assert_eq!(m.host_dim, shape.gray_cube_dim());
        }
    }

    #[test]
    fn gray_expansion_matches_theory() {
        // 5x6x7: Gray needs 3+3+3 = 9 dims for 210 nodes -> expansion 512/210.
        let shape = Shape::new(&[5, 6, 7]);
        let e = gray_mesh_embedding(&shape);
        assert!((e.expansion() - 512.0 / 210.0).abs() < 1e-12);
        assert!(!e.metrics().is_minimal_expansion());

        // 3x3: minimal.
        let shape = Shape::new(&[3, 3]);
        let e = gray_mesh_embedding(&shape);
        assert!(e.metrics().is_minimal_expansion());
    }

    #[test]
    fn from_fn_builder_roundtrip() {
        let shape = Shape::new(&[2, 3]);
        let host = Hypercube::new(3);
        // Identity-ish packing: linear index as address.
        let e = mesh_embedding_from_fn(
            &shape,
            host,
            |c| (c[0] * 3 + c[1]) as u64,
            RouteStrategy::Canonical,
        );
        e.verify().unwrap();
        assert_eq!(e.guest_nodes(), 6);
    }

    #[test]
    fn single_node_mesh_embeds_in_point_cube() {
        let shape = Shape::new(&[1, 1]);
        let e = gray_mesh_embedding(&shape);
        e.verify().unwrap();
        assert_eq!(e.host().dim(), 0);
        assert_eq!(e.metrics().dilation, 0);
    }
}
