//! Flattened storage for edge routes.
//!
//! A route is the host-cube path assigned to one guest edge, stored as the
//! full node sequence *including both endpoints* (so a dilation-`d` route
//! has `d + 1` nodes and a dilation-1 route has 2). Routes for millions of
//! edges are kept in one arena (`nodes`) with an offsets table, avoiding a
//! heap allocation per edge — the pattern recommended for hot containers in
//! the workspace performance guide.

/// An arena of routes, indexed densely by guest-edge number.
#[derive(Clone, Debug)]
pub struct RouteSet {
    offsets: Vec<u32>,
    nodes: Vec<u64>,
    /// Maintained incrementally: `true` while every stored route has
    /// exactly two nodes. Lets metrics/verify take the pair fast paths
    /// (reading `nodes` as `(u, v)` lanes) without scanning `offsets` —
    /// `nodes.len() == 2 * len()` alone would not prove it (a 3-node
    /// route plus a 1-node route has the same totals).
    pairs_only: bool,
}

impl Default for RouteSet {
    /// Same as [`RouteSet::new`]. (A derived `Default` would leave
    /// `offsets` empty, violating the `offsets[0] == 0` invariant every
    /// accessor relies on.)
    fn default() -> Self {
        RouteSet::new()
    }
}

impl RouteSet {
    /// An empty route set.
    pub fn new() -> Self {
        RouteSet {
            offsets: vec![0],
            nodes: Vec::new(),
            pairs_only: true,
        }
    }

    /// Pre-allocate for `edges` routes totalling about `total_nodes` path
    /// nodes.
    pub fn with_capacity(edges: usize, total_nodes: usize) -> Self {
        let mut offsets = Vec::with_capacity(edges + 1);
        offsets.push(0);
        RouteSet {
            offsets,
            nodes: Vec::with_capacity(total_nodes),
            pairs_only: true,
        }
    }

    /// Append a route (full node path, endpoints included). Returns its
    /// index.
    ///
    /// # Panics
    /// Panics if the path has fewer than 1 node (a route for a self-loop of
    /// length 0 is not a thing — guest graphs have no self-loops).
    pub fn push(&mut self, path: &[u64]) -> usize {
        assert!(!path.is_empty(), "empty route");
        self.pairs_only &= path.len() == 2;
        self.nodes.extend_from_slice(path);
        self.offsets.push(self.nodes.len() as u32);
        self.offsets.len() - 2
    }

    /// Append a two-node route (the dilation-1 case every Gray-code edge
    /// hits); cheaper than going through a slice.
    #[inline]
    pub fn push_pair(&mut self, a: u64, b: u64) -> usize {
        self.nodes.push(a);
        self.nodes.push(b);
        self.offsets.push(self.nodes.len() as u32);
        self.offsets.len() - 2
    }

    /// Splice another route set onto the end of this one, preserving
    /// route order — the merge step for route arenas filled by parallel
    /// workers over contiguous edge chunks.
    pub fn append(&mut self, other: &RouteSet) {
        let base = self.nodes.len() as u32;
        self.pairs_only &= other.pairs_only || other.is_empty();
        self.nodes.extend_from_slice(&other.nodes);
        self.offsets
            .extend(other.offsets[1..].iter().map(|&o| base + o));
    }

    /// Append a route given as an iterator.
    pub fn push_iter(&mut self, path: impl IntoIterator<Item = u64>) -> usize {
        let before = self.nodes.len();
        self.nodes.extend(path);
        assert!(self.nodes.len() > before, "empty route");
        self.pairs_only &= self.nodes.len() - before == 2;
        self.offsets.push(self.nodes.len() as u32);
        self.offsets.len() - 2
    }

    /// Number of routes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if no routes stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node path of route `i` (endpoints included).
    #[inline]
    pub fn route(&self, i: usize) -> &[u64] {
        &self.nodes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Dilation of route `i`: number of host edges on the path.
    #[inline]
    pub fn dilation(&self, i: usize) -> u32 {
        self.offsets[i + 1] - self.offsets[i] - 1
    }

    /// Total number of host-edge traversals over all routes (the numerator
    /// of both average dilation and average congestion).
    #[inline]
    pub fn total_length(&self) -> u64 {
        (self.nodes.len() - self.len()) as u64
    }

    /// Total host-edge traversals of the route range `lo..hi` — lets
    /// parallel metric workers pre-size their scratch exactly.
    #[inline]
    pub fn span_length(&self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi && hi <= self.len());
        (self.offsets[hi] - self.offsets[lo]) as usize - (hi - lo)
    }

    /// `true` while every stored route has exactly two nodes (the
    /// dilation-1 shape all Gray-code embeddings produce). Gates the
    /// metrics/verify pair fast paths.
    #[inline]
    pub fn all_pairs(&self) -> bool {
        self.pairs_only
    }

    /// The raw node arena viewed as `(u, v)` endpoint lanes. Only
    /// meaningful when [`RouteSet::all_pairs`] is `true`: lane `i` is
    /// `(pairs[2i], pairs[2i+1])` — route `i` without the offsets
    /// indirection.
    #[inline]
    pub fn pair_lanes(&self) -> &[u64] {
        debug_assert!(self.pairs_only);
        &self.nodes
    }

    /// Iterate over all routes.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.len()).map(move |i| self.route(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut rs = RouteSet::new();
        assert!(rs.is_empty());
        let a = rs.push(&[0, 1]);
        let b = rs.push(&[3, 2, 6]);
        let c = rs.push_iter([5u64]);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.route(0), &[0, 1]);
        assert_eq!(rs.route(1), &[3, 2, 6]);
        assert_eq!(rs.route(2), &[5]);
        assert_eq!(rs.dilation(0), 1);
        assert_eq!(rs.dilation(1), 2);
        assert_eq!(rs.dilation(2), 0);
        assert_eq!(rs.total_length(), 3);
    }

    #[test]
    fn iter_matches_indexing() {
        let mut rs = RouteSet::with_capacity(2, 5);
        rs.push(&[1, 0]);
        rs.push(&[2, 3, 7]);
        let collected: Vec<Vec<u64>> = rs.iter().map(|r| r.to_vec()).collect();
        assert_eq!(collected, vec![vec![1, 0], vec![2, 3, 7]]);
    }

    #[test]
    #[should_panic]
    fn empty_route_rejected() {
        RouteSet::new().push(&[]);
    }

    #[test]
    fn default_is_usable() {
        let rs = RouteSet::default();
        assert!(rs.is_empty());
        assert_eq!(rs.len(), 0);
        assert_eq!(rs.total_length(), 0);
    }

    #[test]
    fn pairs_only_tracks_route_shapes() {
        let mut rs = RouteSet::new();
        assert!(rs.all_pairs());
        rs.push_pair(0, 1);
        rs.push(&[2, 3]);
        rs.push_iter([4u64, 5]);
        assert!(rs.all_pairs());
        assert_eq!(rs.pair_lanes(), &[0, 1, 2, 3, 4, 5]);
        let mut other = RouteSet::new();
        other.push_pair(8, 9);
        rs.append(&other);
        assert!(rs.all_pairs());
        // A 3-node route plus a 1-node route keeps nodes.len() == 2·len()
        // but must clear the flag.
        rs.push(&[6, 7, 7]);
        rs.push(&[9]);
        assert!(!rs.all_pairs());
        // And appending a non-pair set clears it on the target.
        let mut c = RouteSet::new();
        c.push_pair(1, 2);
        c.append(&rs);
        assert!(!c.all_pairs());
        // Appending an empty set never clears the flag.
        let mut d = RouteSet::new();
        d.push_pair(3, 4);
        d.append(&RouteSet::new());
        assert!(d.all_pairs());
    }

    #[test]
    fn append_splices_in_order() {
        let mut a = RouteSet::new();
        a.push(&[0, 1]);
        a.push(&[4, 5, 7]);
        let mut b = RouteSet::new();
        b.push_pair(2, 3);
        b.push(&[9]);
        a.append(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.route(0), &[0, 1]);
        assert_eq!(a.route(1), &[4, 5, 7]);
        assert_eq!(a.route(2), &[2, 3]);
        assert_eq!(a.route(3), &[9]);
        assert_eq!(a.total_length(), 4);
        // Appending an empty set is a no-op.
        a.append(&RouteSet::new());
        assert_eq!(a.len(), 4);
    }
}
