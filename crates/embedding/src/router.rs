//! Route generation for embeddings built as bare node maps.
//!
//! The constructions of the paper carry their own routes (that is how the
//! congestion bounds are proved), but maps coming out of the direct-
//! embedding *search* or out of baselines are just node assignments. This
//! module turns a map into routes:
//!
//! * [`RouteStrategy::Canonical`] — correct differing bits from least to
//!   most significant; deterministic, no congestion awareness.
//! * [`RouteStrategy::Balanced`] — greedy congestion-aware choice among all
//!   shortest paths (all bit orders for Hamming distance ≤ 3, a small
//!   sample beyond), followed by improvement passes that re-route the
//!   worst edges. This is what lets the search catalog certify
//!   congestion-2 routings for its dilation-2 embeddings.

use crate::route::RouteSet;
use cubemesh_obs as obs;
use cubemesh_topology::{hamming, Hypercube};
use std::collections::HashMap;

/// How to assign shortest-path routes to guest edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteStrategy {
    /// Flip differing bits from LSB to MSB.
    Canonical,
    /// Congestion-aware greedy with the given number of improvement passes.
    Balanced { passes: usize },
}

impl Default for RouteStrategy {
    fn default() -> Self {
        RouteStrategy::Balanced { passes: 2 }
    }
}

/// The canonical shortest path from `a` to `b`: flip differing bits in
/// ascending position order. Length `hamming(a, b) + 1` nodes.
pub fn canonical_path(a: u64, b: u64) -> Vec<u64> {
    let mut path = Vec::with_capacity(hamming(a, b) as usize + 1);
    let mut cur = a;
    path.push(cur);
    for bit in cubemesh_topology::hamming::bit_positions(a ^ b) {
        cur ^= 1u64 << bit;
        path.push(cur);
    }
    path
}

/// The shortest path from `a` to `b` flipping bits in the order given by
/// `order` (which must be exactly the differing bit positions).
fn path_with_order(a: u64, order: &[u32]) -> Vec<u64> {
    let mut path = Vec::with_capacity(order.len() + 1);
    let mut cur = a;
    path.push(cur);
    for &bit in order {
        cur ^= 1u64 << bit;
        path.push(cur);
    }
    path
}

/// All permutations of a small slice (≤ 3 elements yields ≤ 6 orders; the
/// caller bounds the input size).
fn permutations(bits: &[u32]) -> Vec<Vec<u32>> {
    match bits.len() {
        0 => vec![vec![]],
        1 => vec![vec![bits[0]]],
        _ => {
            let mut out = Vec::new();
            for (i, &b) in bits.iter().enumerate() {
                let mut rest: Vec<u32> = bits.to_vec();
                rest.remove(i);
                for mut tail in permutations(&rest) {
                    let mut perm = vec![b];
                    perm.append(&mut tail);
                    out.push(perm);
                }
            }
            out
        }
    }
}

/// Candidate bit orders for routing an edge with differing bits `bits`:
/// all `d!` orders when `d ≤ 3`, otherwise ascending, descending, and the
/// `d` rotations of ascending order.
fn candidate_orders(bits: &[u32]) -> Vec<Vec<u32>> {
    if bits.len() <= 3 {
        permutations(bits)
    } else {
        let mut out = Vec::with_capacity(bits.len() + 1);
        for r in 0..bits.len() {
            let mut rot: Vec<u32> = bits[r..].to_vec();
            rot.extend_from_slice(&bits[..r]);
            out.push(rot);
        }
        let mut desc: Vec<u32> = bits.to_vec();
        desc.reverse();
        out.push(desc);
        out
    }
}

/// Generate routes for every `(u, v)` guest edge of a node map.
pub fn route_all(
    map: &[u64],
    edges: &[(u32, u32)],
    host: Hypercube,
    strategy: RouteStrategy,
) -> RouteSet {
    match strategy {
        RouteStrategy::Canonical => {
            let mut rs = RouteSet::with_capacity(edges.len(), edges.len() * 2);
            for &(u, v) in edges {
                rs.push(&canonical_path(map[u as usize], map[v as usize]));
            }
            rs
        }
        RouteStrategy::Balanced { passes } => balanced_routes(map, edges, host, passes),
    }
}

fn balanced_routes(map: &[u64], edges: &[(u32, u32)], host: Hypercube, passes: usize) -> RouteSet {
    let _span = obs::span!("router.balanced");
    obs::counter!("router.balanced.calls").inc();
    // Congestion counters on host edges, sparse.
    let mut load: HashMap<usize, u32> = HashMap::new();
    let mut chosen: Vec<Vec<u64>> = Vec::with_capacity(edges.len());

    let add = |load: &mut HashMap<usize, u32>, host: &Hypercube, path: &[u64], delta: i64| {
        for w in path.windows(2) {
            let bit = (w[0] ^ w[1]).trailing_zeros();
            let idx = host.edge_index(w[0], bit);
            let entry = load.entry(idx).or_insert(0);
            *entry = (*entry as i64 + delta) as u32;
        }
    };

    // Initial greedy assignment.
    for &(u, v) in edges {
        let a = map[u as usize];
        let b = map[v as usize];
        let path = best_path(a, b, &load, host);
        add(&mut load, &host, &path, 1);
        chosen.push(path);
    }

    // Improvement passes: tear out and re-route each edge.
    for _ in 0..passes {
        obs::counter!("router.balanced.passes").inc();
        let mut improved = false;
        for i in 0..chosen.len() {
            let (u, v) = edges[i];
            let a = map[u as usize];
            let b = map[v as usize];
            add(&mut load, &host, &chosen[i], -1);
            let candidate = best_path(a, b, &load, host);
            let cand_cost = path_cost_after_insert(&candidate, &load, host);
            let old_cost = path_cost_after_insert(&chosen[i], &load, host);
            if cand_cost < old_cost {
                obs::counter!("router.balanced.improvements").inc();
                chosen[i] = candidate;
                improved = true;
            }
            add(&mut load, &host, &chosen[i].clone(), 1);
        }
        if !improved {
            break;
        }
    }

    // Greedy + local improvement is not guaranteed to dominate the
    // canonical routing; keep whichever is better so `Balanced` is
    // never worse by construction.
    let balanced_worst = load.values().copied().max().unwrap_or(0);
    let canonical = route_all(map, edges, host, RouteStrategy::Canonical);
    let canonical_worst = max_edge_congestion(&canonical, host);
    obs::histogram!("router.congestion").record(balanced_worst.min(canonical_worst) as u64);
    if canonical_worst < balanced_worst {
        return canonical;
    }

    let mut rs = RouteSet::with_capacity(edges.len(), edges.len() * 2);
    for p in &chosen {
        rs.push(p);
    }
    rs
}

/// Max per-edge congestion of a route set (small helper used to pick the
/// better of two routings).
fn max_edge_congestion(routes: &RouteSet, host: Hypercube) -> u32 {
    let mut load: HashMap<usize, u32> = HashMap::new();
    let mut worst = 0;
    for r in routes.iter() {
        for w in r.windows(2) {
            let bit = (w[0] ^ w[1]).trailing_zeros();
            let e = load.entry(host.edge_index(w[0], bit)).or_insert(0);
            *e += 1;
            worst = worst.max(*e);
        }
    }
    worst
}

/// Max congestion along `path` if it were added on top of current loads.
fn path_cost_after_insert(path: &[u64], load: &HashMap<usize, u32>, host: Hypercube) -> u32 {
    path.windows(2)
        .map(|w| {
            let bit = (w[0] ^ w[1]).trailing_zeros();
            *load.get(&host.edge_index(w[0], bit)).unwrap_or(&0) + 1
        })
        .max()
        .unwrap_or(0)
}

/// Pick the candidate shortest path minimizing (max-load-after, sum-load),
/// falling back to the canonical ascending-bit route if the candidate
/// enumeration somehow yields nothing.
fn best_path(a: u64, b: u64, load: &HashMap<usize, u32>, host: Hypercube) -> Vec<u64> {
    let bits: Vec<u32> = cubemesh_topology::hamming::bit_positions(a ^ b).collect();
    if bits.is_empty() {
        return vec![a];
    }
    let mut best: Option<(u32, u64, Vec<u64>)> = None;
    for order in candidate_orders(&bits) {
        let path = path_with_order(a, &order);
        let mut worst = 0u32;
        let mut total = 0u64;
        for w in path.windows(2) {
            let bit = (w[0] ^ w[1]).trailing_zeros();
            let l = *load.get(&host.edge_index(w[0], bit)).unwrap_or(&0) + 1;
            worst = worst.max(l);
            total += l as u64;
        }
        if best
            .as_ref()
            .map(|(bw, bt, _)| (worst, total) < (*bw, *bt))
            .unwrap_or(true)
        {
            best = Some((worst, total, path));
        }
    }
    match best {
        Some((_, _, path)) => path,
        None => canonical_path(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Embedding;

    #[test]
    fn canonical_path_is_shortest() {
        for a in 0..16u64 {
            for b in 0..16u64 {
                let p = canonical_path(a, b);
                assert_eq!(p.len() as u32, hamming(a, b) + 1);
                assert_eq!(p[0], a);
                assert_eq!(*p.last().unwrap(), b);
                for w in p.windows(2) {
                    assert_eq!(hamming(w[0], w[1]), 1);
                }
            }
        }
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(&[]).len(), 1);
        assert_eq!(permutations(&[1]).len(), 1);
        assert_eq!(permutations(&[1, 2]).len(), 2);
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
    }

    #[test]
    fn balanced_beats_canonical_on_a_hotspot() {
        // Star guest: center node 0 at address 0, leaves at addresses of
        // Hamming weight 2 sharing bit 0. Canonical routing (LSB first)
        // sends every route through edge 0 -> 1 first; balanced should
        // spread them.
        let host = Hypercube::new(4);
        let map: Vec<u64> = vec![0b0000, 0b0011, 0b0101, 0b1001];
        let edges: Vec<(u32, u32)> = vec![(0, 1), (0, 2), (0, 3)];

        let canon = route_all(&map, &edges, host, RouteStrategy::Canonical);
        let canon_emb = Embedding::new(4, edges.clone(), host, map.clone(), canon);
        canon_emb.verify().unwrap();
        let c1 = canon_emb.metrics().congestion;
        assert_eq!(c1, 3, "canonical funnels all three through 0-1");

        let bal = route_all(&map, &edges, host, RouteStrategy::Balanced { passes: 2 });
        let bal_emb = Embedding::new(4, edges, host, map, bal);
        bal_emb.verify().unwrap();
        let c2 = bal_emb.metrics().congestion;
        assert!(c2 <= 2, "balanced congestion {} should be <= 2", c2);
    }

    #[test]
    fn routes_verify_for_random_maps() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let host = Hypercube::new(6);
        // Random injective map of a 3x4 mesh.
        let mesh = cubemesh_topology::Mesh::from_dims(&[3, 4]);
        let mut addrs: Vec<u64> = (0..host.nodes()).collect();
        addrs.shuffle(&mut rng);
        let map: Vec<u64> = addrs[..mesh.nodes()].to_vec();
        let edges: Vec<(u32, u32)> = mesh
            .edges()
            .map(|e| {
                let (a, b) = mesh.edge_endpoints(e);
                (a as u32, b as u32)
            })
            .collect();
        for strategy in [
            RouteStrategy::Canonical,
            RouteStrategy::Balanced { passes: 3 },
        ] {
            let rs = route_all(&map, &edges, host, strategy);
            let emb = Embedding::new(mesh.nodes(), edges.clone(), host, map.clone(), rs);
            emb.verify().unwrap();
            // Shortest-path routing: dilation equals max Hamming distance.
            let want: u32 = edges
                .iter()
                .map(|&(u, v)| hamming(map[u as usize], map[v as usize]))
                .max()
                .unwrap();
            assert_eq!(emb.metrics().dilation, want);
        }
    }
}
