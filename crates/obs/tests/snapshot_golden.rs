//! Golden-file pin of the [`Snapshot::to_json`] schema.
//!
//! Downstream consumers — `scripts/check.sh`, the bench-compare gate,
//! and any dashboards fed from `--stats-json` output — parse this JSON
//! by field name. An innocent-looking rename or re-nesting in
//! `to_json` silently breaks them, so the exact serialized form of a
//! fixed snapshot is pinned here. If this test fails because the
//! schema changed *on purpose*, update `tests/golden/snapshot.json`
//! in the same commit and call out the schema change in the PR.

use cubemesh_obs::{HistogramSnapshot, Snapshot, HIST_BUCKETS};

const GOLDEN: &str = include_str!("golden/snapshot.json");

/// A fixed snapshot covering every schema feature: multiple counters
/// (key-sorted), a hit/miss pair, and a histogram with sparse buckets.
fn sample() -> Snapshot {
    let mut s = Snapshot::default();
    s.counters.insert("planner.memo.hit".into(), 30);
    s.counters.insert("planner.memo.miss".into(), 10);
    s.counters.insert("other".into(), 5);
    let mut h = HistogramSnapshot {
        buckets: [0; HIST_BUCKETS],
        count: 3,
        sum: 21,
        min: 1,
        max: 16,
    };
    h.buckets[1] = 1; // lo = 1
    h.buckets[3] = 1; // lo = 4
    h.buckets[5] = 1; // lo = 16
    s.histograms.insert("router.congestion".into(), h);
    s
}

#[test]
fn to_json_matches_golden_file() {
    assert_eq!(
        sample().to_json(),
        GOLDEN.trim_end(),
        "Snapshot::to_json schema drifted from tests/golden/snapshot.json; \
         if intentional, regenerate the golden file and flag the schema change"
    );
}

#[test]
fn golden_file_parses_back_to_the_same_snapshot() {
    let back = Snapshot::from_json(GOLDEN.trim_end()).expect("golden file must stay parseable");
    assert_eq!(back, sample());
}
