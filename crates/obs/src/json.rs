//! Minimal JSON emit + parse, enough for snapshot round-trips.
//!
//! The workspace has no serde, so snapshots hand-serialize themselves
//! (see [`Snapshot::to_json`](crate::Snapshot::to_json)) and this module
//! supplies the reverse direction plus string escaping. The parser
//! accepts the standard grammar (objects, arrays, strings with the
//! common escapes, integers/floats, booleans, null) — sufficient to read
//! back anything the crate emits and to let tests assert structure.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; u64 counters up to 2^53 survive exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key-sorted).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escape `s` into `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns `Err(position, message)` on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, (usize, String)> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err((p.pos, "trailing characters".into()));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, (usize, String)> {
        Err((self.pos, msg.to_owned()))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), (usize, String)> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<JsonValue, (usize, String)> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, (usize, String)> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn object(&mut self) -> Result<JsonValue, (usize, String)> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, (usize, String)> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(out));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, (usize, String)> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| (self.pos, "invalid UTF-8 in string".to_owned()))?;
                    let Some(c) = s.chars().next() else {
                        return self.err("unterminated string");
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, (usize, String)> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| (start, "invalid UTF-8 in number".to_owned()))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| (start, format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basics() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\n\"y"], "c": -2.5e1}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-25.0));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_str(), Some("x\n\"y"));
    }

    #[test]
    fn escape_and_reparse() {
        let nasty = "quote\" slash\\ tab\t nl\n ctrl\u{1} unicode→";
        let mut out = String::new();
        escape_into(&mut out, nasty);
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Obj(Default::default()));
        assert_eq!(parse("[]").unwrap(), JsonValue::Arr(vec![]));
    }
}
