//! Zero-dependency instrumentation for the cubemesh workspace.
//!
//! audit: relaxed-domain(stat counters): monotonic counters/gauges, read
//! for reporting only after workers join.
//!
//! Everything here is built on `std` atomics only — no external crates —
//! so the instrumented hot paths (planner memoization, backtracking
//! search, congestion routing, the Figure-2 census, the network
//! simulator) pay a single relaxed atomic load when stats are disabled.
//!
//! # Model
//!
//! * [`Counter`] — a sharded monotonic `u64` (8 cache-padded shards,
//!   thread-indexed) so rayon workers don't contend on one cache line.
//! * [`Histogram`] — log2-bucketed value/latency distribution with
//!   exact count, sum, min and max.
//! * [`SpanTimer`] — RAII wall-clock timer; nested spans build a
//!   `parent/child` path via a thread-local span stack and record
//!   nanoseconds into a histogram per path.
//! * [`Progress`] — rate-limited `\r`-style progress line with ETA,
//!   safe to tick from rayon workers.
//! * a process-global named-metric registry behind the [`counter!`],
//!   [`histogram!`] and [`span!`] macros, snapshot-able at any point as
//!   human text or JSON ([`snapshot`], [`Snapshot`]).
//! * [`trace`] — hierarchical causal tracing: the same [`span!`] call
//!   sites additionally emit begin/end events with parent/child span
//!   ids into per-thread buffers, drained into Chrome `trace_event`
//!   JSON, folded flamegraph stacks and a stable-schema JSONL log.
//!   Independently gated by [`trace::set_enabled`] (the `--trace` CLI
//!   flags), so stats and tracing compose freely.
//!
//! # Enabling
//!
//! Collection is off by default. Turn it on programmatically with
//! [`set_enabled`] (what the `--stats` CLI flags do) or via the
//! `CUBEMESH_STATS` environment variable (`text`, `json`, or `off`),
//! applied by [`init_from_env`]. When disabled, `inc`/`record`/span
//! bodies short-circuit after one relaxed atomic load.
//!
//! ```
//! cubemesh_obs::set_enabled(true);
//! cubemesh_obs::counter!("demo.widgets").inc();
//! cubemesh_obs::histogram!("demo.sizes").record(37);
//! {
//!     let _t = cubemesh_obs::span!("demo.outer");
//!     // ... timed region ...
//! }
//! let snap = cubemesh_obs::snapshot();
//! assert_eq!(snap.counter("demo.widgets"), Some(1));
//! ```

mod json;
mod metrics;
mod progress;
mod registry;
mod snapshot;
mod span;
pub mod trace;

pub use json::{escape_into as json_escape_into, parse as parse_json, JsonValue};
pub use metrics::{Counter, Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use progress::Progress;
pub use registry::{counter_named, histogram_named, reset, snapshot, Registry};
pub use snapshot::Snapshot;
pub use span::{span_histogram_named, SpanTimer};

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Output format chosen for the end-of-run snapshot dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsMode {
    /// Collection disabled (the default).
    Off,
    /// Human-readable text snapshot.
    Text,
    /// Single-line JSON snapshot.
    Json,
}

/// Global collection switch; hot paths check this with one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Requested output format (0 = off, 1 = text, 2 = json).
static MODE: AtomicU8 = AtomicU8::new(0);

/// Is stat collection currently enabled?
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable stat collection process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    if on && MODE.load(Ordering::Relaxed) == 0 {
        MODE.store(1, Ordering::Relaxed);
    }
    if !on {
        MODE.store(0, Ordering::Relaxed);
    }
}

/// Set the snapshot output format (also enables/disables collection).
pub fn set_mode(mode: StatsMode) {
    match mode {
        StatsMode::Off => {
            MODE.store(0, Ordering::Relaxed);
            ENABLED.store(false, Ordering::Relaxed);
        }
        StatsMode::Text => {
            MODE.store(1, Ordering::Relaxed);
            ENABLED.store(true, Ordering::Relaxed);
        }
        StatsMode::Json => {
            MODE.store(2, Ordering::Relaxed);
            ENABLED.store(true, Ordering::Relaxed);
        }
    }
}

/// The currently-selected output format.
pub fn mode() -> StatsMode {
    match MODE.load(Ordering::Relaxed) {
        1 => StatsMode::Text,
        2 => StatsMode::Json,
        _ => StatsMode::Off,
    }
}

/// Apply the `CUBEMESH_STATS` environment variable (`text` | `json` |
/// `off`/unset). Returns the mode that ended up selected.
pub fn init_from_env() -> StatsMode {
    match std::env::var("CUBEMESH_STATS").ok().as_deref() {
        Some("text") | Some("TEXT") | Some("1") | Some("on") => set_mode(StatsMode::Text),
        Some("json") | Some("JSON") => set_mode(StatsMode::Json),
        _ => {}
    }
    mode()
}

/// If stats are enabled, print the current snapshot to stderr (text mode)
/// or stdout (json mode, one line). No-op when off.
pub fn report() {
    match mode() {
        StatsMode::Off => {}
        StatsMode::Text => eprint!("{}", snapshot().to_text()),
        StatsMode::Json => println!("{}", snapshot().to_json()),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that toggle the process-global enabled flag or
    /// reset the registry, so parallel test threads don't interleave.
    pub fn guard() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_switching() {
        let _g = crate::testutil::guard();
        set_mode(StatsMode::Off);
        assert!(!enabled());
        set_mode(StatsMode::Json);
        assert!(enabled());
        assert_eq!(mode(), StatsMode::Json);
        set_enabled(false);
        assert_eq!(mode(), StatsMode::Off);
        set_enabled(true);
        assert_eq!(mode(), StatsMode::Text);
        set_mode(StatsMode::Off);
    }
}
