//! Process-global named-metric registry.
//!
//! Metrics are leaked `&'static` so instrumented call sites can cache the
//! pointer in a `OnceLock` (see the [`counter!`](crate::counter),
//! [`histogram!`](crate::histogram) and [`span!`](crate::span) macros)
//! and never touch the registry lock again after first use. The lock is
//! only taken on first registration per call site and on snapshot.

use crate::metrics::{Counter, Histogram};
use crate::snapshot::Snapshot;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// The name → metric maps behind the global registry.
#[derive(Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn global() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Look up (or create) the counter registered under `name`. Names are
/// interned: a `&str` with a non-static lifetime is leaked once on first
/// registration.
pub fn counter_named(name: &str) -> &'static Counter {
    let mut reg = global().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(c) = reg.counters.get(name) {
        return c;
    }
    let name: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    reg.counters.insert(name, c);
    c
}

/// Look up (or create) the histogram registered under `name`.
pub fn histogram_named(name: &str) -> &'static Histogram {
    let mut reg = global().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(h) = reg.histograms.get(name) {
        return h;
    }
    let name: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    reg.histograms.insert(name, h);
    h
}

/// Merge-on-snapshot: read every registered metric into an owned
/// [`Snapshot`] (counters sum their shards here).
pub fn snapshot() -> Snapshot {
    let reg = global().lock().unwrap_or_else(|p| p.into_inner());
    Snapshot {
        counters: reg
            .counters
            .iter()
            .map(|(&name, c)| (name.to_owned(), c.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(&name, h)| (name.to_owned(), h.snapshot()))
            .collect(),
    }
}

/// Zero every registered metric. Metrics stay registered (the `&'static`
/// pointers cached at call sites remain valid). Test/bench support.
pub fn reset() {
    let reg = global().lock().unwrap_or_else(|p| p.into_inner());
    for c in reg.counters.values() {
        c.reset();
    }
    for h in reg.histograms.values() {
        h.reset();
    }
}

/// A named global [`Counter`](crate::Counter), resolved once per call
/// site then cached.
///
/// ```
/// cubemesh_obs::set_enabled(true);
/// cubemesh_obs::counter!("example.hits").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __SITE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *__SITE.get_or_init(|| $crate::counter_named($name))
    }};
}

/// A named global [`Histogram`](crate::Histogram), resolved once per
/// call site then cached.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __SITE: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *__SITE.get_or_init(|| $crate::histogram_named($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_round_trip() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        crate::counter!("reg.test.a").add(3);
        crate::histogram!("reg.test.h").record(12);
        let snap = crate::snapshot();
        assert_eq!(snap.counter("reg.test.a"), Some(3));
        assert_eq!(snap.histogram("reg.test.h").unwrap().count, 1);
        // Same name → same metric.
        crate::counter_named("reg.test.a").inc();
        assert_eq!(crate::snapshot().counter("reg.test.a"), Some(4));
        crate::reset();
        assert_eq!(crate::snapshot().counter("reg.test.a"), Some(0));
        crate::set_enabled(false);
    }

    #[test]
    fn merge_on_snapshot_across_threads() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        let c = crate::counter_named("reg.test.par");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(crate::snapshot().counter("reg.test.par"), Some(4000));
        crate::reset();
        crate::set_enabled(false);
    }
}
