//! Hierarchical causal tracing with per-thread buffers and three export
//! formats.
//!
//! audit: relaxed-domain(trace guards): enable flag and sequence counters
//! for per-thread buffers drained after workers join.
//!
//! Where the metric layer ([`Counter`](crate::Counter) /
//! [`Histogram`](crate::Histogram) / [`SpanTimer`](crate::SpanTimer))
//! aggregates, the trace layer *records*: every span open/close becomes
//! an event with a process-unique span id, the id of its parent span on
//! the same thread, the thread's trace id and a monotonic timestamp.
//! Gauges (queue depths, chunk sizes) and instants (planner rule
//! selections) interleave with the spans, so a drained trace is a full
//! causal timeline of one run.
//!
//! # Model
//!
//! * Collection is off by default; [`set_enabled`] turns it on (the
//!   `--trace FILE` CLI flags do this). Disabled call sites cost one
//!   relaxed atomic load — the same zero-cost discipline as the metric
//!   layer.
//! * Events append to a **per-thread** buffer: no locks and no shared
//!   cache lines on the hot path. A thread's buffer moves into the
//!   global store when the thread exits (covers the scoped workers the
//!   rayon shim spawns per parallel region) or when it exceeds a chunk
//!   cap.
//! * [`drain`] merges the store with the calling thread's buffer into a
//!   [`TraceLog`]. Call it after parallel regions have joined — events
//!   still buffered on other *live* threads are not visible.
//!
//! # Exports
//!
//! * [`TraceLog::to_chrome_json`] — Chrome `trace_event` JSON, loadable
//!   in `about:tracing` and [Perfetto](https://ui.perfetto.dev).
//! * [`TraceLog::to_folded`] — folded stacks (`a;b;c self_ns`), the
//!   input format of `flamegraph.pl` / `inferno`.
//! * [`TraceLog::to_jsonl`] — one JSON object per event with a stable
//!   schema (see [`JSONL_SCHEMA_VERSION`]); `ts_ns` is always the last
//!   field, so stripping timestamps for determinism comparisons is a
//!   single-regex affair.
//!
//! Span ids are allocated in event order from a process-global counter,
//! so a single-threaded run produces an identical event sequence (modulo
//! `ts_ns`) on every execution — the determinism gate in
//! `scripts/check.sh` relies on this.

use crate::json::escape_into;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Version of the [`to_jsonl`](TraceLog::to_jsonl) event schema; bumped
/// on any field rename, reorder or removal. Emitted in the leading
/// `meta` line.
pub const JSONL_SCHEMA_VERSION: u32 = 1;

/// Flush a thread buffer into the global store past this many events.
const CHUNK_CAP: usize = 1 << 16;

/// One trace event. Timestamps are nanoseconds since the process trace
/// epoch (first trace activity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A span opened. `parent == 0` marks a root span on its thread.
    Begin {
        /// Process-unique span id (never 0).
        id: u64,
        /// Enclosing span's id on the same thread, 0 for roots.
        parent: u64,
        /// Span name (the `span!` literal).
        name: &'static str,
        /// Open timestamp.
        ts_ns: u64,
    },
    /// The most recently opened span on this thread closed.
    End {
        /// Id issued by the matching [`TraceEvent::Begin`].
        id: u64,
        /// Close timestamp.
        ts_ns: u64,
    },
    /// A sampled value (rendered as a Chrome counter track).
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// Sampled value.
        value: u64,
        /// Sample timestamp.
        ts_ns: u64,
    },
    /// A point event with a short detail payload.
    Instant {
        /// Event name.
        name: &'static str,
        /// Free-form detail (kept short; escaped on export).
        detail: String,
        /// Event timestamp.
        ts_ns: u64,
    },
}

impl TraceEvent {
    fn ts_ns(&self) -> u64 {
        match *self {
            TraceEvent::Begin { ts_ns, .. }
            | TraceEvent::End { ts_ns, .. }
            | TraceEvent::Gauge { ts_ns, .. }
            | TraceEvent::Instant { ts_ns, .. } => ts_ns,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// Is trace collection currently enabled?
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable trace collection process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Buffers handed over by exited (or overflowing) threads, in handover
/// order. Chunks from one thread stay in chronological order.
#[derive(Default)]
struct Store {
    finished: Vec<(u32, Vec<TraceEvent>)>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

/// This thread's event buffer. The `Drop` impl moves any remaining
/// events into the global store when the thread exits, which is what
/// makes scoped worker threads visible to a later [`drain`].
struct Local {
    tid: u32,
    events: Vec<TraceEvent>,
}

impl Local {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let chunk = std::mem::take(&mut self.events);
        store()
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .finished
            .push((self.tid, chunk));
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_local(f: impl FnOnce(&mut Local)) {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let local = slot.get_or_insert_with(|| Local {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
        });
        f(local);
        if local.events.len() >= CHUNK_CAP {
            local.flush();
        }
    });
}

/// Allocate the next span id (begin events only; 0 is reserved for "no
/// parent").
#[inline]
pub(crate) fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Record a span-open event (called by [`SpanTimer`](crate::SpanTimer)).
pub(crate) fn record_begin(id: u64, parent: u64, name: &'static str) {
    with_local(|l| {
        l.events.push(TraceEvent::Begin {
            id,
            parent,
            name,
            ts_ns: now_ns(),
        })
    });
}

/// Record a span-close event (called by [`SpanTimer`](crate::SpanTimer)).
pub(crate) fn record_end(id: u64) {
    with_local(|l| {
        l.events.push(TraceEvent::End {
            id,
            ts_ns: now_ns(),
        })
    });
}

/// Record a gauge sample. No-op while tracing is disabled.
#[inline]
pub fn gauge(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| {
        l.events.push(TraceEvent::Gauge {
            name,
            value,
            ts_ns: now_ns(),
        })
    });
}

/// Record an instant event with a short detail string. No-op while
/// tracing is disabled.
#[inline]
pub fn instant(name: &'static str, detail: &str) {
    if !enabled() {
        return;
    }
    with_local(|l| {
        l.events.push(TraceEvent::Instant {
            name,
            detail: detail.to_owned(),
            ts_ns: now_ns(),
        })
    });
}

/// Clear all buffered trace state (the calling thread's buffer and every
/// handed-over buffer) and restart span-id allocation, so two runs in
/// one process produce comparable event sequences. Test/bench support.
pub fn reset() {
    store()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .finished
        .clear();
    LOCAL.with(|cell| {
        if let Some(local) = cell.borrow_mut().as_mut() {
            local.events.clear();
        }
    });
    NEXT_SPAN_ID.store(1, Ordering::Relaxed);
}

/// Merge every handed-over thread buffer with the calling thread's
/// buffer into a [`TraceLog`]. Call after parallel regions have joined:
/// buffers still owned by other live threads are not visible. Draining
/// consumes the events; tracing stays in whatever enabled state it was.
pub fn drain() -> TraceLog {
    let mut chunks: Vec<(u32, Vec<TraceEvent>)> = {
        let mut s = store().lock().unwrap_or_else(|p| p.into_inner());
        std::mem::take(&mut s.finished)
    };
    LOCAL.with(|cell| {
        if let Some(local) = cell.borrow_mut().as_mut() {
            if !local.events.is_empty() {
                chunks.push((local.tid, std::mem::take(&mut local.events)));
            }
        }
    });
    // Per-thread chronological order: chunks from one tid were handed
    // over in order, and the sort is stable.
    chunks.sort_by_key(|&(tid, _)| tid);
    let mut events = Vec::with_capacity(chunks.iter().map(|(_, c)| c.len()).sum());
    for (tid, chunk) in chunks {
        events.extend(chunk.into_iter().map(|e| (tid, e)));
    }
    TraceLog { events }
}

/// A drained trace: `(tid, event)` pairs ordered by thread id, then by
/// per-thread emission order.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: Vec<(u32, TraceEvent)>,
}

impl TraceLog {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The `(tid, event)` pairs, for programmatic inspection.
    pub fn events(&self) -> &[(u32, TraceEvent)] {
        &self.events
    }

    /// Chrome `trace_event` JSON (the `about:tracing` / Perfetto format):
    /// spans as `B`/`E` duration events, gauges as `C` counter events,
    /// instants as thread-scoped `i` events. Timestamps are microseconds
    /// with nanosecond fractions.
    pub fn to_chrome_json(&self) -> String {
        // `E` events carry the name too (Perfetto matches by nesting, but
        // named ends survive truncated traces better).
        let mut names: BTreeMap<u64, &'static str> = BTreeMap::new();
        for (_, e) in &self.events {
            if let TraceEvent::Begin { id, name, .. } = e {
                names.insert(*id, name);
            }
        }
        let ts = |out: &mut String, ns: u64| {
            let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
        };
        let mut out = String::new();
        out.push_str("{\"traceEvents\":[\n");
        for (i, (tid, e)) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            match e {
                TraceEvent::Begin {
                    id,
                    parent,
                    name,
                    ts_ns,
                } => {
                    let _ = write!(out, "{{\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":");
                    ts(&mut out, *ts_ns);
                    out.push_str(",\"name\":");
                    escape_into(&mut out, name);
                    let _ = write!(out, ",\"args\":{{\"id\":{id},\"parent\":{parent}}}}}");
                }
                TraceEvent::End { id, ts_ns } => {
                    let _ = write!(out, "{{\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":");
                    ts(&mut out, *ts_ns);
                    out.push_str(",\"name\":");
                    escape_into(&mut out, names.get(id).copied().unwrap_or("?"));
                    out.push('}');
                }
                TraceEvent::Gauge { name, value, ts_ns } => {
                    let _ = write!(out, "{{\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":");
                    ts(&mut out, *ts_ns);
                    out.push_str(",\"name\":");
                    escape_into(&mut out, name);
                    let _ = write!(out, ",\"args\":{{\"value\":{value}}}}}");
                }
                TraceEvent::Instant {
                    name,
                    detail,
                    ts_ns,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":"
                    );
                    ts(&mut out, *ts_ns);
                    out.push_str(",\"name\":");
                    escape_into(&mut out, name);
                    out.push_str(",\"args\":{\"detail\":");
                    escape_into(&mut out, detail);
                    out.push_str("}}");
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Folded stacks: one `frame;frame;frame self_ns` line per distinct
    /// span path, values in nanoseconds of *self* time (child time is
    /// attributed to the child's line). Lines are path-sorted, so the
    /// output is deterministic given identical event sequences. Feed to
    /// `flamegraph.pl` or `inferno-flamegraph` as-is.
    pub fn to_folded(&self) -> String {
        let mut self_ns: BTreeMap<String, u64> = BTreeMap::new();
        // Per-thread replay. Spans are RAII on their thread, so events
        // from one tid are properly nested in emission order.
        let mut tids: Vec<u32> = self.events.iter().map(|&(t, _)| t).collect();
        tids.dedup();
        for tid in tids {
            // Stack frames: (name, child_ns).
            let mut stack: Vec<(&str, u64)> = Vec::new();
            let mut path = String::new();
            let mut starts: Vec<u64> = Vec::new();
            let mut last_ts = 0u64;
            let events = self
                .events
                .iter()
                .filter(|&&(t, _)| t == tid)
                .map(|(_, e)| e);
            let mut close = |stack: &mut Vec<(&str, u64)>,
                             starts: &mut Vec<u64>,
                             path: &mut String,
                             ts: u64| {
                let (Some((name, child_ns)), Some(start)) = (stack.pop(), starts.pop()) else {
                    return;
                };
                let total = ts.saturating_sub(start);
                *self_ns.entry(path.clone()).or_insert(0) += total.saturating_sub(child_ns);
                path.truncate(path.len() - name.len());
                if path.ends_with(';') {
                    path.pop();
                }
                if let Some(top) = stack.last_mut() {
                    top.1 += total;
                }
            };
            for e in events {
                last_ts = e.ts_ns();
                match e {
                    TraceEvent::Begin { name, ts_ns, .. } => {
                        if !path.is_empty() {
                            path.push(';');
                        }
                        path.push_str(name);
                        stack.push((name, 0));
                        starts.push(*ts_ns);
                    }
                    TraceEvent::End { ts_ns, .. } => {
                        if !stack.is_empty() {
                            close(&mut stack, &mut starts, &mut path, *ts_ns);
                        }
                    }
                    TraceEvent::Gauge { .. } | TraceEvent::Instant { .. } => {}
                }
            }
            // Spans still open at the end of the thread's events close at
            // the thread's last timestamp.
            while !stack.is_empty() {
                close(&mut stack, &mut starts, &mut path, last_ts);
            }
        }
        let mut out = String::new();
        for (path, ns) in &self_ns {
            let _ = writeln!(out, "{path} {ns}");
        }
        out
    }

    /// Structured JSONL event log: a leading `meta` line, then one JSON
    /// object per event. Field names and order are stable (schema
    /// guarded by [`JSONL_SCHEMA_VERSION`]); `ts_ns` is always last, so
    /// `sed -E 's/,"ts_ns":[0-9]+//'` yields the timestamp-free event
    /// sequence the determinism gate compares.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"ev\":\"meta\",\"schema\":{JSONL_SCHEMA_VERSION},\"events\":{}}}",
            self.events.len()
        );
        for (tid, e) in &self.events {
            match e {
                TraceEvent::Begin {
                    id,
                    parent,
                    name,
                    ts_ns,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ev\":\"begin\",\"tid\":{tid},\"id\":{id},\"parent\":{parent},\
                         \"name\":"
                    );
                    escape_into(&mut out, name);
                    let _ = writeln!(out, ",\"ts_ns\":{ts_ns}}}");
                }
                TraceEvent::End { id, ts_ns } => {
                    let _ = writeln!(
                        out,
                        "{{\"ev\":\"end\",\"tid\":{tid},\"id\":{id},\"ts_ns\":{ts_ns}}}"
                    );
                }
                TraceEvent::Gauge { name, value, ts_ns } => {
                    let _ = write!(out, "{{\"ev\":\"gauge\",\"tid\":{tid},\"name\":");
                    escape_into(&mut out, name);
                    let _ = writeln!(out, ",\"value\":{value},\"ts_ns\":{ts_ns}}}");
                }
                TraceEvent::Instant {
                    name,
                    detail,
                    ts_ns,
                } => {
                    let _ = write!(out, "{{\"ev\":\"instant\",\"tid\":{tid},\"name\":");
                    escape_into(&mut out, name);
                    out.push_str(",\"detail\":");
                    escape_into(&mut out, detail);
                    let _ = writeln!(out, ",\"ts_ns\":{ts_ns}}}");
                }
            }
        }
        out
    }

    /// Write all three exports next to `path`: the Chrome JSON at `path`
    /// itself, folded stacks at `path` with extension `folded`, and the
    /// JSONL log at `path` with extension `jsonl`. Returns the paths
    /// written.
    pub fn write_files(&self, path: &Path) -> std::io::Result<Vec<PathBuf>> {
        let folded = path.with_extension("folded");
        let jsonl = path.with_extension("jsonl");
        std::fs::write(path, self.to_chrome_json())?;
        std::fs::write(&folded, self.to_folded())?;
        std::fs::write(&jsonl, self.to_jsonl())?;
        Ok(vec![path.to_path_buf(), folded, jsonl])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strip `,"ts_ns":N` from a JSONL export — the determinism
    /// comparison the check.sh gate performs with sed.
    fn strip_ts(jsonl: &str) -> String {
        let mut out = String::new();
        for line in jsonl.lines() {
            match line.find(",\"ts_ns\":") {
                Some(i) => {
                    let tail = &line[i + 9..];
                    let end = tail
                        .find(|c: char| !c.is_ascii_digit())
                        .unwrap_or(tail.len());
                    out.push_str(&line[..i]);
                    out.push_str(&tail[end..]);
                }
                None => out.push_str(line),
            }
            out.push('\n');
        }
        out
    }

    fn run_workload() -> TraceLog {
        {
            let _outer = crate::span!("trace_test_outer");
            gauge("trace_test_gauge", 7);
            {
                let _inner = crate::span!("trace_test_inner");
                instant("trace_test_instant", "detail!");
            }
        }
        drain()
    }

    #[test]
    fn spans_record_parent_child_ids() {
        let _g = crate::testutil::guard();
        reset();
        set_enabled(true);
        let log = run_workload();
        set_enabled(false);
        assert_eq!(log.len(), 6, "{:?}", log.events());
        let begins: Vec<_> = log
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::Begin {
                    id, parent, name, ..
                } => Some((*id, *parent, *name)),
                _ => None,
            })
            .collect();
        assert_eq!(begins.len(), 2);
        let (outer_id, outer_parent, outer_name) = begins[0];
        let (_, inner_parent, inner_name) = begins[1];
        assert_eq!(outer_name, "trace_test_outer");
        assert_eq!(inner_name, "trace_test_inner");
        assert_eq!(outer_parent, 0, "outer span is a root");
        assert_eq!(inner_parent, outer_id, "inner span's parent is outer");
        // Ends pair up in LIFO order.
        let ends: Vec<u64> = log
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::End { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ends.len(), 2);
        assert_eq!(ends[1], outer_id);
    }

    #[test]
    fn exports_are_valid_and_deterministic_modulo_timestamps() {
        let _g = crate::testutil::guard();
        reset();
        set_enabled(true);
        let log_a = run_workload();
        reset();
        let log_b = run_workload();
        set_enabled(false);

        // Chrome export parses as JSON with one event object per record.
        let chrome = log_a.to_chrome_json();
        let parsed = crate::parse_json(&chrome).expect("chrome export is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        assert_eq!(events.len(), log_a.len());
        assert!(chrome.contains("\"ph\":\"C\""), "gauge became a counter");
        assert!(chrome.contains("\"ph\":\"i\""), "instant event present");

        // Folded stacks contain both paths with positive self time.
        let folded = log_a.to_folded();
        assert!(
            folded.lines().any(|l| l.starts_with("trace_test_outer ")),
            "{folded}"
        );
        assert!(
            folded
                .lines()
                .any(|l| l.starts_with("trace_test_outer;trace_test_inner ")),
            "{folded}"
        );

        // JSONL: stable schema, identical across runs once timestamps go.
        let a = log_a.to_jsonl();
        let b = log_b.to_jsonl();
        assert!(a.starts_with("{\"ev\":\"meta\",\"schema\":1,"));
        assert_eq!(strip_ts(&a), strip_ts(&b), "event sequences must match");
        assert_ne!(a, b, "wall-clock timestamps differ between runs");
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = crate::testutil::guard();
        reset();
        set_enabled(false);
        {
            let _s = crate::span!("trace_test_disabled");
            gauge("trace_test_disabled_gauge", 1);
            instant("trace_test_disabled_instant", "");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn worker_thread_buffers_survive_thread_exit() {
        let _g = crate::testutil::guard();
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = crate::span!("trace_test_worker");
            });
        });
        let log = drain();
        set_enabled(false);
        let names: Vec<&str> = log
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::Begin { name, .. } => Some(*name),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["trace_test_worker"]);
    }

    #[test]
    fn stats_and_trace_compose() {
        let _g = crate::testutil::guard();
        reset();
        crate::reset();
        crate::set_enabled(true);
        set_enabled(true);
        {
            let _s = crate::span!("trace_test_both");
        }
        set_enabled(false);
        crate::set_enabled(false);
        let log = drain();
        assert_eq!(log.len(), 2, "begin + end");
        assert!(
            crate::snapshot()
                .histogram("span.trace_test_both")
                .is_some(),
            "histogram recorded alongside the trace"
        );
        crate::reset();
    }
}
