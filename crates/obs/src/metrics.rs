//! Core metric primitives: sharded counters and log2 histograms.
//!
//! audit: relaxed-domain(stat counters): sharded monotonic counters and
//! histogram buckets, aggregated only after workers join.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of counter shards. Power of two so the thread index wraps with
/// a mask; 8 is enough to keep a handful of rayon workers off each
/// other's cache lines without bloating every counter.
const SHARDS: usize = 8;

/// Pad each shard to its own cache line to prevent false sharing.
#[repr(align(64))]
struct Shard(AtomicU64);

thread_local! {
    /// This thread's shard index, assigned round-robin on first use.
    static SHARD_IDX: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1)
    };
}

/// A monotonic event counter, sharded across cache lines so concurrent
/// rayon workers increment mostly-disjoint atomics. Reads merge shards.
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter {
            shards: [
                Shard(AtomicU64::new(0)),
                Shard(AtomicU64::new(0)),
                Shard(AtomicU64::new(0)),
                Shard(AtomicU64::new(0)),
                Shard(AtomicU64::new(0)),
                Shard(AtomicU64::new(0)),
                Shard(AtomicU64::new(0)),
                Shard(AtomicU64::new(0)),
            ],
        }
    }

    /// Add one. No-op while stats are disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. No-op while stats are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        SHARD_IDX.with(|&i| self.shards[i].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Merge-on-snapshot: the sum over all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zero every shard (test/bench support).
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// Histogram buckets: bucket 0 holds the value 0, bucket `b > 0` holds
/// values `v` with `floor(log2 v) == b - 1`, i.e. `[2^(b-1), 2^b)`.
pub const HIST_BUCKETS: usize = 65;

/// Inclusive-exclusive bounds of bucket `b` (`lo..hi`); bucket 0 is `0..1`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 1)
    } else {
        (
            1u64 << (b - 1),
            (1u128 << b).min(u64::MAX as u128 + 1) as u64,
        )
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A lock-free log2-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, congestion levels, queue depths, ...). Tracks exact
/// count, sum, min and max alongside the bucket array.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        // `[AtomicU64::new(0); N]` needs Copy; build via const block instead.
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. No-op while stats are disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples of `v` in one batch — what callers
    /// that tally locally in a hot loop use to flush.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 || !crate::enabled() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v * n, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy (relaxed loads; exact once
    /// writers have quiesced, e.g. after a parallel region joins).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Clear all samples (test/bench support).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Owned point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping beyond `u64::MAX`).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of the bucket containing the q-quantile,
    /// computed by walking bucket counts. `q` in `[0, 1]`.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The bucket's exclusive upper edge, clamped by the true max.
                return (bucket_bounds(b).1 - 1).min(self.max);
            }
        }
        self.max
    }

    /// Index of the highest non-empty bucket (None when empty).
    pub fn last_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        let _g = crate::testutil::guard();
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_of(lo), b, "lo of bucket {b}");
            if hi > lo + 1 && hi - 1 > lo {
                assert_eq!(bucket_of(hi - 1), b, "hi-1 of bucket {b}");
            }
        }
    }

    #[test]
    fn counter_merges_shards() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        c.reset();
        assert_eq!(c.get(), 0);
        crate::set_enabled(false);
    }

    #[test]
    fn histogram_stats() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 9, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 116);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert_eq!(s.buckets[0], 1); // the 0
        assert_eq!(s.buckets[1], 2); // the 1s
        assert_eq!(s.buckets[3], 1); // 5 in [4,8)
        assert_eq!(s.buckets[4], 1); // 9 in [8,16)
        assert_eq!(s.buckets[7], 1); // 100 in [64,128)
        assert!((s.mean() - 116.0 / 6.0).abs() < 1e-9);
        h.reset();
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.snapshot().min, 0);
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = crate::testutil::guard();
        crate::set_enabled(false);
        let c = Counter::new();
        let h = Histogram::new();
        c.inc();
        h.record(7);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
    }
}
