//! Owned snapshots of the metric registry, with text and JSON export.

use crate::json::{escape_into, JsonValue};
use crate::metrics::{bucket_bounds, HistogramSnapshot, HIST_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A point-in-time copy of every registered metric (see
/// [`snapshot`](crate::snapshot)). Key-sorted, so text/JSON output is
/// deterministic given identical metric values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Snapshot of the named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Render as indented human-readable text. Derived hit rates are
    /// appended for every `<base>.hit` / `<base>.miss` counter pair.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== cubemesh stats ==\n");
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {v}");
            }
            // Derived rates for hit/miss pairs (e.g. planner.memo).
            for (name, &hits) in &self.counters {
                if let Some(base) = name.strip_suffix(".hit") {
                    if let Some(&misses) = self.counters.get(&format!("{base}.miss")) {
                        let total = hits + misses;
                        if total > 0 {
                            let _ = writeln!(
                                out,
                                "  {:<44} {:.1}% ({hits}/{total})",
                                format!("{base}.hit_rate"),
                                100.0 * hits as f64 / total as f64
                            );
                        }
                    }
                }
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<44} n={} mean={:.1} min={} max={}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                );
                if h.count > 0 {
                    out.push_str("    ");
                    out.push_str(&render_buckets(h));
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Render as a single-line JSON object:
    /// `{"counters": {name: value, ...}, "histograms": {name: {"count": ..,
    /// "sum": .., "min": .., "max": .., "buckets": [[lo, count], ...]}}}`.
    /// Bucket entries are sparse (only non-empty buckets, as
    /// `[bucket_lower_bound, count]` pairs).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.min, h.max
            );
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "[{},{c}]", bucket_bounds(b).0);
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Rebuild a snapshot from [`to_json`](Self::to_json) output.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let v = crate::json::parse(text).map_err(|(pos, m)| format!("at byte {pos}: {m}"))?;
        let mut snap = Snapshot::default();
        if let Some(JsonValue::Obj(counters)) = v.get("counters") {
            for (name, val) in counters {
                let n = val
                    .as_u64()
                    .ok_or_else(|| format!("counter {name}: not a u64"))?;
                snap.counters.insert(name.clone(), n);
            }
        }
        if let Some(JsonValue::Obj(hists)) = v.get("histograms") {
            for (name, h) in hists {
                let field = |k: &str| -> Result<u64, String> {
                    h.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("histogram {name}: bad '{k}'"))
                };
                let mut hs = HistogramSnapshot {
                    buckets: [0; HIST_BUCKETS],
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                };
                let buckets = h
                    .get("buckets")
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| format!("histogram {name}: bad 'buckets'"))?;
                for pair in buckets {
                    let pair = pair.as_arr().filter(|p| p.len() == 2);
                    let (lo, c) = match pair {
                        Some([lo, c]) => match (lo.as_u64(), c.as_u64()) {
                            (Some(lo), Some(c)) => (lo, c),
                            _ => return Err(format!("histogram {name}: bad bucket pair")),
                        },
                        _ => return Err(format!("histogram {name}: bad bucket pair")),
                    };
                    let b = (0..HIST_BUCKETS)
                        .find(|&b| bucket_bounds(b).0 == lo)
                        .ok_or_else(|| format!("histogram {name}: unknown bucket lo {lo}"))?;
                    hs.buckets[b] = c;
                }
                snap.histograms.insert(name.clone(), hs);
            }
        }
        Ok(snap)
    }
}

/// Compact one-line bucket sketch, e.g. `[1,2): 3  [4,8): 17`.
fn render_buckets(h: &HistogramSnapshot) -> String {
    let mut out = String::new();
    for (b, &c) in h.buckets.iter().enumerate() {
        if c > 0 {
            let (lo, hi) = bucket_bounds(b);
            if !out.is_empty() {
                out.push_str("  ");
            }
            let _ = write!(out, "[{lo},{hi}): {c}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("planner.memo.hit".into(), 30);
        s.counters.insert("planner.memo.miss".into(), 10);
        s.counters.insert("other".into(), 5);
        let mut h = HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 3,
            sum: 21,
            min: 1,
            max: 16,
        };
        h.buckets[1] = 1;
        h.buckets[3] = 1;
        h.buckets[5] = 1;
        s.histograms.insert("router.congestion".into(), h);
        s
    }

    #[test]
    fn text_has_hit_rate() {
        let text = sample().to_text();
        assert!(text.contains("planner.memo.hit_rate"), "{text}");
        assert!(text.contains("75.0% (30/40)"), "{text}");
        assert!(text.contains("router.congestion"), "{text}");
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let json = s.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(s, back);
        // And the emitted JSON is valid for the generic parser.
        assert!(crate::parse_json(&json).is_ok());
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Snapshot::from_json("{").is_err());
        assert!(Snapshot::from_json(r#"{"counters":{"x":-1},"histograms":{}}"#).is_err());
    }
}
