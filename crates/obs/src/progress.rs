//! Rate-limited progress reporting with ETA.
//!
//! audit: relaxed-domain(progress ticks): approximate tick counts for a
//! human-facing rate-limited display; no cross-thread invariants.
//!
//! [`Progress`] is safe to tick concurrently from rayon workers: ticks
//! are a relaxed `fetch_add`, and only the worker that wins a
//! compare-exchange on the "next print due" timestamp formats and writes
//! the line (at most ~5 lines/second to stderr).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Minimum interval between printed progress lines, in milliseconds.
const PRINT_EVERY_MS: u64 = 200;

/// A concurrent progress meter for a loop with a known (or unknown)
/// total. Prints `\r`-rewritten lines like:
///
/// ```text
/// census: 113/512 (22.1%)  41.3 items/s  eta 9.7s
/// ```
pub struct Progress {
    label: &'static str,
    total: u64,
    done: AtomicU64,
    start: Instant,
    /// ms-since-start after which the next print is allowed.
    next_print_ms: AtomicU64,
    /// Print even when stats are globally disabled.
    always: bool,
    /// Whether anything was printed (to know if a final newline is owed).
    printed: AtomicU64,
}

impl Progress {
    /// A progress meter that only prints while stats are enabled.
    /// `total == 0` means "unknown" (no percentage or ETA shown). The
    /// first line appears one interval in, so loops that finish faster
    /// than that stay silent.
    pub fn new(label: &'static str, total: u64) -> Progress {
        Progress {
            label,
            total,
            done: AtomicU64::new(0),
            start: Instant::now(),
            next_print_ms: AtomicU64::new(PRINT_EVERY_MS),
            always: false,
            printed: AtomicU64::new(0),
        }
    }

    /// A progress meter that prints regardless of the stats switch —
    /// for long-running binaries (catalog discovery) whose progress
    /// output is the user interface, not an opt-in diagnostic.
    pub fn always(label: &'static str, total: u64) -> Progress {
        Progress {
            always: true,
            ..Progress::new(label, total)
        }
    }

    /// Record `n` completed items; prints if a print is due.
    pub fn tick(&self, n: u64) {
        if !self.always && !crate::enabled() {
            return;
        }
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        let elapsed_ms = self.start.elapsed().as_millis() as u64;
        let due = self.next_print_ms.load(Ordering::Relaxed);
        if elapsed_ms < due {
            return;
        }
        // One winner prints; losers skip.
        if self
            .next_print_ms
            .compare_exchange(
                due,
                elapsed_ms + PRINT_EVERY_MS,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return;
        }
        self.printed.store(1, Ordering::Relaxed);
        eprint!("\r{}", self.render(done, elapsed_ms));
    }

    /// Current count of completed items.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Render the line that would be printed at `done` items after
    /// `elapsed_ms` (exposed for tests).
    pub fn render(&self, done: u64, elapsed_ms: u64) -> String {
        let rate = if elapsed_ms > 0 {
            done as f64 * 1000.0 / elapsed_ms as f64
        } else {
            0.0
        };
        if self.total > 0 {
            let pct = 100.0 * done as f64 / self.total as f64;
            let remaining = self.total.saturating_sub(done);
            let eta = if rate > 0.0 {
                format!("  eta {:.1}s", remaining as f64 / rate)
            } else {
                String::new()
            };
            format!(
                "{}: {done}/{} ({pct:.1}%)  {rate:.1} items/s{eta}",
                self.label, self.total
            )
        } else {
            format!("{}: {done}  {rate:.1} items/s", self.label)
        }
    }

    /// Finish: print the final tally (on its own line) if anything was
    /// ever printed, so partial `\r` lines don't swallow later output.
    pub fn finish(&self) {
        if !self.always && !crate::enabled() {
            return;
        }
        let done = self.done.load(Ordering::Relaxed);
        let elapsed_ms = self.start.elapsed().as_millis() as u64;
        if self.printed.load(Ordering::Relaxed) != 0 || self.always {
            eprintln!("\r{}", self.render(done, elapsed_ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_with_total() {
        let p = Progress::new("census", 200);
        let line = p.render(50, 2000);
        assert!(line.contains("census: 50/200 (25.0%)"), "{line}");
        assert!(line.contains("25.0 items/s"), "{line}");
        assert!(line.contains("eta 6.0s"), "{line}");
    }

    #[test]
    fn render_unknown_total() {
        let p = Progress::new("probe", 0);
        let line = p.render(7, 1000);
        assert!(line.contains("probe: 7"), "{line}");
        assert!(!line.contains("eta"), "{line}");
    }

    #[test]
    fn ticks_accumulate_across_threads() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        let p = Progress::new("t", 0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        p.tick(1);
                    }
                });
            }
        });
        assert_eq!(p.done(), 400);
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_progress_is_silent_and_uncounted() {
        let _g = crate::testutil::guard();
        crate::set_enabled(false);
        let p = Progress::new("t", 10);
        p.tick(3);
        assert_eq!(p.done(), 0);
        let a = Progress::always("t", 10);
        a.tick(3);
        assert_eq!(a.done(), 3);
    }
}
