//! RAII span timers with a thread-local span stack.
//!
//! A [`SpanTimer`] measures the wall-clock time between its construction
//! and drop and records the elapsed nanoseconds into a histogram named
//! `span.<path>`, where `<path>` is the `/`-joined chain of enclosing
//! span names on the current thread (`span.plan/route`, say). Paths are
//! interned so steady-state recording does not allocate.

use crate::metrics::Histogram;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Resolve the histogram for a span path (exposed for tests; spans
/// record under `span.<path>`).
pub fn span_histogram_named(path: &str) -> &'static Histogram {
    crate::histogram_named(&format!("span.{path}"))
}

/// An RAII wall-clock timer. Construct with [`SpanTimer::new`] (or the
/// [`span!`](crate::span) macro); the elapsed time is recorded when the
/// value drops. Inert (records nothing, tracks no stack) while stats are
/// disabled.
pub struct SpanTimer {
    start: Option<Instant>,
    hist: Option<&'static Histogram>,
}

impl SpanTimer {
    /// Open a span named `name`. The name must be a string literal (or
    /// otherwise `'static`) so stack frames never allocate.
    pub fn new(name: &'static str) -> SpanTimer {
        if !crate::enabled() {
            return SpanTimer {
                start: None,
                hist: None,
            };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        SpanTimer {
            start: Some(Instant::now()),
            hist: Some(crate::histogram_named(&format!("span.{path}"))),
        }
    }

    /// Elapsed time so far, if the span is live.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_nanos() as u64)
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let (Some(start), Some(hist)) = (self.start, self.hist) {
            hist.record(start.elapsed().as_nanos() as u64);
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// Open an RAII [`SpanTimer`](crate::SpanTimer); bind it to keep the
/// span open for a scope:
///
/// ```
/// cubemesh_obs::set_enabled(true);
/// {
///     let _outer = cubemesh_obs::span!("doc_outer");
///     let _inner = cubemesh_obs::span!("doc_inner"); // records span.doc_outer/doc_inner
/// }
/// cubemesh_obs::set_enabled(false);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanTimer::new($name)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn nesting_builds_paths() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        {
            let _a = crate::span!("span_test_outer");
            {
                let _b = crate::span!("span_test_inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let snap = crate::snapshot();
        let outer = snap
            .histogram("span.span_test_outer")
            .expect("outer span recorded");
        let inner = snap
            .histogram("span.span_test_outer/span_test_inner")
            .expect("nested span path recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.max >= inner.max, "outer encloses inner");
        assert!(inner.min >= 1_000_000, "slept ≥ 1ms");
        crate::reset();
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = crate::testutil::guard();
        crate::set_enabled(false);
        {
            let t = crate::span!("span_test_disabled");
            assert!(t.elapsed_ns().is_none());
        }
        assert!(crate::snapshot()
            .histogram("span.span_test_disabled")
            .is_none());
    }
}
