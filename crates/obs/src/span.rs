//! RAII span timers with a thread-local span stack.
//!
//! A [`SpanTimer`] measures the wall-clock time between its construction
//! and drop. Two independent sinks consume it, each behind its own
//! zero-cost guard:
//!
//! * **Stats** ([`crate::enabled`]): the elapsed nanoseconds are
//!   recorded into a histogram named `span.<path>`, where `<path>` is
//!   the `/`-joined chain of enclosing span names on the current thread
//!   (`span.plan/route`, say). Paths are interned so steady-state
//!   recording does not allocate.
//! * **Trace** ([`crate::trace::enabled`]): the open and close become
//!   [`TraceEvent`](crate::trace::TraceEvent)s carrying a process-unique
//!   span id and the id of the enclosing span, feeding the Chrome /
//!   folded-stack / JSONL exports in [`crate::trace`].

use crate::metrics::Histogram;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Spans currently open on this thread, outermost first: the name
    /// (for stats paths) and the trace span id (0 when tracing was off
    /// at open, so a child opened under a stats-only parent still reads
    /// parent id 0).
    static SPAN_STACK: RefCell<Vec<(&'static str, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Resolve the histogram for a span path (exposed for tests; spans
/// record under `span.<path>`).
pub fn span_histogram_named(path: &str) -> &'static Histogram {
    crate::histogram_named(&format!("span.{path}"))
}

/// An RAII wall-clock timer. Construct with [`SpanTimer::new`] (or the
/// [`span!`](crate::span) macro); the elapsed time is recorded when the
/// value drops. Inert (records nothing, tracks no stack) while both
/// stats and tracing are disabled.
pub struct SpanTimer {
    start: Option<Instant>,
    hist: Option<&'static Histogram>,
    /// Trace span id, 0 when tracing was disabled at open.
    trace_id: u64,
    /// Did `new` push a stack frame (and so must `drop` pop it)?
    pushed: bool,
}

impl SpanTimer {
    /// Open a span named `name`. The name must be a string literal (or
    /// otherwise `'static`) so stack frames never allocate.
    pub fn new(name: &'static str) -> SpanTimer {
        let stats = crate::enabled();
        let tracing = crate::trace::enabled();
        if !stats && !tracing {
            return SpanTimer {
                start: None,
                hist: None,
                trace_id: 0,
                pushed: false,
            };
        }
        let mut trace_id = 0;
        let mut parent = 0;
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if tracing {
                trace_id = crate::trace::next_span_id();
                parent = stack.last().map_or(0, |&(_, id)| id);
            }
            stack.push((name, trace_id));
            if stats {
                let mut path = String::new();
                for (i, (frame, _)) in stack.iter().enumerate() {
                    if i > 0 {
                        path.push('/');
                    }
                    path.push_str(frame);
                }
                Some(path)
            } else {
                None
            }
        });
        if tracing {
            crate::trace::record_begin(trace_id, parent, name);
        }
        SpanTimer {
            start: stats.then(Instant::now),
            hist: path.map(|p| crate::histogram_named(&format!("span.{p}"))),
            trace_id,
            pushed: true,
        }
    }

    /// Elapsed time so far, if the span is timing (stats enabled at open).
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_nanos() as u64)
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if !self.pushed {
            return;
        }
        if let (Some(start), Some(hist)) = (self.start, self.hist) {
            hist.record(start.elapsed().as_nanos() as u64);
        }
        if self.trace_id != 0 {
            crate::trace::record_end(self.trace_id);
        }
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Open an RAII [`SpanTimer`](crate::SpanTimer); bind it to keep the
/// span open for a scope:
///
/// ```
/// cubemesh_obs::set_enabled(true);
/// {
///     let _outer = cubemesh_obs::span!("doc_outer");
///     let _inner = cubemesh_obs::span!("doc_inner"); // records span.doc_outer/doc_inner
/// }
/// cubemesh_obs::set_enabled(false);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanTimer::new($name)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn nesting_builds_paths() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        {
            let _a = crate::span!("span_test_outer");
            {
                let _b = crate::span!("span_test_inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let snap = crate::snapshot();
        let outer = snap
            .histogram("span.span_test_outer")
            .expect("outer span recorded");
        let inner = snap
            .histogram("span.span_test_outer/span_test_inner")
            .expect("nested span path recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.max >= inner.max, "outer encloses inner");
        assert!(inner.min >= 1_000_000, "slept ≥ 1ms");
        crate::reset();
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = crate::testutil::guard();
        crate::set_enabled(false);
        {
            let t = crate::span!("span_test_disabled");
            assert!(t.elapsed_ns().is_none());
        }
        assert!(crate::snapshot()
            .histogram("span.span_test_disabled")
            .is_none());
    }

    #[test]
    fn trace_only_spans_balance_the_stack() {
        // Tracing without stats must still push/pop the stack correctly,
        // and record no histograms.
        let _g = crate::testutil::guard();
        crate::set_enabled(false);
        crate::trace::reset();
        crate::trace::set_enabled(true);
        {
            let _a = crate::span!("span_test_trace_only");
            {
                let _b = crate::span!("span_test_trace_only_inner");
            }
        }
        crate::trace::set_enabled(false);
        // A later stats-enabled span sees an empty stack (no leaked frames).
        crate::set_enabled(true);
        {
            let _c = crate::span!("span_test_after_trace");
        }
        crate::set_enabled(false);
        let snap = crate::snapshot();
        assert!(snap.histogram("span.span_test_trace_only").is_none());
        assert!(
            snap.histogram("span.span_test_after_trace").is_some(),
            "path built from a clean stack"
        );
        assert_eq!(crate::trace::drain().len(), 4, "two begins, two ends");
        crate::reset();
        crate::trace::reset();
    }
}
