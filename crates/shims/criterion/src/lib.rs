//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal wall-clock benchmark harness with criterion's
//! surface: `criterion_group!` / `criterion_main!`, `Criterion::
//! bench_function`, benchmark groups with `sample_size`, and `Bencher::
//! iter` / `iter_batched`.
//!
//! Methodology: after a short calibration run, each benchmark executes
//! `sample_size` samples (default 10) and reports the median, minimum,
//! and maximum per-iteration time. No statistical regression analysis —
//! but the numbers are stable enough for the ≤-few-percent comparisons
//! the repo's EXPERIMENTS.md makes, and the output format is greppable:
//!
//! ```text
//! bench planner/21x9x5 ... median 184.2 µs/iter (min 181.9, max 196.0, 10 samples)
//! ```
//!
//! Binaries accept the substring filters cargo passes through
//! (`cargo bench -- <filter>`); `--bench` and other flags are ignored.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How a batched setup's cost is amortized. The shim times each routine
/// call individually, so the variants behave identically.
#[derive(Clone, Copy, Debug, Default)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    #[default]
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Measurement settings shared by a `Criterion` and its groups.
#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    /// Target wall-clock time for one sample.
    sample_time: Duration,
    filters: Vec<String>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            sample_time: Duration::from_millis(50),
            filters: Vec::new(),
        }
    }
}

/// The benchmark driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Read CLI filters the way `cargo bench -- <substr>` delivers them.
    fn from_args() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion { settings: Settings { filters, ..Settings::default() } }
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.settings, &id.to_string(), f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings.clone(),
            _parent: self,
        }
    }
}

/// A named group (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Run one benchmark inside the group (`group/name` in the output).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.settings, &format!("{}/{}", self.name, id), f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Per-benchmark measurement state handed to the closure (mirrors
/// `criterion::Bencher`).
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Measured wall-clock time for the sample.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh untimed `setup` product per call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(settings: &Settings, name: &str, mut f: F) {
    if !settings.filters.is_empty()
        && !settings.filters.iter().any(|flt| name.contains(flt.as_str()))
    {
        return;
    }

    // Calibrate: find an iteration count that fills ~sample_time.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= settings.sample_time || iters >= 1 << 24 {
            break;
        }
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let target = settings.sample_time.as_secs_f64();
        let want = if per_iter > 0.0 { (target / per_iter).ceil() as u64 } else { iters * 16 };
        iters = want.clamp(iters + 1, iters * 16);
    }

    let mut samples: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "bench {} ... median {} (min {}, max {}, {} samples, {} iters/sample)",
        name,
        fmt_time(median),
        fmt_time(min),
        fmt_time(max),
        samples.len(),
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{:.3} s/iter", secs)
    } else if secs >= 1e-3 {
        format!("{:.1} ms/iter", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.1} µs/iter", secs * 1e6)
    } else {
        format!("{:.1} ns/iter", secs * 1e9)
    }
}

/// Declare a group of benchmark functions (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `fn main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::__from_args();
            $($group(&mut c);)+
        }
    };
}

impl Criterion {
    /// Entry point used by [`criterion_main!`]; not public API.
    #[doc(hidden)]
    pub fn __from_args() -> Self {
        Criterion::from_args()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion {
            settings: Settings {
                sample_size: 3,
                sample_time: Duration::from_micros(200),
                filters: vec![],
            },
        };
        let mut count = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn groups_and_batched_iter() {
        let mut c = Criterion {
            settings: Settings {
                sample_size: 2,
                sample_time: Duration::from_micros(100),
                filters: vec![],
            },
        };
        let mut g = c.benchmark_group("shim_group");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64, 2, 3], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut c = Criterion {
            settings: Settings {
                sample_size: 2,
                sample_time: Duration::from_micros(100),
                filters: vec!["only_this".into()],
            },
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran, "filtered benchmark must not run");
    }
}
