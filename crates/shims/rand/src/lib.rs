//! Offline shim for the subset of the `rand` 0.10 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation covering exactly the
//! call sites in this repository:
//!
//! * `rand::rngs::StdRng::seed_from_u64`
//! * `Rng::random::<f64>()`, `Rng::random_range(a..b)`
//! * `SliceRandom::shuffle`
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha-based generator of the real crate, but statistically strong
//! enough for the annealer and the Monte-Carlo estimators (which only
//! need uniformity, not cryptographic quality). Deterministic per seed.

use std::ops::Range;

/// Core trait: a source of uniform 64-bit values.
pub trait RngCore {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;
}

/// xoshiro256** generator, seeded via SplitMix64 like the reference
/// implementation recommends.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seed deterministically from a single `u64` (API of
    /// `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from an RNG (`StandardUniform` stand-in).
pub trait Sample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits onto [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (`SampleRange` stand-in).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                let span = (self.end - self.start) as u64;
                // Lemire-style widening multiply: negligible bias, no loop.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// The convenience methods every `RngCore` gets (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Slice shuffling (mirrors `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..i + 1).sample_from(rng);
            self.swap(i, j);
        }
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    pub use super::StdRng;
}

/// The glob-import surface (mirrors `rand::prelude`).
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, Sample, SampleRange, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {}", mean);
    }

    #[test]
    fn range_sampling_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values hit");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
