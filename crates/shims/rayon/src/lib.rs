//! Offline shim for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal data-parallel implementation backed by
//! `std::thread::scope`. It covers exactly the call sites in this
//! repository: `into_par_iter()` on integer ranges (and `Vec`), followed
//! by `.map(f)` and a terminal `.sum()`, `.reduce(identity, op)` or
//! `.collect()`.
//!
//! Work is split into one contiguous chunk per available worker. Integer
//! ranges are split *arithmetically* — chunk `c` of `start..end` is
//! described by an offset and a length, never materialized — so
//! paper-scale node ranges (hundreds of millions of indices) cost no
//! memory. `Vec` inputs are split by moving out contiguous blocks.
//!
//! Like real rayon, the worker count honours `RAYON_NUM_THREADS` (it is
//! re-read per parallel region, so a bench can toggle it between runs);
//! otherwise `std::thread::available_parallelism()` decides.
//!
//! # Analyzer contract
//!
//! The static analyzer (`cubemesh-audit analyze`) discovers parallel
//! regions from the fan-out API names this shim exports. The shim
//! *declares* its own surface with the annotations below, which the
//! analyzer merges with its defaults — so adding a combinator here
//! without annotating it shows up as an analysis gap in review, not as
//! a silently unscanned parallel region.
//!
//! * audit: fanout-source(into_par_iter)
//! * audit: fanout-entry(map)
//! * audit: fanout-entry(sum)
//! * audit: fanout-entry(reduce)
//! * audit: fanout-entry(collect)
//! * audit: fanout-direct(spawn)
//! * audit: fanout-direct(scope)

use std::ops::{Range, RangeInclusive};

/// Number of worker threads to fan out across.
fn workers() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of worker threads a parallel region would use right now
/// (mirrors `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    workers()
}

/// A stable name for the execution backend a parallel region would use
/// right now. This is a *shim*, not real rayon: with one worker the
/// region runs inline on the caller ("shim-sequential"); with more it
/// fans out over `std::thread::scope` with one contiguous chunk per
/// worker ("shim-scoped-threads"). Benchmarks embed this so baselines
/// recorded on a 1-core host are not mistaken for work-stealing numbers.
pub fn backend() -> &'static str {
    if workers() == 1 {
        "shim-sequential"
    } else {
        "shim-scoped-threads"
    }
}

/// Conversion into a (shim) parallel iterator — mirrors
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Start data-parallel iteration.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// How a [`ParIter`] produces its elements.
enum Source<T> {
    /// An owned buffer, split into contiguous blocks.
    Items(Vec<T>),
    /// An arithmetic index space: element `i` is `make(i)`, `i < len`.
    /// Nothing is materialized until a worker produces its own chunk.
    Gen {
        len: usize,
        make: Box<dyn Fn(usize) -> T + Send + Sync>,
    },
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                let start = self.start;
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParIter {
                    source: Source::Gen {
                        len,
                        make: Box::new(move |i| start + i as $t),
                    },
                }
            }
        }
        impl IntoParallelIterator for RangeInclusive<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                let (start, end) = self.into_inner();
                let len = if end >= start { (end - start) as usize + 1 } else { 0 };
                ParIter {
                    source: Source::Gen {
                        len,
                        make: Box::new(move |i| start + i as $t),
                    },
                }
            }
        }
    )*};
}

impl_into_par_range!(usize, u64, u32, i32);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            source: Source::Items(self),
        }
    }
}

/// A (shim) parallel iterator over an index space or an owned buffer.
pub struct ParIter<T> {
    source: Source<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            source: self.source,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; terminal operations run the map across
/// worker threads.
pub struct ParMap<T, F> {
    source: Source<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Apply the map across worker threads, preserving input order.
    fn run(self) -> Vec<R> {
        let ParMap { source, f } = self;
        match source {
            Source::Items(items) => run_items(items, &f),
            Source::Gen { len, make } => run_gen(len, &*make, &f),
        }
    }

    /// Sum the mapped values (mirrors `ParallelIterator::sum`). Each
    /// worker sums its own chunk; only the per-worker partials are
    /// combined at the end, so nothing is materialized.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R> + std::iter::Sum<S> + Send,
    {
        let ParMap { source, f } = self;
        let partials: Vec<S> = match source {
            Source::Items(items) => fold_items(items, &f, |it| it.sum()),
            Source::Gen { len, make } => fold_gen(len, &*make, &f, |it| it.sum()),
        };
        partials.into_iter().sum()
    }

    /// Fold the mapped values with an identity constructor and an
    /// associative operator (mirrors `ParallelIterator::reduce`). Each
    /// worker folds its own chunk from `identity()`; partials are folded
    /// at the end.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let ParMap { source, f } = self;
        let op = &op;
        let identity = &identity;
        let partials: Vec<R> = match source {
            Source::Items(items) => {
                fold_items(items, &f, |it| it.fold(identity(), |a, b| op(a, b)))
            }
            Source::Gen { len, make } => {
                fold_gen(len, &*make, &f, |it| it.fold(identity(), |a, b| op(a, b)))
            }
        };
        partials.into_iter().fold(identity(), |a, b| op(a, b))
    }

    /// Collect the mapped values in input order (mirrors
    /// `ParallelIterator::collect` for indexed iterators).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        self.run().into_iter().collect()
    }
}

/// Fold an owned buffer across workers: each worker reduces its block
/// through `finish`; the per-worker results come back in block order.
fn fold_items<T, R, F, S, G>(items: Vec<T>, f: &F, finish: G) -> Vec<S>
where
    T: Send,
    R: Send,
    S: Send,
    F: Fn(T) -> R + Sync,
    G: Fn(&mut dyn Iterator<Item = R>) -> S + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = workers().min(n);
    if threads == 1 {
        return vec![finish(&mut items.into_iter().map(f))];
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let finish = &finish;
    let mut out: Vec<S> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || finish(&mut c.into_iter().map(f))))
            .collect();
        for h in handles {
            out.push(h.join().expect("shim rayon worker panicked"));
        }
    });
    out
}

/// Fold an arithmetic index space across workers (see [`fold_items`]).
/// Chunk boundaries are computed, not collected.
fn fold_gen<T, R, F, S, G>(
    len: usize,
    make: &(dyn Fn(usize) -> T + Send + Sync),
    f: &F,
    finish: G,
) -> Vec<S>
where
    T: Send,
    R: Send,
    S: Send,
    F: Fn(T) -> R + Sync,
    G: Fn(&mut dyn Iterator<Item = R>) -> S + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = workers().min(len);
    if threads == 1 {
        return vec![finish(&mut (0..len).map(|i| f(make(i))))];
    }
    let chunk = len.div_ceil(threads);
    let bounds: Vec<(usize, usize)> = (0..threads)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(len)))
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    let finish = &finish;
    let mut out: Vec<S> = Vec::with_capacity(bounds.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|(lo, hi)| scope.spawn(move || finish(&mut (lo..hi).map(|i| f(make(i))))))
            .collect();
        for h in handles {
            out.push(h.join().expect("shim rayon worker panicked"));
        }
    });
    out
}

/// Map an owned buffer across workers, block per worker, preserving order.
fn run_items<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = workers().min(n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("shim rayon worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Map an arithmetic index space across workers. Chunk boundaries are
/// computed, not collected: worker `w` owns indices `[w·⌈n/t⌉, …)`.
fn run_gen<T, R, F>(len: usize, make: &(dyn Fn(usize) -> T + Send + Sync), f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = workers().min(len);
    if threads == 1 {
        return (0..len).map(|i| f(make(i))).collect();
    }
    let chunk = len.div_ceil(threads);
    let bounds: Vec<(usize, usize)> = (0..threads)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(len)))
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    let mut out: Vec<Vec<R>> = Vec::with_capacity(bounds.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|(lo, hi)| {
                scope.spawn(move || (lo..hi).map(|i| f(make(i))).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("shim rayon worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// The glob-import surface (mirrors `rayon::prelude`).
pub mod prelude {
    pub use super::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_sum_matches_sequential() {
        let par: u64 = (1u64..=1000).into_par_iter().map(|x| x * x).sum();
        let seq: u64 = (1u64..=1000).map(|x| x * x).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn reduce_matches_sequential() {
        let par = (0usize..100)
            .into_par_iter()
            .map(|x| ([x as u64; 2], x as u64))
            .reduce(
                || ([0u64; 2], 0u64),
                |(mut a1, b1), (a2, b2)| {
                    a1[0] += a2[0];
                    a1[1] += a2[1];
                    (a1, b1 + b2)
                },
            );
        let total: u64 = (0..100u64).sum();
        assert_eq!(par, ([total; 2], total));
    }

    #[test]
    fn empty_input_is_fine() {
        let s: u64 = (0u64..0).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 0);
        let v: Vec<u64> = (5u64..5).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0usize..10_000).into_par_iter().map(|x| x * 2).collect();
        let seq: Vec<usize> = (0usize..10_000).map(|x| x * 2).collect();
        assert_eq!(v, seq);
        let owned: Vec<i32> = vec![3, 1, 4, 1, 5]
            .into_par_iter()
            .map(|x| x + 1)
            .collect();
        assert_eq!(owned, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn huge_range_is_not_materialized() {
        // Pre-fix, `into_par_iter()` eagerly collected the range into a
        // Vec — for this range that is 2^40 elements (8 TiB), an
        // immediate OOM. The arithmetic split makes construction O(1).
        let it = (0u64..1 << 40).into_par_iter();
        drop(it);
        // And a large-but-consumable range folds without materializing
        // (sum of worker partials only).
        let n: u64 = 1 << 22;
        let s: u64 = (0u64..n).into_par_iter().map(|x| x).sum();
        assert_eq!(s, n * (n - 1) / 2);
    }

    #[test]
    fn inclusive_range_endpoints() {
        let v: Vec<u32> = (7u32..=9).into_par_iter().map(|x| x).collect();
        assert_eq!(v, vec![7, 8, 9]);
    }
}
