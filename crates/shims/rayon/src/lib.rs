//! Offline shim for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal data-parallel implementation backed by
//! `std::thread::scope`. It covers exactly the call sites in this
//! repository: `into_par_iter()` on integer ranges (and `Vec`), followed
//! by `.map(f)` and a terminal `.sum()` or `.reduce(identity, op)`.
//!
//! Work is split into one contiguous chunk per available core. The
//! censuses that use this fan out over at most a few hundred outer items,
//! each carrying a large inner loop, so chunked splitting (rather than
//! rayon's work-stealing) loses little.

use std::ops::{Range, RangeInclusive};

/// Number of worker threads to fan out across.
fn workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Conversion into a (shim) parallel iterator — mirrors
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Start data-parallel iteration.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
        impl IntoParallelIterator for RangeInclusive<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_into_par_range!(usize, u64, u32, i32);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A materialized parallel iterator (the shim buffers items up front; the
/// workloads here fan out over at most a few hundred outer items).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// The result of [`ParIter::map`]; terminal operations run the map across
/// worker threads.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Apply the map across worker threads, preserving input order.
    fn run(self) -> Vec<R> {
        let ParMap { items, f } = self;
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = workers().min(n);
        if threads == 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &f;
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut items = items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("shim rayon worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }

    /// Sum the mapped values (mirrors `ParallelIterator::sum`).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        self.run().into_iter().sum()
    }

    /// Fold the mapped values with an identity constructor and an
    /// associative operator (mirrors `ParallelIterator::reduce`).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        self.run().into_iter().fold(identity(), &op)
    }
}

/// The glob-import surface (mirrors `rayon::prelude`).
pub mod prelude {
    pub use super::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_sum_matches_sequential() {
        let par: u64 = (1u64..=1000).into_par_iter().map(|x| x * x).sum();
        let seq: u64 = (1u64..=1000).map(|x| x * x).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn reduce_matches_sequential() {
        let par = (0usize..100)
            .into_par_iter()
            .map(|x| ([x as u64; 2], x as u64))
            .reduce(
                || ([0u64; 2], 0u64),
                |(mut a1, b1), (a2, b2)| {
                    a1[0] += a2[0];
                    a1[1] += a2[1];
                    (a1, b1 + b2)
                },
            );
        let total: u64 = (0..100u64).sum();
        assert_eq!(par, ([total; 2], total));
    }

    #[test]
    fn empty_input_is_fine() {
        let s: u64 = (0u64..0).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 0);
    }
}
