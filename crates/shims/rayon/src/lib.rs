//! Offline shim for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal data-parallel facade. It covers exactly the call
//! sites in this repository: `into_par_iter()` on integer ranges (and
//! `Vec`), followed by `.map(f)` and a terminal `.sum()`,
//! `.reduce(identity, op)` or `.collect()`.
//!
//! Execution is delegated to the persistent work-stealing pool in
//! `cubemesh-pool` (DESIGN.md §10). This shim owns only the *splitting
//! policy*: an input of `n` elements becomes `min(n, threads ×
//! OVERSPLIT)` contiguous blocks, so the pool's steal-half rebalancing
//! has enough granularity to absorb ragged per-element costs (census
//! sweeps, axis-split searches, many-to-one folds) while per-task
//! overhead stays negligible. Integer ranges are split *arithmetically*
//! — block `c` of `start..end` is described by bounds, never
//! materialized — so paper-scale node ranges (hundreds of millions of
//! indices) cost no memory. `Vec` inputs are split by moving out
//! contiguous blocks.
//!
//! Worker-count resolution and the backend honesty string both come
//! from `cubemesh-pool` (`CUBEMESH_THREADS` > `RAYON_NUM_THREADS` >
//! `available_parallelism()`, re-read per region); a worker panic is
//! resumed on the calling thread with its original payload.
//!
//! Block results always come back in input order, and all reductions
//! here fold the per-block partials in block order — stealing never
//! changes output bytes (the determinism argument in DESIGN.md §10).
//!
//! # Analyzer contract
//!
//! The static analyzer (`cubemesh-audit analyze`) discovers parallel
//! regions from the fan-out API names this shim exports. The shim
//! *declares* its own surface with the annotations below, which the
//! analyzer merges with its defaults — so adding a combinator here
//! without annotating it shows up as an analysis gap in review, not as
//! a silently unscanned parallel region. `run_tasks` is the pool's
//! direct submission API: closures handed to it fan out exactly like
//! `spawn`, so it is declared as a direct fan-out for the pool crate
//! and any future caller.
//!
//! * audit: fanout-source(into_par_iter)
//! * audit: fanout-entry(map)
//! * audit: fanout-entry(sum)
//! * audit: fanout-entry(reduce)
//! * audit: fanout-entry(collect)
//! * audit: fanout-direct(spawn)
//! * audit: fanout-direct(scope)
//! * audit: fanout-direct(run_tasks)

use std::ops::{Range, RangeInclusive};
use std::sync::Mutex;

/// The number of worker threads a parallel region would use right now
/// (mirrors `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    cubemesh_pool::effective_threads()
}

/// A stable name for the execution backend a parallel region would use
/// right now, from the pool's single source of truth: "pool-sequential"
/// (one effective thread: regions run inline on the caller) or
/// "pool-steal" (persistent work-stealing workers). Benchmarks embed
/// this so baselines recorded on a 1-core host are not mistaken for
/// multi-core numbers.
pub fn backend() -> &'static str {
    cubemesh_pool::backend_name()
}

/// How many contiguous blocks to cut `len` elements into for `threads`
/// workers: oversplit so stealing can rebalance ragged blocks.
fn split_count(len: usize, threads: usize) -> usize {
    len.min(threads * cubemesh_pool::OVERSPLIT)
}

/// Conversion into a (shim) parallel iterator — mirrors
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Start data-parallel iteration.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// How a [`ParIter`] produces its elements.
enum Source<T> {
    /// An owned buffer, split into contiguous blocks.
    Items(Vec<T>),
    /// An arithmetic index space: element `i` is `make(i)`, `i < len`.
    /// Nothing is materialized until a worker produces its own block.
    Gen {
        len: usize,
        make: Box<dyn Fn(usize) -> T + Send + Sync>,
    },
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                let start = self.start;
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParIter {
                    source: Source::Gen {
                        len,
                        make: Box::new(move |i| start + i as $t),
                    },
                }
            }
        }
        impl IntoParallelIterator for RangeInclusive<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                let (start, end) = self.into_inner();
                let len = if end >= start { (end - start) as usize + 1 } else { 0 };
                ParIter {
                    source: Source::Gen {
                        len,
                        make: Box::new(move |i| start + i as $t),
                    },
                }
            }
        }
    )*};
}

impl_into_par_range!(usize, u64, u32, i32);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            source: Source::Items(self),
        }
    }
}

/// A (shim) parallel iterator over an index space or an owned buffer.
pub struct ParIter<T> {
    source: Source<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            source: self.source,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; terminal operations run the map on
/// the work-stealing pool.
pub struct ParMap<T, F> {
    source: Source<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Apply the map across the pool, preserving input order.
    fn run(self) -> Vec<R> {
        let ParMap { source, f } = self;
        match source {
            Source::Items(items) => run_items(items, &f),
            Source::Gen { len, make } => run_gen(len, &*make, &f),
        }
    }

    /// Sum the mapped values (mirrors `ParallelIterator::sum`). Each
    /// block sums itself; only the per-block partials are combined at
    /// the end (in block order), so nothing is materialized.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R> + std::iter::Sum<S> + Send,
    {
        let ParMap { source, f } = self;
        let partials: Vec<S> = match source {
            Source::Items(items) => fold_items(items, &f, |it| it.sum()),
            Source::Gen { len, make } => fold_gen(len, &*make, &f, |it| it.sum()),
        };
        partials.into_iter().sum()
    }

    /// Fold the mapped values with an identity constructor and an
    /// associative operator (mirrors `ParallelIterator::reduce`). Each
    /// block folds itself from `identity()`; partials are folded at the
    /// end in block order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let ParMap { source, f } = self;
        let op = &op;
        let identity = &identity;
        let partials: Vec<R> = match source {
            Source::Items(items) => {
                fold_items(items, &f, |it| it.fold(identity(), |a, b| op(a, b)))
            }
            Source::Gen { len, make } => {
                fold_gen(len, &*make, &f, |it| it.fold(identity(), |a, b| op(a, b)))
            }
        };
        partials.into_iter().fold(identity(), |a, b| op(a, b))
    }

    /// Collect the mapped values in input order (mirrors
    /// `ParallelIterator::collect` for indexed iterators).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        self.run().into_iter().collect()
    }
}

/// Cut an owned buffer into contiguous blocks wrapped for by-value
/// handoff to pool tasks (task `i` takes block `i` exactly once).
fn blocks_of<T: Send>(items: Vec<T>, tasks: usize) -> Vec<Mutex<Option<Vec<T>>>> {
    let per = items.len().div_ceil(tasks);
    let mut rest = items;
    let mut blocks = Vec::with_capacity(tasks);
    while !rest.is_empty() {
        let tail = rest.split_off(rest.len().min(per));
        blocks.push(Mutex::new(Some(std::mem::replace(&mut rest, tail))));
    }
    blocks
}

/// Take block `i` out of its cell (each block is taken exactly once).
fn take_block<T>(blocks: &[Mutex<Option<Vec<T>>>], i: usize) -> Vec<T> {
    blocks[i]
        .lock()
        .map(|mut g| g.take())
        .ok()
        .flatten()
        .unwrap_or_default()
}

/// Arithmetic block bounds: `tasks` contiguous sub-ranges of `0..len`.
fn bounds_of(len: usize, tasks: usize) -> Vec<(usize, usize)> {
    let per = len.div_ceil(tasks);
    (0..tasks)
        .map(|w| (w * per, ((w + 1) * per).min(len)))
        .filter(|&(lo, hi)| lo < hi)
        .collect()
}

/// Fold an owned buffer across the pool: each block reduces itself
/// through `finish`; the per-block results come back in block order.
fn fold_items<T, R, F, S, G>(items: Vec<T>, f: &F, finish: G) -> Vec<S>
where
    T: Send,
    R: Send,
    S: Send,
    F: Fn(T) -> R + Sync,
    G: Fn(&mut dyn Iterator<Item = R>) -> S + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = cubemesh_pool::effective_threads().min(n);
    if threads == 1 {
        return vec![finish(&mut items.into_iter().map(f))];
    }
    let blocks = blocks_of(items, split_count(n, threads));
    let blocks = &blocks;
    cubemesh_pool::run_tasks(blocks.len(), |i| {
        finish(&mut take_block(blocks, i).into_iter().map(f))
    })
}

/// Fold an arithmetic index space across the pool (see [`fold_items`]).
/// Block boundaries are computed, not collected.
fn fold_gen<T, R, F, S, G>(
    len: usize,
    make: &(dyn Fn(usize) -> T + Send + Sync),
    f: &F,
    finish: G,
) -> Vec<S>
where
    T: Send,
    R: Send,
    S: Send,
    F: Fn(T) -> R + Sync,
    G: Fn(&mut dyn Iterator<Item = R>) -> S + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = cubemesh_pool::effective_threads().min(len);
    if threads == 1 {
        return vec![finish(&mut (0..len).map(|i| f(make(i))))];
    }
    let bounds = bounds_of(len, split_count(len, threads));
    let bounds = &bounds;
    cubemesh_pool::run_tasks(bounds.len(), |i| {
        let (lo, hi) = bounds[i];
        finish(&mut (lo..hi).map(|j| f(make(j))))
    })
}

/// Map an owned buffer across the pool, block per task, preserving order.
fn run_items<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = cubemesh_pool::effective_threads().min(n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let blocks = blocks_of(items, split_count(n, threads));
    let blocks = &blocks;
    let parts: Vec<Vec<R>> = cubemesh_pool::run_tasks(blocks.len(), |i| {
        take_block(blocks, i).into_iter().map(f).collect()
    });
    parts.into_iter().flatten().collect()
}

/// Map an arithmetic index space across the pool. Block boundaries are
/// computed, not collected: task `w` owns indices `[w·⌈n/t⌉, …)`.
fn run_gen<T, R, F>(len: usize, make: &(dyn Fn(usize) -> T + Send + Sync), f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = cubemesh_pool::effective_threads().min(len);
    if threads == 1 {
        return (0..len).map(|i| f(make(i))).collect();
    }
    let bounds = bounds_of(len, split_count(len, threads));
    let bounds = &bounds;
    let parts: Vec<Vec<R>> = cubemesh_pool::run_tasks(bounds.len(), |i| {
        let (lo, hi) = bounds[i];
        (lo..hi).map(|j| f(make(j))).collect()
    });
    parts.into_iter().flatten().collect()
}

/// The glob-import surface (mirrors `rayon::prelude`).
pub mod prelude {
    pub use super::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use cubemesh_pool::with_threads;

    #[test]
    fn map_sum_matches_sequential() {
        let par: u64 = (1u64..=1000).into_par_iter().map(|x| x * x).sum();
        let seq: u64 = (1u64..=1000).map(|x| x * x).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn reduce_matches_sequential() {
        let par = (0usize..100)
            .into_par_iter()
            .map(|x| ([x as u64; 2], x as u64))
            .reduce(
                || ([0u64; 2], 0u64),
                |(mut a1, b1), (a2, b2)| {
                    a1[0] += a2[0];
                    a1[1] += a2[1];
                    (a1, b1 + b2)
                },
            );
        let total: u64 = (0..100u64).sum();
        assert_eq!(par, ([total; 2], total));
    }

    #[test]
    fn empty_input_is_fine() {
        let s: u64 = (0u64..0).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 0);
        let v: Vec<u64> = (5u64..5).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0usize..10_000).into_par_iter().map(|x| x * 2).collect();
        let seq: Vec<usize> = (0usize..10_000).map(|x| x * 2).collect();
        assert_eq!(v, seq);
        let owned: Vec<i32> = vec![3, 1, 4, 1, 5]
            .into_par_iter()
            .map(|x| x + 1)
            .collect();
        assert_eq!(owned, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn collect_preserves_order_across_thread_counts() {
        let seq: Vec<usize> = (0usize..10_000).map(|x| x * 2).collect();
        for t in [2, 8] {
            let par: Vec<usize> = with_threads(t, || {
                (0usize..10_000).into_par_iter().map(|x| x * 2).collect()
            });
            assert_eq!(par, seq, "threads={t}");
        }
    }

    #[test]
    fn huge_range_is_not_materialized() {
        // Pre-fix, `into_par_iter()` eagerly collected the range into a
        // Vec — for this range that is 2^40 elements (8 TiB), an
        // immediate OOM. The arithmetic split makes construction O(1).
        let it = (0u64..1 << 40).into_par_iter();
        drop(it);
        // And a large-but-consumable range folds without materializing
        // (sum of worker partials only).
        let n: u64 = 1 << 22;
        let s: u64 = (0u64..n).into_par_iter().map(|x| x).sum();
        assert_eq!(s, n * (n - 1) / 2);
    }

    #[test]
    fn inclusive_range_endpoints() {
        let v: Vec<u32> = (7u32..=9).into_par_iter().map(|x| x).collect();
        assert_eq!(v, vec![7, 8, 9]);
    }

    #[test]
    fn worker_panic_surfaces_original_message() {
        // The old scope-based shim died with `join().expect("shim rayon
        // worker panicked")`, hiding the payload; the pool resumes the
        // first panic's payload on the caller.
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let _: Vec<u64> = (0u64..256)
                    .into_par_iter()
                    .map(|x| {
                        if x == 77 {
                            panic!("worker payload 77");
                        }
                        x
                    })
                    .collect();
            })
        });
        let payload = match caught {
            Err(p) => p,
            Ok(_) => panic!("expected a propagated panic"),
        };
        let msg = payload.downcast_ref::<&str>().copied();
        assert_eq!(msg, Some("worker payload 77"));
    }
}
