//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness covering exactly the
//! surface the test suites call:
//!
//! * the `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {...} }`
//!   macro form with `name in strategy` bindings;
//! * integer-range strategies (`1usize..7`), `any::<T>()`,
//!   `prop::collection::vec(strategy, len_range)`, and
//!   `prop::sample::select(vec![...])`;
//! * `prop_assert!` / `prop_assert_eq!` (mapped to plain assertions).
//!
//! No shrinking: a failing case panics with the generated inputs printed,
//! which is enough to reproduce (generation is deterministic per test
//! name). Cases default to 64 per property.

use std::ops::Range;

/// Deterministic per-test generator (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seed from the test function's name, so every run of a given test
    /// explores the same sequence of cases.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator — the shim's stand-in for `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

/// Full-domain strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Arbitrary values of `T` over its whole domain (`proptest::arbitrary::any`).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u64, u32, u16, u8, i64, i32, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `prop::collection::vec` strategy.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::sample::select` strategy.
pub struct Select<T>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "select from empty set");
        self.0[rng.below(self.0.len() as u64) as usize].clone()
    }
}

/// The `prop::` namespace (`collection`, `sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Vectors of `element` with a length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Select;

        /// Uniform choice from the given values.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            Select(values)
        }
    }
}

/// Per-property configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Prints the failing case's inputs if the property body panics.
pub struct CaseReporter {
    /// Rendered inputs for the current case.
    pub rendered: String,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("proptest shim: failing case inputs: {}", self.rendered);
        }
    }
}

/// `prop_assert!` — plain `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block: expands each contained property into a plain
/// test running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __reporter = $crate::CaseReporter {
                    rendered: format!(
                        concat!("case {}: ", $(stringify!($arg), " = {:?}  ",)+),
                        __case, $(&$arg),+
                    ),
                };
                { $body }
                drop(__reporter);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// The glob-import surface (mirrors `proptest::prelude`).
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_strategy_len(dims in prop::collection::vec(1usize..7, 1..4)) {
            prop_assert!(!dims.is_empty() && dims.len() < 4);
            prop_assert!(dims.iter().all(|&d| (1..7).contains(&d)));
        }

        #[test]
        fn select_picks_members(v in prop::sample::select(vec![2usize, 5, 9])) {
            prop_assert!(v == 2 || v == 5 || v == 9);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u32>()) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::TestRng::from_name("t");
        let mut b = super::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
