//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response line per request. Requests are
//! parsed with the workspace's own JSON parser
//! ([`cubemesh_obs::parse_json`]); responses are rendered by hand so
//! the service stays zero-dependency.
//!
//! ```text
//! → {"op":"plan","shapes":[[3,5,17],[5,5,5]]}
//! ← {"ok":true,"results":[{...certificate, floors, gap...}, ...]}
//! → {"op":"resolve","shape":[5,6,7]}
//! ← {"ok":true,"resolved":{...measured embedding figures...}}
//! → {"op":"stats"}            ← {"ok":true,"stats":{...}}
//! → {"op":"shutdown"}         ← {"ok":true,"shutting_down":true}
//! ```
//!
//! Batched `plan` queries answer per-shape: an inadmissible shape gets
//! an `{"shape":..,"error":..}` entry without failing its batch.
//! Fingerprints travel as `"0x…"` strings — JSON numbers are doubles
//! and would corrupt 64-bit hashes.

use crate::engine::{QueryEngine, Resolved, Source, StatsSnapshot};
use crate::ServiceError;
use cubemesh_obs::{json_escape_into, parse_json, JsonValue};
use cubemesh_plandb::{PlanRecord, RecordStatus};
use std::fmt::Write as _;

/// Bound on shapes per batched request, so one line cannot queue
/// unbounded work.
pub const MAX_BATCH: usize = 1 << 16;

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Batched shape → plan query.
    Plan {
        /// The queried extents, one entry per shape.
        shapes: Vec<Vec<usize>>,
    },
    /// Deferred construction of one shape's embedding.
    Resolve {
        /// The shape to resolve.
        dims: Vec<usize>,
    },
    /// Engine statistics.
    Stats,
    /// Graceful shutdown.
    Shutdown,
}

fn parse_dims(v: &JsonValue) -> Result<Vec<usize>, String> {
    let arr = v.as_arr().ok_or("shape must be an array of extents")?;
    let mut dims = Vec::with_capacity(arr.len().min(16));
    for d in arr {
        let n = d.as_u64().ok_or("extents must be non-negative integers")?;
        dims.push(usize::try_from(n).map_err(|_| "extent too large".to_owned())?);
    }
    Ok(dims)
}

/// Parse one request line. Errors are protocol-level (malformed JSON,
/// unknown op, oversized batch) — shape-level problems surface in the
/// per-shape results instead.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line).map_err(|(at, what)| format!("bad JSON at byte {at}: {what}"))?;
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"op\"")?;
    match op {
        "plan" => {
            let shapes = v
                .get("shapes")
                .and_then(JsonValue::as_arr)
                .ok_or("plan needs \"shapes\": [[extents], ...]")?;
            if shapes.len() > MAX_BATCH {
                return Err(format!("batch of {} exceeds {MAX_BATCH}", shapes.len()));
            }
            let mut out = Vec::with_capacity(shapes.len());
            for s in shapes {
                out.push(parse_dims(s)?);
            }
            Ok(Request::Plan { shapes: out })
        }
        "resolve" => {
            let dims = v
                .get("shape")
                .ok_or("resolve needs \"shape\": [extents]")
                .and_then(|s| parse_dims(s).map_err(|_| "resolve needs \"shape\": [extents]"))?;
            Ok(Request::Resolve { dims })
        }
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

fn push_dims(out: &mut String, dims: &[usize]) {
    out.push('[');
    for (i, d) in dims.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{d}");
    }
    out.push(']');
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    // `json_escape_into` emits the surrounding quotes itself.
    let _ = write!(out, "\"{key}\":");
    json_escape_into(out, val);
}

fn push_record(out: &mut String, rec: &PlanRecord, source: Source) {
    out.push_str("{\"shape\":");
    push_dims(out, &rec.key);
    let status = match rec.status {
        RecordStatus::Certified => "certified",
        RecordStatus::NoDilation2Plan => "no-dilation2-plan",
    };
    let _ = write!(
        out,
        ",\"status\":\"{status}\",\"source\":\"{}\",",
        source.as_str()
    );
    push_str_field(out, "strategy", &rec.strategy);
    let _ = write!(out, ",\"confidence\":{},", rec.confidence);
    push_str_field(out, "plan", &rec.plan_text);
    let _ = write!(
        out,
        ",\"fingerprint\":\"0x{:016x}\",\"certificate\":{{\"host_dim\":{},\"dilation\":{},\"congestion\":{},\"load\":{},\"expansion\":{},\"minimal\":{}}},\"floors\":{{\"host_dim\":{},\"dilation\":{},\"congestion\":{},\"load\":{}}},\"gap\":{{\"host_dim\":{},\"dilation\":{}}}}}",
        rec.fingerprint,
        rec.cert.host_dim,
        rec.cert.dilation,
        rec.cert.congestion,
        rec.cert.load,
        rec.cert.expansion,
        rec.cert.minimal,
        rec.floors.host_dim,
        rec.floors.dilation,
        rec.floors.congestion,
        rec.floors.load,
        rec.host_dim_gap(),
        rec.dilation_gap(),
    );
}

fn push_shape_error(out: &mut String, dims: &[usize], err: &ServiceError) {
    out.push_str("{\"shape\":");
    push_dims(out, dims);
    out.push(',');
    push_str_field(out, "error", &err.to_string());
    out.push('}');
}

fn render_resolved(r: &Resolved) -> String {
    let mut out = String::from("{\"ok\":true,\"resolved\":{\"shape\":");
    push_dims(&mut out, &r.key);
    let _ = write!(
        out,
        ",\"nodes\":{},\"host_dim\":{},\"dilation\":{},\"congestion\":{},\"expansion\":{},\"minimal\":{},\"within_certificate\":{}}}}}",
        r.nodes, r.host_dim, r.dilation, r.congestion, r.expansion, r.minimal, r.within_certificate,
    );
    out
}

fn render_stats(s: &StatsSnapshot) -> String {
    format!(
        "{{\"ok\":true,\"stats\":{{\"db_records\":{},\"overlay_records\":{},\"db_hits\":{},\"overlay_hits\":{},\"live_plans\":{},\"errors\":{}}}}}",
        s.db_records, s.overlay_records, s.db_hits, s.overlay_hits, s.live_plans, s.errors,
    )
}

/// Render a protocol-level error response.
pub fn render_error(detail: &str) -> String {
    let mut out = String::from("{\"ok\":false,");
    push_str_field(&mut out, "error", detail);
    out.push('}');
    out
}

/// Handle one request line against `engine`. Returns the response line
/// (without the trailing newline) and whether the server should shut
/// down after sending it.
pub fn handle_line(engine: &QueryEngine, line: &str) -> (String, bool) {
    let _span = cubemesh_obs::span!("service.request");
    let req = match parse_request(line) {
        Ok(req) => req,
        Err(detail) => {
            cubemesh_obs::counter!("service.request.bad").inc();
            return (render_error(&detail), false);
        }
    };
    match req {
        Request::Plan { shapes } => {
            let mut out = String::from("{\"ok\":true,\"results\":[");
            for (i, dims) in shapes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match engine.lookup(dims) {
                    Ok((rec, source)) => push_record(&mut out, &rec, source),
                    Err(e) => push_shape_error(&mut out, dims, &e),
                }
            }
            out.push_str("]}");
            cubemesh_obs::counter!("service.request.plan").inc();
            (out, false)
        }
        Request::Resolve { dims } => match engine.resolve(&dims) {
            Ok(r) => (render_resolved(&r), false),
            Err(e) => (render_error(&e.to_string()), false),
        },
        Request::Stats => (render_stats(&engine.stats()), false),
        Request::Shutdown => ("{\"ok\":true,\"shutting_down\":true}".to_owned(), true),
    }
}
