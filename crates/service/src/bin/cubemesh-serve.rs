//! `cubemesh-serve` — build the census plan database and serve it.
//!
//! ```text
//! cubemesh-serve build --max-axis 16 --out plans.db [--checkpoint sweep.ck] [--chunk 512]
//! cubemesh-serve --db plans.db [--addr 127.0.0.1:0] [--workers 4] [--overflow cold.ck]
//! cubemesh-serve query --addr HOST:PORT [--shapes "3x5x17;5x5x5"] [--census-max 16 --count 1024]
//! cubemesh-serve shutdown --addr HOST:PORT
//! ```
//!
//! The serve mode prints one `{"listening":"HOST:PORT"}` line once the
//! socket is bound, then blocks until a `shutdown` request or
//! SIGINT/SIGTERM. The query mode is the check-script client: it sends
//! one batched `plan` request, verifies every result carries a
//! certificate and a fingerprint, and prints a one-line JSON summary.

use cubemesh_obs::{parse_json, JsonValue};
use cubemesh_plandb::{build, BuildConfig};
use cubemesh_service::{serve, EngineConfig, QueryEngine, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, SeqCst);
}

fn install_signal_handlers() {
    // std has no signal API; bind the libc symbol directly (std already
    // links libc) rather than adding a dependency.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

struct Args {
    flags: std::collections::BTreeMap<String, String>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut flags = std::collections::BTreeMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            let val = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_owned(), val.clone());
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (mode, rest) = match argv.first().map(String::as_str) {
        Some("build") => ("build", &argv[1..]),
        Some("query") => ("query", &argv[1..]),
        Some("shutdown") => ("shutdown", &argv[1..]),
        _ => ("serve", &argv[..]),
    };
    let result = Args::parse(rest).and_then(|args| match mode {
        "build" => run_build(&args),
        "query" => run_query(&args),
        "shutdown" => run_shutdown(&args),
        _ => run_serve(&args),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cubemesh-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_build(args: &Args) -> Result<(), String> {
    let max_axis = args.usize_or("max-axis", 16)?;
    let out = PathBuf::from(args.get("out").ok_or("build needs --out PATH")?);
    let cfg = BuildConfig {
        max_axis,
        chunk_shapes: args.usize_or("chunk", 512)?,
        checkpoint: args.get("checkpoint").map(PathBuf::from),
    };
    let report = build(&cfg, &out).map_err(|e| e.to_string())?;
    println!(
        "{{\"built\":\"{}\",\"shapes\":{},\"certified\":{},\"uncovered\":{},\"resumed\":{}}}",
        out.display(),
        report.shapes,
        report.certified,
        report.uncovered,
        report.resumed,
    );
    Ok(())
}

fn run_serve(args: &Args) -> Result<(), String> {
    let engine = QueryEngine::new(&EngineConfig {
        db: args.get("db").map(PathBuf::from),
        overflow: args.get("overflow").map(PathBuf::from),
    })
    .map_err(|e| e.to_string())?;
    let engine = Arc::new(engine);
    let server = serve(
        &ServerConfig {
            addr: args.get("addr").unwrap_or("127.0.0.1:0").to_owned(),
            workers: args.usize_or("workers", 4)?,
        },
        Arc::clone(&engine),
    )
    .map_err(|e| e.to_string())?;
    println!("{{\"listening\":\"{}\"}}", server.local_addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    install_signal_handlers();
    let flag = server.shutdown_flag();
    while !flag.load(SeqCst) && !STOP.load(SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.request_shutdown();
    let panicked = server.join();
    engine.flush_overflow();
    if panicked > 0 {
        return Err(format!("{panicked} server thread(s) panicked"));
    }
    Ok(())
}

fn connect(args: &Args) -> Result<TcpStream, String> {
    let addr = args.get("addr").ok_or("needs --addr HOST:PORT")?;
    TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn run_shutdown(args: &Args) -> Result<(), String> {
    let mut stream = connect(args)?;
    stream
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .map_err(|e| e.to_string())?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| e.to_string())?;
    print!("{reply}");
    Ok(())
}

/// Parse `--shapes "3x5x17;5x5x5"` into extents lists.
fn parse_shapes_flag(spec: &str) -> Result<Vec<Vec<usize>>, String> {
    let mut shapes = Vec::new();
    for part in spec.split(';').filter(|p| !p.is_empty()) {
        let dims: Result<Vec<usize>, _> = part
            .split(['x', ','])
            .map(|d| d.trim().parse::<usize>())
            .collect();
        shapes.push(dims.map_err(|_| format!("bad shape spec {part:?}"))?);
    }
    Ok(shapes)
}

/// All canonical census triples up to `max_axis`, cycled to exactly
/// `count` shapes.
fn census_batch(max_axis: usize, count: usize) -> Vec<Vec<usize>> {
    let keys = cubemesh_plandb::enumerate_keys(max_axis);
    (0..count).map(|i| keys[i % keys.len()].clone()).collect()
}

fn run_query(args: &Args) -> Result<(), String> {
    let mut shapes = match args.get("shapes") {
        Some(spec) => parse_shapes_flag(spec)?,
        None => Vec::new(),
    };
    if let Some(census_max) = args.get("census-max") {
        let max_axis: usize = census_max
            .parse()
            .map_err(|_| format!("--census-max: bad number {census_max:?}"))?;
        let count = args.usize_or("count", 1024)?;
        shapes.extend(census_batch(max_axis, count));
    }
    if shapes.is_empty() {
        return Err("query needs --shapes and/or --census-max".to_owned());
    }

    let mut request = String::from("{\"op\":\"plan\",\"shapes\":[");
    for (i, dims) in shapes.iter().enumerate() {
        if i > 0 {
            request.push(',');
        }
        request.push('[');
        for (j, d) in dims.iter().enumerate() {
            if j > 0 {
                request.push(',');
            }
            request.push_str(&d.to_string());
        }
        request.push(']');
    }
    request.push_str("]}\n");

    let mut stream = connect(args)?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| e.to_string())?;

    let v =
        parse_json(reply.trim()).map_err(|(at, what)| format!("bad response at {at}: {what}"))?;
    if v.get("ok").map(|o| o == &JsonValue::Bool(true)) != Some(true) {
        return Err(format!("server error: {}", reply.trim()));
    }
    let results = v
        .get("results")
        .and_then(JsonValue::as_arr)
        .ok_or("response has no results array")?;
    if results.len() != shapes.len() {
        return Err(format!(
            "sent {} shapes, got {} results",
            shapes.len(),
            results.len()
        ));
    }

    let mut certified = 0usize;
    let mut fallback = 0usize;
    let mut errors = 0usize;
    let mut missing_certificate = 0usize;
    let mut by_source = std::collections::BTreeMap::new();
    for r in results {
        if r.get("error").is_some() {
            errors += 1;
            continue;
        }
        // Every non-error answer must carry a certificate, floors, a
        // plan and a fingerprint — the contract check.sh leans on.
        let complete = r.get("certificate").is_some()
            && r.get("floors").is_some()
            && r.get("plan").and_then(JsonValue::as_str).is_some()
            && r.get("fingerprint")
                .and_then(JsonValue::as_str)
                .is_some_and(|f| f.starts_with("0x"));
        if !complete {
            missing_certificate += 1;
            continue;
        }
        match r.get("status").and_then(JsonValue::as_str) {
            Some("certified") => certified += 1,
            _ => fallback += 1,
        }
        if let Some(src) = r.get("source").and_then(JsonValue::as_str) {
            *by_source.entry(src.to_owned()).or_insert(0usize) += 1;
        }
    }

    let mut sources = String::new();
    for (i, (k, n)) in by_source.iter().enumerate() {
        if i > 0 {
            sources.push(',');
        }
        sources.push_str(&format!("\"{k}\":{n}"));
    }
    println!(
        "{{\"sent\":{},\"certified\":{certified},\"fallback\":{fallback},\"errors\":{errors},\"missing_certificate\":{missing_certificate},\"sources\":{{{sources}}}}}",
        shapes.len(),
    );
    if errors > 0 || missing_certificate > 0 {
        return Err(format!(
            "{errors} error result(s), {missing_certificate} without certificates"
        ));
    }
    Ok(())
}
