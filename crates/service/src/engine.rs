//! The query engine: database hits, an in-memory overlay of previously
//! answered cold misses, and a live planning path that certifies on the
//! fly and streams new records to a write-behind overflow log.
//!
//! The engine is the protocol-agnostic core — the TCP server, the
//! loopback tests and the benchmark rungs all drive it through
//! [`QueryEngine::lookup`] / [`QueryEngine::resolve`]. Lookup order is
//! database → overlay → live plan; only the miss path takes the planner
//! lock, so a warm database serves concurrent batches with no write
//! contention at all.
//!
//! Cold-miss persistence is *write-behind*: the answer returns as soon
//! as the record exists, and a dedicated writer thread appends it to
//! the overflow log (same CRC-framed format as the builder checkpoint,
//! so `plandb::load_checkpoint` merges it back into the next build).

use crate::ServiceError;
use cubemesh_core::{construct, default_strategies, PlanStrategy, Planner};
use cubemesh_embedding::metrics::metrics;
use cubemesh_obs as obs;
use cubemesh_plandb::{plan_record, validate_key, Checkpoint, PlanDb, PlanRecord};
use cubemesh_topology::Shape;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Mutex, PoisonError};
use std::thread::JoinHandle;

/// Where an answer came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// Persisted census record, one `pread` away.
    Db,
    /// A cold miss answered earlier in this process.
    Overlay,
    /// Planned, certified and floored on this request.
    Live,
}

impl Source {
    /// Protocol name of the source.
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Db => "db",
            Source::Overlay => "overlay",
            Source::Live => "live",
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Plan database to serve from; `None` serves everything live.
    pub db: Option<PathBuf>,
    /// Overflow log for cold-miss records; `None` disables persistence.
    pub overflow: Option<PathBuf>,
}

/// Point-in-time engine statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Records in the opened database (0 without one).
    pub db_records: usize,
    /// Cold-miss records currently held in the overlay.
    pub overlay_records: usize,
    /// Lookups answered from the database.
    pub db_hits: u64,
    /// Lookups answered from the overlay.
    pub overlay_hits: u64,
    /// Lookups planned live.
    pub live_plans: u64,
    /// Lookups rejected (bad keys, corrupt frames).
    pub errors: u64,
}

/// The measured result of resolving a plan to a concrete embedding.
#[derive(Clone, Debug, PartialEq)]
pub struct Resolved {
    /// Canonical key of the resolved shape.
    pub key: Vec<usize>,
    /// Guest node count.
    pub nodes: usize,
    /// Measured host dimension.
    pub host_dim: u32,
    /// Measured worst-case dilation.
    pub dilation: u32,
    /// Measured worst-case congestion.
    pub congestion: u32,
    /// Measured expansion.
    pub expansion: f64,
    /// Whether the embedding lands in the minimal cube.
    pub minimal: bool,
    /// Whether every measured figure is within its certified bound.
    pub within_certificate: bool,
}

struct Overflow {
    tx: Option<Sender<PlanRecord>>,
    writer: Option<JoinHandle<()>>,
}

/// The shared query core. Cheap reads under concurrency: the database
/// index is immutable, the overlay is a short-critical-section map, and
/// only cold misses serialize on the planner.
pub struct QueryEngine {
    db: Option<PlanDb>,
    overlay: Mutex<HashMap<Vec<usize>, PlanRecord>>,
    planner: Mutex<(Planner, Vec<Box<dyn PlanStrategy + Send + Sync>>)>,
    overflow: Mutex<Overflow>,
    db_hits: AtomicU64,
    overlay_hits: AtomicU64,
    live_plans: AtomicU64,
    errors: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl QueryEngine {
    /// Open the database (when configured), start the overflow writer
    /// (when configured), and return a ready engine.
    pub fn new(cfg: &EngineConfig) -> Result<QueryEngine, ServiceError> {
        let db = match &cfg.db {
            Some(path) => Some(PlanDb::open(path)?),
            None => None,
        };
        let overflow = match &cfg.overflow {
            Some(path) => {
                let mut log = Checkpoint::append_to(path)?;
                let (tx, rx) = channel::<PlanRecord>();
                let writer = std::thread::spawn(move || {
                    let mut batch: Vec<PlanRecord> = Vec::new();
                    while let Ok(rec) = rx.recv() {
                        batch.clear();
                        batch.push(rec);
                        // Drain whatever else is already queued into the
                        // same durable append.
                        while let Ok(more) = rx.try_recv() {
                            batch.push(more);
                        }
                        // audit:allow(CM-A005): the overflow log is an unordered journal of self-contained keyed records; arrival order is deliberately first-answered-first-logged
                        if log.append(&batch).is_err() {
                            obs::counter!("service.overflow.write_error").inc();
                        }
                    }
                });
                Overflow {
                    tx: Some(tx),
                    writer: Some(writer),
                }
            }
            None => Overflow {
                tx: None,
                writer: None,
            },
        };
        Ok(QueryEngine {
            db,
            overlay: Mutex::new(HashMap::new()),
            planner: Mutex::new((Planner::new(), default_strategies())),
            overflow: Mutex::new(overflow),
            db_hits: AtomicU64::new(0),
            overlay_hits: AtomicU64::new(0),
            live_plans: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// Answer one shape: database, then overlay, then live planning.
    /// Every error is typed; bad keys are the caller's data, everything
    /// else is an internal condition worth surfacing.
    pub fn lookup(&self, dims: &[usize]) -> Result<(PlanRecord, Source), ServiceError> {
        let key = validate_key(dims).inspect_err(|_| {
            self.errors.fetch_add(1, SeqCst);
        })?;
        if let Some(db) = &self.db {
            match db.get(&key) {
                Ok(Some(rec)) => {
                    self.db_hits.fetch_add(1, SeqCst);
                    obs::counter!("service.lookup.db").inc();
                    return Ok((rec, Source::Db));
                }
                Ok(None) => {}
                Err(e) => {
                    self.errors.fetch_add(1, SeqCst);
                    return Err(ServiceError::Db(e));
                }
            }
        }
        if let Some(rec) = lock(&self.overlay).get(&key).cloned() {
            self.overlay_hits.fetch_add(1, SeqCst);
            obs::counter!("service.lookup.overlay").inc();
            return Ok((rec, Source::Overlay));
        }
        let rec = {
            let mut guard = lock(&self.planner);
            let (planner, strategies) = &mut *guard;
            plan_record(planner, strategies, &key).inspect_err(|_| {
                self.errors.fetch_add(1, SeqCst);
            })?
        };
        lock(&self.overlay).insert(key, rec.clone());
        self.live_plans.fetch_add(1, SeqCst);
        obs::counter!("service.lookup.live").inc();
        if let Some(tx) = &lock(&self.overflow).tx {
            if tx.send(rec.clone()).is_err() {
                obs::counter!("service.overflow.dropped").inc();
            }
        }
        Ok((rec, Source::Live))
    }

    /// Resolve a shape's plan to a concrete embedding and measure it —
    /// the deferred "construction" half of the decomposition/resolution
    /// split. Verifies the measured figures against the record's
    /// certificate.
    pub fn resolve(&self, dims: &[usize]) -> Result<Resolved, ServiceError> {
        let _span = obs::span!("service.resolve");
        let (rec, _) = self.lookup(dims)?;
        let plan = rec.plan().map_err(ServiceError::Db)?;
        let shape = Shape::new(&rec.key);
        let emb = construct(&shape, &plan).map_err(|e| ServiceError::Resolve {
            shape: shape.to_string(),
            detail: e.to_string(),
        })?;
        let m = metrics(&emb);
        let within_certificate = m.host_dim == rec.cert.host_dim
            && m.dilation <= rec.cert.dilation
            && m.congestion <= rec.cert.congestion;
        obs::counter!("service.resolve").inc();
        Ok(Resolved {
            key: rec.key.clone(),
            nodes: m.guest_nodes,
            host_dim: m.host_dim,
            dilation: m.dilation,
            congestion: m.congestion,
            expansion: m.expansion,
            minimal: m.is_minimal_expansion(),
            within_certificate,
        })
    }

    /// Current statistics.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            db_records: self.db.as_ref().map(PlanDb::len).unwrap_or(0),
            overlay_records: lock(&self.overlay).len(),
            db_hits: self.db_hits.load(SeqCst),
            overlay_hits: self.overlay_hits.load(SeqCst),
            live_plans: self.live_plans.load(SeqCst),
            errors: self.errors.load(SeqCst),
        }
    }

    /// Flush and stop the overflow writer, waiting until every queued
    /// record is durably appended. Idempotent; also runs on drop.
    pub fn flush_overflow(&self) {
        let (tx, writer) = {
            let mut guard = lock(&self.overflow);
            (guard.tx.take(), guard.writer.take())
        };
        drop(tx);
        if let Some(writer) = writer {
            if writer.join().is_err() {
                obs::counter!("service.overflow.writer_panic").inc();
            }
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.flush_overflow();
    }
}
