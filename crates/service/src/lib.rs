//! `cubemesh-serve` — the embedding query service over the full-census
//! plan database.
//!
//! A mesh shape goes in; a plan, its audit certificate, its floor-
//! oracle gap and its fingerprint come out — from the database when the
//! shape was swept ([`cubemesh_plandb`]), live-planned and certified on
//! a cold miss, with every cold answer streamed to a write-behind
//! overflow log for the next database build to absorb. Construction of
//! the actual embedding (maps and routes) stays deferred behind an
//! explicit `resolve` request: decomposition answers are cheap and
//! batched, resolution is heavyweight and on demand.
//!
//! Layers, protocol-agnostic core first:
//!
//! * [`engine`] — [`QueryEngine`]: db → overlay → live lookup order,
//!   engine statistics, overflow writer thread;
//! * [`protocol`] — the line-delimited JSON wire format (parsed with
//!   the workspace's own [`cubemesh_obs::parse_json`] — the service
//!   adds no dependencies);
//! * [`server`] — the blocking TCP front end: bounded worker pool,
//!   non-blocking accept loop, cooperative shutdown via a shared flag
//!   (set by the `shutdown` op, a signal handler, or any holder of
//!   [`Server::shutdown_flag`]).
//!
//! The `cubemesh-serve` binary wires the three together and adds the
//! builder / client subcommands used by `scripts/check.sh`.

pub mod engine;
pub mod protocol;
pub mod server;

pub use engine::{EngineConfig, QueryEngine, Resolved, Source, StatsSnapshot};
pub use protocol::{handle_line, parse_request, render_error, Request, MAX_BATCH};
pub use server::{serve, Server, ServerConfig};

use cubemesh_plandb::DbError;
use std::fmt;
use std::io;

/// Why a service operation failed.
#[derive(Debug)]
pub enum ServiceError {
    /// A database or planning error from the plandb layer.
    Db(DbError),
    /// An I/O error from the network layer.
    Io(io::Error),
    /// A plan could not be lowered to a concrete embedding.
    Resolve {
        /// The shape being resolved.
        shape: String,
        /// The construction error, rendered.
        detail: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Db(e) => write!(f, "{e}"),
            ServiceError::Io(e) => write!(f, "service i/o: {e}"),
            ServiceError::Resolve { shape, detail } => {
                write!(f, "cannot resolve {shape}: {detail}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Db(e) => Some(e),
            ServiceError::Io(e) => Some(e),
            ServiceError::Resolve { .. } => None,
        }
    }
}

impl From<DbError> for ServiceError {
    fn from(e: DbError) -> Self {
        ServiceError::Db(e)
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}
