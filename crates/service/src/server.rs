//! The blocking TCP front end: a bounded worker pool over an accept
//! loop, with cooperative shutdown.
//!
//! No async runtime and no platform event loop — the listener is
//! polled non-blocking so the accept thread can watch the shutdown
//! flag, and worker reads carry a short timeout so an idle connection
//! never pins a worker across shutdown. Accepted connections queue on
//! a channel; `workers` threads drain it, each owning one connection
//! at a time (line in, line out, flush). The pool is *bounded*: beyond
//! `workers` concurrent connections, new ones wait in the queue rather
//! than spawning threads.

use crate::engine::QueryEngine;
use crate::protocol::handle_line;
use crate::ServiceError;
use cubemesh_obs as obs;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads (connections served concurrently).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
        }
    }
}

/// A running server: the bound address, the shutdown flag, and the
/// thread handles [`Server::join`] waits on.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

const POLL: Duration = Duration::from_millis(25);
const READ_TIMEOUT: Duration = Duration::from_millis(250);

impl Server {
    /// The address actually bound (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The flag every loop watches; setting it stops the server. Shared
    /// so a signal handler or another thread can request shutdown.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Request a graceful shutdown without waiting.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, SeqCst);
    }

    /// Wait for the accept loop and every worker to finish. Returns the
    /// number of threads that panicked (0 on a clean run).
    pub fn join(self) -> usize {
        let mut panicked = 0;
        if self.acceptor.join().is_err() {
            panicked += 1;
        }
        for w in self.workers {
            if w.join().is_err() {
                panicked += 1;
            }
        }
        panicked
    }
}

/// Bind, spawn the worker pool, and return the running server.
pub fn serve(cfg: &ServerConfig, engine: Arc<QueryEngine>) -> Result<Server, ServiceError> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    let (tx, rx) = channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let worker_count = cfg.workers.max(1);
    let mut workers = Vec::with_capacity(worker_count);
    for _ in 0..worker_count {
        let rx = Arc::clone(&rx);
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        workers.push(std::thread::spawn(move || {
            worker_loop(&rx, &engine, &shutdown);
        }));
    }

    let flag = Arc::clone(&shutdown);
    let acceptor = std::thread::spawn(move || {
        while !flag.load(SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    obs::counter!("service.conn.accepted").inc();
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(_) => {
                    obs::counter!("service.conn.accept_error").inc();
                    std::thread::sleep(POLL);
                }
            }
        }
        // Dropping `tx` here wakes every idle worker with a recv error.
    });

    Ok(Server {
        addr,
        shutdown,
        acceptor,
        workers,
    })
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    engine: &Arc<QueryEngine>,
    shutdown: &Arc<AtomicBool>,
) {
    loop {
        if shutdown.load(SeqCst) {
            return;
        }
        let next = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv_timeout(POLL)
        };
        match next {
            Ok(stream) => serve_connection(stream, engine, shutdown),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn serve_connection(stream: TcpStream, engine: &Arc<QueryEngine>, shutdown: &Arc<AtomicBool>) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() || stream.set_nodelay(true).is_err() {
        obs::counter!("service.conn.setup_error").inc();
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        obs::counter!("service.conn.setup_error").inc();
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        if shutdown.load(SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let (response, stop) = handle_line(engine, trimmed);
                    if writer.write_all(response.as_bytes()).is_err()
                        || writer.write_all(b"\n").is_err()
                        || writer.flush().is_err()
                    {
                        obs::counter!("service.conn.write_error").inc();
                        return;
                    }
                    if stop {
                        shutdown.store(true, SeqCst);
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                // Idle poll tick: re-check the shutdown flag. Bytes a
                // torn read already appended to `line` are kept — the
                // next read_line keeps accumulating until the newline.
                continue;
            }
            Err(_) => {
                obs::counter!("service.conn.read_error").inc();
                return;
            }
        }
    }
}
