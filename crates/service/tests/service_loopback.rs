//! End-to-end service behavior over a real loopback TCP connection:
//! batched queries mixing database hits with a cold miss, certificate
//! presence on every answer, the overlay on repeat misses, deferred
//! resolution, graceful shutdown, and the write-behind overflow log.

use cubemesh_obs::{parse_json, JsonValue};
use cubemesh_plandb::{build, load_checkpoint, BuildConfig, RecordStatus};
use cubemesh_service::{serve, EngineConfig, QueryEngine, ServerConfig, Source};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cubemesh-service-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn mini_db(dir: &Path, max_axis: usize) -> PathBuf {
    let out = dir.join("plans.db");
    build(&BuildConfig::new(max_axis), &out).expect("build mini db");
    out
}

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> JsonValue {
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    stream.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    parse_json(reply.trim()).expect("reply parses")
}

#[test]
fn batched_queries_over_tcp_with_cold_miss_and_shutdown() {
    let dir = scratch("tcp");
    let db = mini_db(&dir, 6);
    let overflow = dir.join("cold.ck");
    let engine = Arc::new(
        QueryEngine::new(&EngineConfig {
            db: Some(db),
            overflow: Some(overflow.clone()),
        })
        .expect("engine"),
    );
    let server = serve(
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
        },
        Arc::clone(&engine),
    )
    .expect("serve");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // A batch mixing db hits ([2,3,4], [5,5] via [1,5,5]), the 5x5x5
    // fallback, a cold miss outside the universe (7x7x7), and one
    // inadmissible shape (extent 0).
    let v = roundtrip(
        &mut stream,
        &mut reader,
        "{\"op\":\"plan\",\"shapes\":[[2,3,4],[1,5,5],[5,5,5],[7,7,7],[0,3]]}",
    );
    assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
    let results = v
        .get("results")
        .and_then(JsonValue::as_arr)
        .expect("results");
    assert_eq!(results.len(), 5);

    let src = |r: &JsonValue| {
        r.get("source")
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
    };
    // Every non-error result carries certificate, floors, plan, fingerprint.
    for r in &results[..4] {
        assert!(r.get("certificate").is_some(), "{r:?}");
        assert!(r.get("floors").is_some(), "{r:?}");
        assert!(r.get("plan").and_then(JsonValue::as_str).is_some(), "{r:?}");
        let fp = r
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .expect("fp");
        assert!(fp.starts_with("0x") && fp.len() == 18, "{fp}");
    }
    assert_eq!(src(&results[0]).as_deref(), Some("db"));
    assert_eq!(src(&results[1]).as_deref(), Some("db"));
    assert_eq!(
        results[2].get("status").and_then(JsonValue::as_str),
        Some("no-dilation2-plan")
    );
    assert_eq!(src(&results[3]).as_deref(), Some("live"));
    assert!(results[4].get("error").is_some(), "extent 0 must error");

    // Same cold shape again: now served from the overlay.
    let v = roundtrip(
        &mut stream,
        &mut reader,
        "{\"op\":\"plan\",\"shapes\":[[7,7,7]]}",
    );
    let results = v
        .get("results")
        .and_then(JsonValue::as_arr)
        .expect("results");
    assert_eq!(src(&results[0]).as_deref(), Some("overlay"));

    // Deferred construction: resolve measures a real embedding within
    // its certificate.
    let v = roundtrip(
        &mut stream,
        &mut reader,
        "{\"op\":\"resolve\",\"shape\":[5,6,3]}",
    );
    assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
    let r = v.get("resolved").expect("resolved");
    assert_eq!(r.get("nodes").and_then(JsonValue::as_u64), Some(90));
    assert_eq!(r.get("within_certificate"), Some(&JsonValue::Bool(true)));

    // Stats reflect the traffic.
    let v = roundtrip(&mut stream, &mut reader, "{\"op\":\"stats\"}");
    let s = v.get("stats").expect("stats");
    assert!(s.get("db_hits").and_then(JsonValue::as_u64) >= Some(2));
    assert_eq!(s.get("live_plans").and_then(JsonValue::as_u64), Some(1));
    assert!(s.get("errors").and_then(JsonValue::as_u64) >= Some(1));

    // Malformed line: typed protocol error, connection stays usable.
    let v = roundtrip(&mut stream, &mut reader, "{\"op\":\"nope\"}");
    assert_eq!(v.get("ok"), Some(&JsonValue::Bool(false)));

    // Graceful shutdown via the protocol.
    let v = roundtrip(&mut stream, &mut reader, "{\"op\":\"shutdown\"}");
    assert_eq!(v.get("shutting_down"), Some(&JsonValue::Bool(true)));
    assert_eq!(server.join(), 0, "no worker may panic");

    // The cold miss landed in the write-behind overflow log, certified.
    engine.flush_overflow();
    let cold = load_checkpoint(&overflow).expect("overflow log loads");
    assert_eq!(cold.len(), 1);
    assert_eq!(cold[0].key, vec![7, 7, 7]);
    assert_eq!(cold[0].status, RecordStatus::Certified);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_without_database_plans_everything_live() {
    let engine = QueryEngine::new(&EngineConfig::default()).expect("engine");
    let (rec, source) = engine.lookup(&[4, 4, 4]).expect("lookup");
    assert_eq!(source, Source::Live);
    assert_eq!(rec.status, RecordStatus::Certified);
    let (_, source) = engine.lookup(&[4, 4, 4]).expect("lookup again");
    assert_eq!(source, Source::Overlay);
    let stats = engine.stats();
    assert_eq!(stats.db_records, 0);
    assert_eq!(stats.live_plans, 1);
    assert_eq!(stats.overlay_hits, 1);
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let dir = scratch("concurrent");
    let db = mini_db(&dir, 5);
    let engine = Arc::new(
        QueryEngine::new(&EngineConfig {
            db: Some(db),
            overflow: None,
        })
        .expect("engine"),
    );
    let server = serve(
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
        },
        Arc::clone(&engine),
    )
    .expect("serve");
    let addr = server.local_addr();

    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let v = roundtrip(
                    &mut stream,
                    &mut reader,
                    "{\"op\":\"plan\",\"shapes\":[[2,3,5],[4,4,4],[5,5,5]]}",
                );
                let results = v
                    .get("results")
                    .and_then(JsonValue::as_arr)
                    .expect("results")
                    .to_vec();
                results
                    .iter()
                    .map(|r| {
                        r.get("fingerprint")
                            .and_then(JsonValue::as_str)
                            .expect("fp")
                            .to_owned()
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let answers: Vec<Vec<String>> = clients
        .into_iter()
        .map(|c| c.join().expect("client"))
        .collect();
    for a in &answers[1..] {
        assert_eq!(
            a, &answers[0],
            "all clients must see identical fingerprints"
        );
    }
    server.request_shutdown();
    assert_eq!(server.join(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
