//! Regenerate every table and figure of the paper (and the repo's own
//! ablations). Each subcommand prints the series the paper reports;
//! EXPERIMENTS.md records paper-vs-measured.
//!
//! Usage: `figures [fig1] [fig2 [max_n]] [exceptions] [twod] [examples]
//!         [catalog] [torus] [manytoone] [netsim] [opencase] [all] [--stats]`
//!
//! `--stats` (or `CUBEMESH_STATS=text|json`) prints an instrumentation
//! snapshot after the selected figures run.

use cubemesh_census::two_d::census_2d_full;
use cubemesh_census::{
    census_2d, census_3d, constructive_exceptions_up_to, exceptions_up_to,
    gray_fraction_closed_form, gray_fraction_exact, gray_fraction_monte_carlo,
};
use cubemesh_core::{classify3, construct, embed_mesh, Planner};
use cubemesh_embedding::{gray_mesh_embedding, load_factor, verify_many_to_one};
use cubemesh_manytoone::{contract, corollary5, optimal_load_factor};
use cubemesh_netsim::{simulate, stencil_exchange};
use cubemesh_obs as obs;
use cubemesh_reshape::snake_embedding;
use cubemesh_search::{anneal, catalog_entries, AnnealConfig, AnnealOutcome};
use cubemesh_topology::{cube_dim, Shape};
use cubemesh_torus::{corollary3_dilation2, corollary3_dilation3, embed_torus};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    obs::init_from_env();
    if args.iter().any(|a| a == "--stats") {
        args.retain(|a| a != "--stats");
        if obs::mode() == obs::StatsMode::Off {
            obs::set_mode(obs::StatsMode::Text);
        }
    }
    if args.is_empty() {
        eprintln!(
            "usage: figures [fig1] [fig2 [max_n]] [exceptions] [twod] \
             [examples] [catalog] [torus] [manytoone] [netsim] [ablation] \
             [opencase] [all] [--stats]"
        );
        std::process::exit(2);
    }
    let mut iter = args.iter().peekable();
    while let Some(cmd) = iter.next() {
        match cmd.as_str() {
            "fig1" => fig1(),
            "fig2" => {
                let mut max_n = 9;
                if let Some(next) = iter.peek() {
                    if let Ok(n) = next.parse::<u32>() {
                        max_n = n;
                        iter.next();
                    }
                }
                fig2(max_n);
            }
            "exceptions" => exceptions(),
            "twod" => twod(),
            "examples" => examples(),
            "catalog" => catalog(),
            "torus" => torus(),
            "manytoone" => manytoone(),
            "netsim" => netsim(),
            "ablation" => ablation(),
            "opencase" => opencase(),
            "all" => {
                fig1();
                fig2(9);
                exceptions();
                twod();
                examples();
                catalog();
                torus();
                manytoone();
                netsim();
            }
            other => {
                eprintln!("unknown figure '{}'", other);
                std::process::exit(2);
            }
        }
    }
    obs::report();
}

/// Figure 1: Gray-code minimal-expansion fraction vs k.
fn fig1() {
    println!("== Figure 1: fraction of k-D meshes minimal under Gray code ==");
    println!(
        "{:>3} {:>12} {:>12} {:>16}",
        "k", "closed-form", "monte-carlo", "exact"
    );
    for k in 1..=10u32 {
        let cf = gray_fraction_closed_form(k);
        let mc = gray_fraction_monte_carlo(k, 2_000_000, 0xF1A5 + k as u64);
        let exact = match k {
            1 => "1.0000 (n=9)".to_string(),
            2 => format!("{:.4} (n=9)", gray_fraction_exact(2, 9).expect("k ≤ 3")),
            3 => format!("{:.4} (n=7)", gray_fraction_exact(3, 7).expect("k ≤ 3")),
            _ => "-".to_string(),
        };
        println!("{:>3} {:>12.6} {:>12.6} {:>16}", k, cf, mc, exact);
    }
    println!(
        "paper quotes f2 ≈ 0.61 (ours {:.4}), f3 ≈ 0.27 (ours {:.4})\n",
        gray_fraction_closed_form(2),
        gray_fraction_closed_form(3)
    );
}

/// Figure 2 + the §5 in-text cumulative percentages.
fn fig2(max_n: u32) {
    println!("== Figure 2: cumulative % of l1 x l2 x l3 meshes (li <= 2^n) ==");
    println!(
        "{:>2} {:>8} {:>8} {:>8} {:>8}   {:>12}",
        "n", "S1", "S2", "S3", "S4", "constructive"
    );
    for n in 1..=max_n {
        let t = std::time::Instant::now();
        let c = census_3d(n);
        let s = c.cumulative_percent();
        println!(
            "{:>2} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%   {:>11.1}%   ({:.1?})",
            n,
            s[0],
            s[1],
            s[2],
            s[3],
            c.constructive_percent(),
            t.elapsed()
        );
    }
    println!("paper (n = 9): 28.5%, 81.5%, 82.9%, 96.1%\n");
}

/// §5 exception lists.
fn exceptions() {
    println!("== §5 open meshes (fail methods 1-4) ==");
    let at128 = exceptions_up_to(128);
    println!("<= 128 nodes: {:?} (paper: [(5,5,5)])", at128);
    let at256 = exceptions_up_to(256);
    println!(
        "<= 256 nodes: {:?}\n  (paper adds (5,7,7), (3,9,9), (5,5,10), (3,5,17))",
        at256
    );
    let cons = constructive_exceptions_up_to(128);
    println!("constructive planner misses <= 128 nodes: {:?}\n", cons);
}

/// §3.3 2-D claim.
fn twod() {
    println!("== §3.3: 2-D meshes <= 64 nodes, paper's direct set ==");
    let c = census_2d(64);
    println!(
        "covered {}/{} — missed: {:?} (paper: only 3x21)",
        c.covered.len(),
        c.covered.len() + c.missed.len(),
        c.missed
    );
    let full = census_2d_full(64);
    println!(
        "with this repo's full catalog: missed {:?} (3x21 is now a direct table)",
        full.missed
    );
    println!(
        "constructive 2-D coverage over l1,l2 <= 512: {:.1}% (the paper's \
         [4]-backed classification is 100% by definition)\n",
        100.0 * cubemesh_census::two_d::coverage_fraction_2d(512)
    );
}

/// §4.2/§5 worked examples, constructed and measured.
fn examples() {
    println!("== worked examples: plan, expansion, dilation, congestion ==");
    let mut planner = Planner::new();
    for dims in [
        vec![12usize, 20],
        vec![3, 25, 3],
        vec![3, 3, 23],
        vec![5, 6, 7],
        vec![5, 10, 11],
        vec![6, 11, 7],
        vec![21, 9, 5],
        vec![27, 3, 3],
        vec![9, 9, 9],
    ] {
        let shape = Shape::new(&dims);
        match planner.plan(&shape) {
            Some(plan) => {
                let emb = construct(&shape, &plan).expect("planner-produced plan lowers");
                emb.verify().expect("constructed embedding must verify");
                let m = emb.metrics();
                println!(
                    "{:>10}: Q{} (minimal {}), dilation {}, congestion {}, avg dil {:.3}  [{}]",
                    shape.to_string(),
                    m.host_dim,
                    shape.minimal_cube_dim(),
                    m.dilation,
                    m.congestion,
                    m.avg_dilation,
                    plan
                );
            }
            None => println!("{:>10}: no plan", shape.to_string()),
        }
    }
    println!();
}

/// The direct-embedding catalog (§3.3 tables, machine-rediscovered).
fn catalog() {
    println!("== direct-embedding catalog (replaces the tables of [13],[14]) ==");
    for e in catalog_entries() {
        let shape = Shape::new(e.dims);
        let emb = cubemesh_search::catalog_embedding(&shape).unwrap();
        emb.verify().unwrap();
        let m = emb.metrics();
        println!(
            "{:>8} -> Q{}: dilation {}, congestion {}, avg dil {:.3}, avg cong {:.3}  [{}]",
            shape.to_string(),
            e.host_dim,
            m.dilation,
            m.congestion,
            m.avg_dilation,
            m.avg_congestion,
            e.provenance
        );
    }
    println!();
}

/// §6: wraparound meshes.
fn torus() {
    println!("== §6: wraparound meshes ==");
    println!(
        "{:>9} {:>6} {:>9} {:>9} {:>11}",
        "torus", "cube", "dilation", "bound", "rule"
    );
    for dims in [
        vec![6usize, 10],
        vec![4, 6],
        vec![12, 20],
        vec![7, 8],
        vec![5, 9],
        vec![8, 8],
        vec![4, 6, 10],
        vec![16],
        vec![15],
    ] {
        let shape = Shape::new(&dims);
        match embed_torus(&shape) {
            Some(out) => {
                out.embedding.verify().unwrap();
                let m = out.embedding.metrics();
                println!(
                    "{:>9} {:>6} {:>9} {:>9} {:>11}",
                    shape.to_string(),
                    format!("Q{}", m.host_dim),
                    m.dilation,
                    out.dilation_bound,
                    format!("{:?}", out.rule)
                );
            }
            None => println!("{:>9}   none", shape.to_string()),
        }
    }
    // Corollary 3 coverage sweep.
    let (mut d2, mut d3, mut total) = (0u64, 0u64, 0u64);
    for l1 in 3..=64usize {
        for l2 in 3..=64usize {
            total += 1;
            if corollary3_dilation2(l1, l2) {
                d2 += 1;
            } else if corollary3_dilation3(l1, l2) {
                d3 += 1;
            }
        }
    }
    println!(
        "Corollary 3 sweep (3 <= li <= 64): dilation<=2 {:.1}%, +dilation<=3 {:.1}%\n",
        100.0 * d2 as f64 / total as f64,
        100.0 * (d2 + d3) as f64 / total as f64
    );
}

/// §7: many-to-one.
fn manytoone() {
    println!("== §7: many-to-one embeddings ==");
    // The paper's 19x19 example.
    let shape = Shape::new(&[19, 19]);
    let emb = corollary5(&shape, 5).expect("19x19 cover");
    verify_many_to_one(&emb).unwrap();
    let lf = load_factor(emb.map(), emb.host());
    println!(
        "19x19 -> Q5: dilation {}, load-factor {} (paper 15), optimal {} (paper 12)",
        emb.metrics().dilation,
        lf,
        optimal_load_factor(shape.nodes(), 5)
    );
    // Corollary 4 sweep.
    for (base, factors) in [
        (vec![4usize, 8], vec![3usize, 2]),
        (vec![8, 8], vec![5, 3]),
        (vec![4, 4, 4], vec![3, 1, 5]),
    ] {
        let bs = Shape::new(&base);
        let b = gray_mesh_embedding(&bs);
        let emb = contract(&bs, &b, &factors);
        verify_many_to_one(&emb).unwrap();
        let m = emb.metrics();
        let lf = load_factor(emb.map(), emb.host());
        let bound: usize =
            factors.iter().product::<usize>() / factors.iter().copied().min().unwrap();
        println!(
            "{} x factors {:?}: dilation {}, load {}, congestion {} (Cor.4 bound {})",
            bs, factors, m.dilation, lf, m.congestion, bound
        );
    }
    println!();
}

/// A1 ablation: what dilation/congestion cost in communication cycles.
fn netsim() {
    println!("== netsim: one stencil halo-exchange, 32-flit messages ==");
    println!(
        "{:>10} {:>22} {:>6} {:>9} {:>9} {:>10}",
        "mesh", "embedding", "cube", "dilation", "makespan", "slowdown"
    );
    for dims in [
        vec![5usize, 6, 7],
        vec![9, 9, 9],
        vec![12, 20],
        vec![17, 17],
    ] {
        let shape = Shape::new(&dims);
        let flits = 32;
        let mut rows: Vec<(String, cubemesh_embedding::Embedding)> = Vec::new();
        let (emb, minimal) = embed_mesh(&shape);
        rows.push((
            if minimal {
                "decomposition".into()
            } else {
                "gray (fallback)".into()
            },
            emb,
        ));
        rows.push(("gray (expanded)".into(), gray_mesh_embedding(&shape)));
        rows.push(("snake (minimal)".into(), snake_embedding(&shape)));
        for (name, emb) in rows {
            let msgs = stencil_exchange(&emb, flits);
            let r = simulate(emb.host(), &msgs);
            let slow = r.makespan as f64 / flits as f64;
            println!(
                "{:>10} {:>22} {:>6} {:>9} {:>9} {:>9.2}x",
                shape.to_string(),
                name,
                format!("Q{}", emb.host().dim()),
                emb.metrics().dilation,
                r.makespan,
                slow
            );
        }
    }
    println!();
}

/// A2 ablation: route assignment strategies and switching disciplines.
fn ablation() {
    use cubemesh_embedding::router::{route_all, RouteStrategy};
    use cubemesh_netsim::{simulate_with, Switching};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    println!("== ablation: routing strategy vs congestion (random maps) ==");
    println!(
        "{:>8} {:>12} {:>10} {:>10}",
        "mesh", "host", "canonical", "balanced"
    );
    let mut rng = StdRng::seed_from_u64(11);
    for dims in [vec![4usize, 6], vec![5, 7], vec![4, 4, 4]] {
        let shape = Shape::new(&dims);
        let host = cubemesh_topology::Hypercube::new(shape.minimal_cube_dim() + 1);
        let mut addrs: Vec<u64> = (0..host.nodes()).collect();
        addrs.shuffle(&mut rng);
        let map: Vec<u64> = addrs[..shape.nodes()].to_vec();
        let mesh = cubemesh_topology::Mesh::new(shape.clone());
        let edges = cubemesh_embedding::builders::mesh_edge_list(&mesh);
        let canon = route_all(&map, &edges, host, RouteStrategy::Canonical);
        let bal = route_all(&map, &edges, host, RouteStrategy::Balanced { passes: 3 });
        println!(
            "{:>8} {:>12} {:>10} {:>10}",
            shape.to_string(),
            format!("Q{}", host.dim()),
            cubemesh_search::routes::max_congestion(&canon, host),
            cubemesh_search::routes::max_congestion(&bal, host),
        );
    }

    println!("\n== ablation: store-and-forward vs virtual cut-through ==");
    println!(
        "{:>8} {:>16} {:>12} {:>12}",
        "mesh", "embedding", "SF makespan", "CT makespan"
    );
    for dims in [vec![9usize, 9, 9], vec![12, 20]] {
        let shape = Shape::new(&dims);
        let (emb, _) = embed_mesh(&shape);
        let snake = snake_embedding(&shape);
        for (name, e) in [("decomposition", &emb), ("snake", &snake)] {
            let msgs = stencil_exchange(e, 32);
            let sf = simulate_with(e.host(), &msgs, Switching::StoreAndForward);
            let ct = simulate_with(e.host(), &msgs, Switching::CutThrough);
            println!(
                "{:>8} {:>16} {:>12} {:>12}",
                shape.to_string(),
                name,
                sf.makespan,
                ct.makespan
            );
        }
    }
    println!();
}

/// A3: the paper's open 5x5x5 case — settled by the exact search.
fn opencase() {
    println!("== open case: 5x5x5 -> Q7 at dilation 2 ==");
    println!(
        "(5x5x5: minimal cube Q{}, paper classification: {:?} — the paper's",
        cube_dim(125),
        classify3(5, 5, 5)
    );
    println!(" only unresolved mesh <= 128 nodes)");

    // The exact backtracking search settled it (49 minutes): verify the
    // baked map end to end.
    let entry = cubemesh_search::catalog::open_case_5x5x5();
    let shape = Shape::new(entry.dims);
    let mesh = cubemesh_topology::Mesh::new(shape.clone());
    let edges = cubemesh_embedding::builders::mesh_edge_list(&mesh);
    let host = cubemesh_topology::Hypercube::new(entry.host_dim);
    let routes = cubemesh_search::routes::certify_congestion(entry.map, &edges, host, 3)
        .expect("congestion-3 routing");
    let emb =
        cubemesh_embedding::Embedding::new(mesh.nodes(), edges, host, entry.map.to_vec(), routes);
    emb.verify().unwrap();
    let m = emb.metrics();
    println!(
        "SETTLED: exact search found a map — Q{}, dilation {}, congestion {} (minimal expansion: {})",
        m.host_dim, m.dilation, m.congestion, m.is_minimal_expansion()
    );

    // For comparison, the annealing heuristic alone does not crack it.
    let g = mesh.to_graph();
    let cfg = AnnealConfig {
        steps: 1_000_000,
        ..AnnealConfig::dilation2_minimal(125, 0xBEEF)
    };
    match anneal(&g, &cfg) {
        AnnealOutcome::Found(_) => println!("(annealing also finds a map)"),
        AnnealOutcome::Best { energy, .. } => println!(
            "(annealing alone stalls at residual dilation excess {} — exact search was required)\n",
            energy
        ),
    }
}
