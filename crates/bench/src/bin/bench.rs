//! `cubemesh-bench`: the BENCH_3 perf-trajectory baseline.
//!
//! Times the full hot pipeline — plan, construct, metrics, verify — on a
//! fixed ladder of paper-scale shapes and writes the results as JSON
//! (`BENCH_3.json` at the repo root by default). Every rung is also run
//! with `RAYON_NUM_THREADS=1` to record the sequential wall time and the
//! parallel speedup, and the bench *asserts* that the parallel and
//! sequential pipelines produce identical metrics, so the smoke run in
//! `scripts/check.sh` doubles as a correctness gate.
//!
//! ```text
//! cubemesh-bench [--json] [--out PATH] [--threads N] [--quick] [--reps N]
//!                [--shapes L1xL2xL3[,L1xL2xL3...]] [--par-only] [--stats]
//!                [--compare BASE.json] [--tolerance PCT] [--compare-out PATH]
//!                [--trace FILE]
//! ```
//!
//! * `--json`      print the JSON document to stdout too
//! * `--out PATH`  where to write the JSON (default `BENCH_3.json`)
//! * `--threads N` cap the worker count (sets `RAYON_NUM_THREADS`)
//! * `--quick`     only the 16^3 rung (the check.sh smoke)
//! * `--reps N`    repetitions per rung; min wall time is reported (default 3)
//! * `--par-only`  skip the sequential re-run (no speedup column)
//! * `--shapes`    override the ladder
//! * `--stats`     print a cubemesh-obs snapshot at the end
//! * `--no-replay` skip the BENCH_4 replay ladder
//! * `--no-service` skip the BENCH_5 query-service ladder
//! * `--trace FILE` record a hierarchical execution trace (Chrome JSON at
//!   FILE plus FILE.folded / FILE.jsonl)
//!
//! ## Perf-trajectory gating
//!
//! `--compare BASE.json` loads a prior BENCH_3 document and compares this
//! run's `construct_nodes_per_s`, `metrics_hops_per_s` and `peak_rss_kb`
//! per rung (matched by shape; rungs missing on either side are skipped),
//! plus the `gray_kernel` micro-rungs (matched by name; absent in older
//! baselines, then skipped). A baseline recorded on a different
//! `parallel_backend` is a hard error — executors are not comparable.
//! Any metric that moves past the tolerance in the bad direction makes
//! the process exit non-zero — `scripts/check.sh` runs this on every
//! gate, so perf regressions fail CI like test regressions do.
//! `--tolerance PCT` overrides the default (15); `--compare-out PATH`
//! writes the comparison as JSON; `--inject-regression` (self-test only)
//! deflates this run's throughput by 25% before comparing, proving the
//! gate trips.
//!
//! Alongside BENCH_3 the binary runs the BENCH_5 *query-service* ladder
//! (written to `BENCH_5.json`, or `--service-out PATH`): it rebuilds a
//! max-axis-12 census plan database in a scratch directory, then times
//! warm lookup latency (p50/p99 ns over the whole census), batched
//! protocol throughput at batch sizes 1/64/1024 (full parse → lookup →
//! render round trips through `handle_line`), and the best-case
//! cold-miss live-plan latency on shapes outside the database universe.
//! `--compare-service BASE5.json` gates those rungs against a prior
//! BENCH_5 document at the same `--tolerance`, with latency rungs
//! judged lower-is-better; regressions fail the process exactly like
//! the BENCH_3 gate.
//!
//! The binary also runs the BENCH_4 *replay* ladder
//! (written to `BENCH_4.json`): each rung replays a periodic stencil
//! trace through the cubemesh-replay engine, joins the measured peak link
//! load against the static congestion certificate, and times a rate
//! sweep's saturation-knee search. `--quick` keeps one replay rung.
//!
//! Each stage is timed as the minimum over `--reps` repetitions: on a
//! shared/noisy host a single-shot timing can be off by an order of
//! magnitude, and the minimum is the best estimate of the code's cost.

use cubemesh_core::{construct, Planner};
use cubemesh_embedding::Embedding;
use cubemesh_obs as obs;
use cubemesh_topology::Shape;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// The fixed BENCH_3 shape ladder. Power-of-two rungs exercise the Gray
/// leaf path; the non-power-of-two rungs go through the full
/// product-decomposition lowering.
const LADDER: &[&[usize]] = &[
    &[16, 16, 16],
    &[64, 64, 64],
    &[128, 128, 128],
    &[256, 256, 16],
    &[512, 512, 8],
    &[60, 60, 60],
    &[36, 36, 33],
];

#[derive(Clone, Debug, Default)]
struct Rung {
    shape: String,
    nodes: usize,
    edges: usize,
    route_hops: u64,
    host_dim: u32,
    dilation: u32,
    congestion: u32,
    plan_s: f64,
    construct_s: f64,
    metrics_s: f64,
    verify_s: f64,
    construct_nodes_per_s: f64,
    metrics_hops_per_s: f64,
    seq_construct_s: f64,
    seq_metrics_s: f64,
    speedup_construct_metrics: f64,
    peak_rss_kb: u64,
}

/// Peak resident set size in kB from `/proc/self/status` (Linux only;
/// 0 where unavailable). Process-wide high-water mark, so per-rung values
/// are monotone — still useful as a ladder-level memory trajectory.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches(" kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Run plan → construct → metrics → verify, timed. Construct, metrics,
/// and verify are repeated `reps` times and the minimum wall time per
/// stage is kept (planning is memoized, so it is timed once).
fn run_pipeline(dims: &[usize], reps: usize) -> Option<(Rung, Embedding)> {
    let shape = Shape::new(dims);
    let mut planner = Planner::new();
    let (plan, plan_s) = time(|| planner.plan(&shape));
    let plan = match plan {
        Some(p) => p,
        None => {
            eprintln!("cubemesh-bench: no plan for {shape}, skipping");
            return None;
        }
    };
    let (mut construct_s, mut metrics_s, mut verify_s) = (f64::MAX, f64::MAX, f64::MAX);
    let mut kept: Option<(Embedding, cubemesh_embedding::Metrics)> = None;
    for _ in 0..reps.max(1) {
        drop(kept.take()); // free the previous repetition before building anew
        let (emb, c) = time(|| construct(&shape, &plan).expect("planner-produced plan lowers"));
        construct_s = construct_s.min(c);
        let (m, ms) = time(|| emb.metrics());
        metrics_s = metrics_s.min(ms);
        let (vres, vs) = time(|| emb.verify());
        verify_s = verify_s.min(vs);
        if let Err(e) = vres {
            eprintln!("cubemesh-bench: {shape} failed verification: {e}");
            return None;
        }
        kept = Some((emb, m));
    }
    let (emb, m) = kept?;
    let hops = emb.routes().total_length();
    let rung = Rung {
        shape: shape.to_string(),
        nodes: shape.nodes(),
        edges: emb.edge_count(),
        route_hops: hops,
        host_dim: m.host_dim,
        dilation: m.dilation,
        congestion: m.congestion,
        plan_s,
        construct_s,
        metrics_s,
        verify_s,
        construct_nodes_per_s: shape.nodes() as f64 / construct_s.max(1e-12),
        metrics_hops_per_s: hops as f64 / metrics_s.max(1e-12),
        peak_rss_kb: peak_rss_kb(),
        ..Rung::default()
    };
    Some((rung, emb))
}

/// One kernel micro-bench rung: name and elements-per-second throughput.
#[derive(Clone, Debug)]
struct KernelRung {
    name: &'static str,
    elems: usize,
    elems_per_s: f64,
}

/// The `gray_kernel` micro-bench: batch Gray encode, batch decode, and
/// XOR-popcount Hamming throughput over 1 Mi-element `u64` lanes,
/// minimum-of-reps like the shape ladder. These isolate the single-core
/// bit-kernels from the mesh machinery so a regression in the kernels
/// themselves can't hide inside pipeline noise.
fn run_kernel_bench(reps: usize) -> Vec<KernelRung> {
    use cubemesh_gray::{gray_fill_run, gray_inverse_fill, hamming_total};
    use std::hint::black_box;
    const N: usize = 1 << 20;
    let mut buf = vec![0u64; N];
    let mut ys = vec![0u64; N];
    gray_fill_run(&mut ys, 1, 0, 0);
    let (mut enc, mut dec, mut ham) = (f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..reps.max(1) {
        let ((), t) = time(|| gray_fill_run(black_box(&mut buf), 0, 0, 0));
        enc = enc.min(t);
        let ((), t) = time(|| gray_inverse_fill(black_box(&mut buf)));
        dec = dec.min(t);
        let (total, t) = time(|| hamming_total(black_box(&buf), black_box(&ys)));
        black_box(total);
        ham = ham.min(t);
    }
    let rung = |name, secs: f64| KernelRung {
        name,
        elems: N,
        elems_per_s: N as f64 / secs.max(1e-12),
    };
    vec![
        rung("gray_encode", enc),
        rung("gray_decode", dec),
        rung("hamming", ham),
    ]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn to_json(rungs: &[Rung], threads: usize, kernels: &[KernelRung]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"BENCH_3\",");
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let _ = writeln!(out, "  \"created_unix\": {unix},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    // Honest-baseline marker: with the shim backend on one worker,
    // `speedup_construct_metrics` < 1.0 is the forced two-shard merge
    // overhead on a sequential host, not a parallelism regression.
    let _ = writeln!(out, "  \"parallel_backend\": \"{}\",", rayon::backend());
    out.push_str("  \"rungs\": [\n");
    for (i, r) in rungs.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"shape\": \"{}\", \"nodes\": {}, \"edges\": {}, \"route_hops\": {}, ",
            json_escape(&r.shape),
            r.nodes,
            r.edges,
            r.route_hops
        );
        let _ = write!(
            out,
            "\"host_dim\": {}, \"dilation\": {}, \"congestion\": {}, ",
            r.host_dim, r.dilation, r.congestion
        );
        let _ = write!(
            out,
            "\"plan_s\": {:.6}, \"construct_s\": {:.6}, \"metrics_s\": {:.6}, \"verify_s\": {:.6}, ",
            r.plan_s, r.construct_s, r.metrics_s, r.verify_s
        );
        let _ = write!(
            out,
            "\"construct_nodes_per_s\": {:.1}, \"metrics_hops_per_s\": {:.1}, ",
            r.construct_nodes_per_s, r.metrics_hops_per_s
        );
        let _ = write!(
            out,
            "\"seq_construct_s\": {:.6}, \"seq_metrics_s\": {:.6}, \"speedup_construct_metrics\": {:.3}, ",
            r.seq_construct_s, r.seq_metrics_s, r.speedup_construct_metrics
        );
        let _ = write!(
            out,
            "\"peak_rss_kb\": {}, \"threads\": {}, \"host_cores\": {}",
            r.peak_rss_kb, threads, cores
        );
        out.push('}');
        out.push_str(if i + 1 < rungs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"elems\": {}, \"elems_per_s\": {:.1}}}",
            k.name, k.elems, k.elems_per_s
        );
        out.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One BENCH_4 replay rung: a certificate-slack replay plus a saturation
/// sweep, both timed.
#[derive(Clone, Debug)]
struct ReplayRung {
    shape: String,
    events: usize,
    slack_s: f64,
    events_per_s: f64,
    static_peak_flits: u64,
    dynamic_peak_flits: u64,
    utilization: f64,
    makespan: u64,
    sweep_s: f64,
    knee_rate: String,
}

/// The BENCH_4 replay ladder: stencil slack at paper-relevant shapes plus
/// a knee search on the smallest. `--quick` keeps only the first rung.
fn run_replay_ladder(quick: bool) -> Option<Vec<ReplayRung>> {
    use cubemesh_replay::{certificate_slack, rate_sweep, saturation_knee};
    let shapes: &[&[usize]] = if quick {
        &[&[4, 4, 4]]
    } else {
        &[&[4, 4, 4], &[8, 8, 8], &[16, 16, 16], &[3, 3, 7]]
    };
    let switching = cubemesh_netsim::Switching::StoreAndForward;
    let mut rungs = Vec::new();
    for dims in shapes {
        let shape = Shape::new(dims);
        let (entry, slack_s) = time(|| certificate_slack(&shape, 8, 4, switching));
        let entry = match entry {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cubemesh-bench: replay slack for {shape} failed: {e}");
                return None;
            }
        };
        if entry.violation {
            eprintln!(
                "cubemesh-bench: {shape} VIOLATES its congestion certificate \
                 ({} > {})",
                entry.dynamic_peak_flits, entry.static_peak_flits
            );
            return None;
        }
        // Knee search on the first rung only: the sweep is the expensive
        // half and one point is enough to keep the path exercised.
        let (sweep_s, knee_rate) = if rungs.is_empty() {
            let (emb, _) = cubemesh_core::embed_mesh(&shape);
            let rates: [(u64, u64); 4] = [(1, 32), (1, 8), (1, 2), (1, 1)];
            let (points, sweep_s) = time(|| rate_sweep(&emb, &rates, 8, 128, 3, switching));
            let points = match points {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("cubemesh-bench: replay sweep for {shape} failed: {e}");
                    return None;
                }
            };
            let knee = match saturation_knee(&points) {
                Some(k) => format!("{}/{}", points[k].rate_num, points[k].rate_den),
                None => "none".to_owned(),
            };
            (sweep_s, knee)
        } else {
            (0.0, String::new())
        };
        rungs.push(ReplayRung {
            shape: shape.to_string(),
            events: entry.messages as usize,
            slack_s,
            events_per_s: entry.messages as f64 / slack_s.max(1e-12),
            static_peak_flits: entry.static_peak_flits,
            dynamic_peak_flits: entry.dynamic_peak_flits,
            utilization: entry.utilization,
            makespan: entry.makespan,
            sweep_s,
            knee_rate,
        });
    }
    Some(rungs)
}

fn bench4_json(rungs: &[ReplayRung]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"BENCH_4\",\n");
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let _ = writeln!(out, "  \"created_unix\": {unix},");
    out.push_str("  \"rungs\": [\n");
    for (i, r) in rungs.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"shape\": \"{}\", \"events\": {}, \"slack_s\": {:.6}, \
             \"events_per_s\": {:.1}, \"static_peak_flits\": {}, \
             \"dynamic_peak_flits\": {}, \"utilization\": {:.4}, \
             \"makespan\": {}, \"sweep_s\": {:.6}, \"knee_rate\": \"{}\"",
            json_escape(&r.shape),
            r.events,
            r.slack_s,
            r.events_per_s,
            r.static_peak_flits,
            r.dynamic_peak_flits,
            r.utilization,
            r.makespan,
            r.sweep_s,
            json_escape(&r.knee_rate)
        );
        out.push('}');
        out.push_str(if i + 1 < rungs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One BENCH_5 query-service rung: a named figure of merit. Names
/// ending in `_ns` are latencies (lower is better); the rest are
/// throughputs (higher is better) — the compare gate keys direction off
/// the suffix.
#[derive(Clone, Debug)]
struct ServiceRung {
    name: &'static str,
    value: f64,
}

/// Build wall time and record counts for the BENCH_5 header.
#[derive(Clone, Debug)]
struct ServiceMeta {
    db_max_axis: usize,
    db_records: usize,
    db_build_s: f64,
}

/// Percentile over a sorted ns-sample slice (nearest-rank).
fn percentile_ns(sorted: &[u64], pct: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[idx] as f64
}

/// The BENCH_5 query-service ladder, driven through the in-process
/// [`cubemesh_service::QueryEngine`] so the rungs measure the lookup
/// path (validate → pread → decode → render), not socket scheduling.
///
/// * `lookup_p50_ns` / `lookup_p99_ns` — warm single-shape lookup
///   latency over the whole census, nearest-rank percentiles, best of
///   `reps` passes;
/// * `queries_per_s_batch_{1,64,1024}` — full protocol round trips
///   (`handle_line`: parse the batched JSON request, look every shape
///   up, render the response) at three batch sizes;
/// * `cold_miss_ns` — best-case live-plan latency on shapes outside the
///   database universe (each sample a distinct shape, so the overlay
///   never serves it).
///
/// The database itself is rebuilt in a scratch directory on every run
/// (max axis 12, a few hundred shapes) and its build time is recorded
/// in the header as context, not gated.
fn run_service_bench(reps: usize) -> Option<(Vec<ServiceRung>, ServiceMeta)> {
    use cubemesh_plandb::{build, enumerate_keys, BuildConfig};
    use cubemesh_service::{handle_line, EngineConfig, QueryEngine};

    const DB_MAX_AXIS: usize = 12;
    let dir = std::env::temp_dir().join(format!("cubemesh-bench5-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cubemesh-bench: service scratch dir: {e}");
        return None;
    }
    let db_path = dir.join("plans.db");
    let (report, db_build_s) = time(|| build(&BuildConfig::new(DB_MAX_AXIS), &db_path));
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cubemesh-bench: service db build: {e}");
            return None;
        }
    };
    let engine = match QueryEngine::new(&EngineConfig {
        db: Some(db_path),
        overflow: None,
    }) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cubemesh-bench: service engine: {e}");
            return None;
        }
    };
    let keys = enumerate_keys(DB_MAX_AXIS);

    // Warm lookup latency: per-shape samples across the full census,
    // percentiles per pass, best pass kept (same minimum-of-reps
    // rationale as the shape ladder).
    const LATENCY_SAMPLES: usize = 8192;
    let (mut p50, mut p99) = (f64::MAX, f64::MAX);
    for _ in 0..reps.max(1) {
        let mut samples = Vec::with_capacity(LATENCY_SAMPLES);
        for i in 0..LATENCY_SAMPLES {
            let key = &keys[i % keys.len()];
            let t0 = Instant::now();
            if engine.lookup(key).is_err() {
                eprintln!("cubemesh-bench: warm lookup failed for {key:?}");
                return None;
            }
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        samples.sort_unstable();
        p50 = p50.min(percentile_ns(&samples, 50));
        p99 = p99.min(percentile_ns(&samples, 99));
    }

    // Batched protocol throughput: prebuilt request lines, timed through
    // the full parse → lookup → render path.
    let batch_request = |batch: usize, offset: usize| {
        let mut line = String::from("{\"op\":\"plan\",\"shapes\":[");
        for i in 0..batch {
            if i > 0 {
                line.push(',');
            }
            line.push('[');
            for (j, d) in keys[(offset + i) % keys.len()].iter().enumerate() {
                if j > 0 {
                    line.push(',');
                }
                let _ = write!(line, "{d}");
            }
            line.push(']');
        }
        line.push_str("]}");
        line
    };
    let mut batch_rungs = Vec::new();
    for &(batch, iters, name) in &[
        (1usize, 8192usize, "queries_per_s_batch_1"),
        (64, 512, "queries_per_s_batch_64"),
        (1024, 64, "queries_per_s_batch_1024"),
    ] {
        let requests: Vec<String> = (0..iters).map(|i| batch_request(batch, i)).collect();
        let mut best = f64::MAX;
        for _ in 0..reps.max(1) {
            let ((), secs) = time(|| {
                for req in &requests {
                    let (response, _) = handle_line(&engine, req);
                    std::hint::black_box(&response);
                }
            });
            best = best.min(secs);
        }
        batch_rungs.push(ServiceRung {
            name,
            value: (batch * iters) as f64 / best.max(1e-12),
        });
    }

    // Cold-miss latency: every sample is a distinct shape outside the
    // max-axis-12 universe, so each one takes the live plan-and-certify
    // path exactly once. Best case over the samples — the sample count
    // is the only lever against host jitter here, since a shape can
    // only be cold once per engine.
    const COLD_SAMPLES: usize = 512;
    let mut cold_ns = u64::MAX;
    for i in 0..COLD_SAMPLES {
        let dims = [DB_MAX_AXIS + 1, DB_MAX_AXIS + 1, DB_MAX_AXIS + 1 + i];
        let t0 = Instant::now();
        if engine.lookup(&dims).is_err() {
            eprintln!("cubemesh-bench: cold lookup failed for {dims:?}");
            return None;
        }
        cold_ns = cold_ns.min(t0.elapsed().as_nanos() as u64);
    }

    std::fs::remove_dir_all(&dir).ok();
    let mut rungs = vec![
        ServiceRung {
            name: "lookup_p50_ns",
            value: p50,
        },
        ServiceRung {
            name: "lookup_p99_ns",
            value: p99,
        },
    ];
    rungs.extend(batch_rungs);
    rungs.push(ServiceRung {
        name: "cold_miss_ns",
        value: cold_ns as f64,
    });
    Some((
        rungs,
        ServiceMeta {
            db_max_axis: DB_MAX_AXIS,
            db_records: report.shapes,
            db_build_s,
        },
    ))
}

fn bench5_json(rungs: &[ServiceRung], meta: &ServiceMeta) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"BENCH_5\",\n");
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let _ = writeln!(out, "  \"created_unix\": {unix},");
    let _ = writeln!(out, "  \"db_max_axis\": {},", meta.db_max_axis);
    let _ = writeln!(out, "  \"db_records\": {},", meta.db_records);
    let _ = writeln!(out, "  \"db_build_s\": {:.6},", meta.db_build_s);
    out.push_str("  \"rungs\": [\n");
    for (i, r) in rungs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"value\": {:.1}}}",
            r.name, r.value
        );
        out.push_str(if i + 1 < rungs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_shape(s: &str) -> Option<Vec<usize>> {
    let dims: Vec<usize> = s
        .split('x')
        .map(|t| t.parse().ok())
        .collect::<Option<_>>()?;
    (!dims.is_empty() && dims.iter().all(|&d| d > 0)).then_some(dims)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    obs::init_from_env();
    if args.iter().any(|a| a == "--stats") && obs::mode() == obs::StatsMode::Off {
        obs::set_mode(obs::StatsMode::Text);
    }
    let trace_out = flag_value(&args, "--trace");
    if trace_out.is_some() {
        obs::trace::set_enabled(true);
    }
    if let Some(t) = flag_value(&args, "--threads") {
        std::env::set_var("RAYON_NUM_THREADS", &t);
    }
    let threads = rayon::current_num_threads();
    // Lead with the execution environment so a pasted bench line can't be
    // mistaken for numbers from a real work-stealing pool.
    println!(
        "cubemesh-bench: threads={threads} host_cores={} backend={}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rayon::backend()
    );
    let par_only = args.iter().any(|a| a == "--par-only");
    let reps: usize = flag_value(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_3.json".to_owned());

    let ladder: Vec<Vec<usize>> = if let Some(list) = flag_value(&args, "--shapes") {
        match list.split(',').map(parse_shape).collect::<Option<Vec<_>>>() {
            Some(v) => v,
            None => {
                eprintln!("cubemesh-bench: bad --shapes '{list}'");
                return ExitCode::from(2);
            }
        }
    } else if args.iter().any(|a| a == "--quick") {
        vec![vec![16, 16, 16]]
    } else {
        LADDER.iter().map(|d| d.to_vec()).collect()
    };

    let mut rungs = Vec::new();
    for dims in &ladder {
        let Some((mut rung, emb)) = run_pipeline(dims, reps) else {
            continue;
        };
        let m_par = emb.metrics();
        drop(emb);

        if !par_only {
            // Sequential re-run: same pipeline with one worker. The env
            // var is re-read per parallel region, so toggling it here
            // switches every stage onto the sequential path.
            std::env::set_var("RAYON_NUM_THREADS", "1");
            let shape = Shape::new(dims);
            let mut planner = Planner::new();
            let plan = planner.plan(&shape).expect("planned above");
            let (mut seq_construct_s, mut seq_metrics_s) = (f64::MAX, f64::MAX);
            let mut m_seq = m_par;
            for _ in 0..reps.max(1) {
                let (emb_seq, c) =
                    time(|| construct(&shape, &plan).expect("planner-produced plan lowers"));
                seq_construct_s = seq_construct_s.min(c);
                let (m, ms) = time(|| emb_seq.metrics());
                seq_metrics_s = seq_metrics_s.min(ms);
                m_seq = m;
                if let Err(e) = emb_seq.verify() {
                    eprintln!("cubemesh-bench: {shape} sequential verify failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
            if m_seq != m_par {
                eprintln!(
                    "cubemesh-bench: {shape}: parallel metrics {m_par:?} != sequential {m_seq:?}"
                );
                return ExitCode::FAILURE;
            }
            rung.seq_construct_s = seq_construct_s;
            rung.seq_metrics_s = seq_metrics_s;
            rung.speedup_construct_metrics =
                (seq_construct_s + seq_metrics_s) / (rung.construct_s + rung.metrics_s).max(1e-12);
        }

        println!(
            "{:>12}  nodes {:>9}  construct {:>8.3}s  metrics {:>7.3}s  verify {:>7.3}s  \
             d={} c={}{}",
            rung.shape,
            rung.nodes,
            rung.construct_s,
            rung.metrics_s,
            rung.verify_s,
            rung.dilation,
            rung.congestion,
            if par_only {
                String::new()
            } else {
                format!("  speedup {:.2}x", rung.speedup_construct_metrics)
            }
        );
        rungs.push(rung);
    }

    if rungs.is_empty() {
        eprintln!("cubemesh-bench: no rungs completed");
        return ExitCode::FAILURE;
    }
    let kernels = run_kernel_bench(reps);
    for k in &kernels {
        println!(
            "{:>12}  kernel {:>9} elems  {:>10.1}M elems/s",
            k.name,
            k.elems,
            k.elems_per_s / 1e6
        );
    }
    let doc = to_json(&rungs, threads, &kernels);
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cubemesh-bench: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    if args.iter().any(|a| a == "--json") {
        print!("{doc}");
    }
    println!("wrote {out_path}");

    // Perf-trajectory gate: compare against a prior baseline, fail on any
    // metric past tolerance. Runs before the replay ladder so the exit
    // code is decided even if BENCH_4 is skipped.
    let mut regressed = false;
    let tolerance = flag_value(&args, "--tolerance")
        .and_then(|v| v.parse::<f64>().ok())
        .map(|pct| pct / 100.0)
        .unwrap_or(cubemesh_bench::DEFAULT_TOLERANCE);
    // Self-test hook for check.sh: deflate this run's throughput 25%
    // (past any sane tolerance) to prove the gate actually trips.
    let inject = args.iter().any(|a| a == "--inject-regression");
    if let Some(base_path) = flag_value(&args, "--compare") {
        let base_doc = match std::fs::read_to_string(&base_path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cubemesh-bench: reading baseline {base_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match cubemesh_bench::load_baseline(&base_doc) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cubemesh-bench: baseline {base_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Backend honesty gate: throughput from different executors is
        // not comparable, so a backend mismatch is a hard error, not a
        // warning — regenerate the baseline on the current backend.
        if let Some(backend) = &baseline.parallel_backend {
            if backend != rayon::backend() {
                eprintln!(
                    "cubemesh-bench: baseline backend '{backend}' != current '{}' — \
                     refusing to compare different executors; regenerate {base_path}",
                    rayon::backend()
                );
                return ExitCode::FAILURE;
            }
        }
        let current: Vec<cubemesh_bench::RungMetrics> = rungs
            .iter()
            .map(|r| cubemesh_bench::RungMetrics {
                shape: r.shape.clone(),
                construct_nodes_per_s: r.construct_nodes_per_s * if inject { 0.75 } else { 1.0 },
                metrics_hops_per_s: r.metrics_hops_per_s * if inject { 0.75 } else { 1.0 },
                peak_rss_kb: r.peak_rss_kb,
            })
            .collect();
        let mut report = match cubemesh_bench::compare_rungs(&baseline.rungs, &current, tolerance) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cubemesh-bench: compare: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Kernel micro-rungs gate alongside the shape rungs; baselines
        // predating the kernel bench simply contribute no deltas.
        let current_kernels: Vec<cubemesh_bench::KernelMetrics> = kernels
            .iter()
            .map(|k| cubemesh_bench::KernelMetrics {
                name: k.name.to_owned(),
                elems_per_s: k.elems_per_s * if inject { 0.75 } else { 1.0 },
            })
            .collect();
        report.deltas.extend(cubemesh_bench::compare_kernels(
            &baseline.kernels,
            &current_kernels,
            tolerance,
        ));
        print!("{}", report.to_text());
        if let Some(path) = flag_value(&args, "--compare-out") {
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("cubemesh-bench: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        regressed = !report.regressions().is_empty();
    }

    // BENCH_5: the query-service ladder. Runs with fixed parameters
    // regardless of --quick (it is cheap next to the shape ladder and
    // the rungs must stay comparable across runs).
    if !args.iter().any(|a| a == "--no-service") {
        let Some((service_rungs, service_meta)) = run_service_bench(reps) else {
            return ExitCode::FAILURE;
        };
        println!(
            "     service  db {} records in {:.3}s (max axis {})",
            service_meta.db_records, service_meta.db_build_s, service_meta.db_max_axis
        );
        for r in &service_rungs {
            if r.name.ends_with("_ns") {
                println!("{:>24}  {:>12.0} ns", r.name, r.value);
            } else {
                println!("{:>24}  {:>12.0} queries/s", r.name, r.value);
            }
        }
        let service_out =
            flag_value(&args, "--service-out").unwrap_or_else(|| "BENCH_5.json".to_owned());
        let doc5 = bench5_json(&service_rungs, &service_meta);
        if let Err(e) = std::fs::write(&service_out, &doc5) {
            eprintln!("cubemesh-bench: writing {service_out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {service_out}");

        if let Some(base5_path) = flag_value(&args, "--compare-service") {
            let base_doc = match std::fs::read_to_string(&base5_path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cubemesh-bench: reading service baseline {base5_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let baseline = match cubemesh_bench::load_service_baseline(&base_doc) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cubemesh-bench: service baseline {base5_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let current: Vec<cubemesh_bench::ServiceMetrics> = service_rungs
                .iter()
                .map(|r| cubemesh_bench::ServiceMetrics {
                    name: r.name.to_owned(),
                    // Injected regressions move each metric the bad way:
                    // latencies up, throughput down — by well over the
                    // doubled service tolerance, so the self-test trips
                    // even against a same-run baseline.
                    value: r.value
                        * match (inject, r.name.ends_with("_ns")) {
                            (true, true) => 1.5,
                            (true, false) => 0.5,
                            (false, _) => 1.0,
                        },
                })
                .collect();
            let deltas = match cubemesh_bench::compare_service(&baseline, &current, tolerance) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cubemesh-bench: service compare: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = cubemesh_bench::CompareReport {
                tolerance,
                deltas,
                skipped: Vec::new(),
            };
            print!("{}", report.to_text());
            for r in &current {
                if cubemesh_bench::SERVICE_REPORT_ONLY.contains(&r.name.as_str()) {
                    println!("  {:>12} report-only, not gated", r.name);
                }
            }
            regressed = regressed || !report.regressions().is_empty();
        }
    }

    if !args.iter().any(|a| a == "--no-replay") {
        let quick = args.iter().any(|a| a == "--quick");
        let Some(replay_rungs) = run_replay_ladder(quick) else {
            return ExitCode::FAILURE;
        };
        for r in &replay_rungs {
            println!(
                "{:>12}  replay {:>7} msgs  slack {:>8.3}s ({:>9.0} msg/s)  \
                 peak {}/{} flits{}",
                r.shape,
                r.events,
                r.slack_s,
                r.events_per_s,
                r.dynamic_peak_flits,
                r.static_peak_flits,
                if r.knee_rate.is_empty() {
                    String::new()
                } else {
                    format!("  knee @ {}", r.knee_rate)
                }
            );
        }
        let replay_out =
            flag_value(&args, "--replay-out").unwrap_or_else(|| "BENCH_4.json".to_owned());
        let doc4 = bench4_json(&replay_rungs);
        if let Err(e) = std::fs::write(&replay_out, &doc4) {
            eprintln!("cubemesh-bench: writing {replay_out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {replay_out}");
    }
    obs::report();
    if let Some(path) = trace_out {
        obs::trace::set_enabled(false);
        let log = obs::trace::drain();
        match log.write_files(std::path::Path::new(&path)) {
            Ok(paths) => {
                let names: Vec<String> = paths.iter().map(|p| p.display().to_string()).collect();
                eprintln!("trace: {} events -> {}", log.len(), names.join(", "));
            }
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
    if regressed {
        eprintln!("cubemesh-bench: REGRESSION beyond tolerance (see compare report above)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
