//! Bench-history comparison: load a prior `BENCH_3.json` baseline and
//! gate the current run's per-rung throughput/memory against it.
//!
//! The comparison is deliberately narrow — it reads only the three
//! figures of merit the perf trajectory is judged on:
//!
//! * `construct_nodes_per_s` (higher is better),
//! * `metrics_hops_per_s` (higher is better),
//! * `peak_rss_kb` (lower is better).
//!
//! Rungs are matched by shape string; rungs present on only one side
//! (e.g. a `--quick` run against a full-ladder baseline) are skipped, so
//! the smoke gate in `scripts/check.sh` compares just the rung it ran. A
//! metric **regresses** when it moves in the bad direction by more than
//! the tolerance (throughput: `current < baseline·(1-tol)`; RSS:
//! `current > baseline·(1+tol)`). Stage timings are minimum-of-reps, so
//! the tolerance absorbs scheduler noise, not measurement noise; the
//! default (15%) sits below the 20% injected-regression self-test in
//! check.sh and well above observed rerun jitter on the pinned ladder.

use cubemesh_obs::{parse_json, JsonValue};
use std::fmt::Write as _;

/// Default regression tolerance (fraction of the baseline value).
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// The figures of merit one rung is compared on.
#[derive(Clone, Debug, PartialEq)]
pub struct RungMetrics {
    /// Shape string, e.g. `"64x64x64"` — the join key.
    pub shape: String,
    /// Construct throughput, nodes per second (higher is better).
    pub construct_nodes_per_s: f64,
    /// Metrics throughput, route hops per second (higher is better).
    pub metrics_hops_per_s: f64,
    /// Peak resident set size in kB (lower is better; 0 = unavailable).
    pub peak_rss_kb: u64,
}

/// One kernel micro-bench rung: a named single-core kernel and its
/// throughput in elements per second (higher is better).
#[derive(Clone, Debug, PartialEq)]
pub struct KernelMetrics {
    /// Kernel name, e.g. `"gray_encode"` — the join key.
    pub name: String,
    /// Throughput in elements per second.
    pub elems_per_s: f64,
}

/// A parsed baseline document (the subset of `BENCH_3.json` the compare
/// gate consumes).
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Worker-thread count the baseline ran with.
    pub threads: u64,
    /// Cores on the baseline host.
    pub host_cores: u64,
    /// Parallel backend name (absent in pre-trace baselines).
    pub parallel_backend: Option<String>,
    /// Per-rung figures of merit.
    pub rungs: Vec<RungMetrics>,
    /// Kernel micro-bench rungs (empty in pre-kernel baselines, in which
    /// case the kernel gate is skipped rather than failed).
    pub kernels: Vec<KernelMetrics>,
}

/// Parse a `BENCH_3.json` document into a [`Baseline`].
pub fn load_baseline(json: &str) -> Result<Baseline, String> {
    let doc = parse_json(json)
        .map_err(|(pos, msg)| format!("baseline is not valid JSON: {msg} at byte {pos}"))?;
    let num = |v: Option<&JsonValue>| v.and_then(JsonValue::as_f64);
    let rungs_json = doc
        .get("rungs")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "baseline has no \"rungs\" array".to_owned())?;
    let mut rungs = Vec::with_capacity(rungs_json.len());
    for (i, r) in rungs_json.iter().enumerate() {
        let shape = r
            .get("shape")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("rung {i} has no \"shape\""))?
            .to_owned();
        rungs.push(RungMetrics {
            shape,
            construct_nodes_per_s: num(r.get("construct_nodes_per_s")).unwrap_or(0.0),
            metrics_hops_per_s: num(r.get("metrics_hops_per_s")).unwrap_or(0.0),
            peak_rss_kb: num(r.get("peak_rss_kb")).unwrap_or(0.0) as u64,
        });
    }
    let mut kernels = Vec::new();
    if let Some(arr) = doc.get("kernels").and_then(JsonValue::as_arr) {
        for (i, k) in arr.iter().enumerate() {
            let name = k
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("kernel {i} has no \"name\""))?
                .to_owned();
            kernels.push(KernelMetrics {
                name,
                elems_per_s: num(k.get("elems_per_s")).unwrap_or(0.0),
            });
        }
    }
    Ok(Baseline {
        threads: num(doc.get("threads")).unwrap_or(0.0) as u64,
        host_cores: num(doc.get("host_cores")).unwrap_or(0.0) as u64,
        parallel_backend: doc
            .get("parallel_backend")
            .and_then(JsonValue::as_str)
            .map(str::to_owned),
        rungs,
        kernels,
    })
}

/// One metric's baseline-vs-current delta.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Rung shape.
    pub shape: String,
    /// Metric name.
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed change in percent of baseline, oriented so **negative is
    /// worse** for every metric (RSS growth reports as negative).
    pub change_pct: f64,
    /// Did this metric move past the tolerance in the bad direction?
    pub regressed: bool,
}

/// The result of comparing a run against a baseline.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// Tolerance the comparison used (fraction of baseline).
    pub tolerance: f64,
    /// Every compared metric, in rung order.
    pub deltas: Vec<Delta>,
    /// Rungs present in the current run but not the baseline (or vice
    /// versa), skipped.
    pub skipped: Vec<String>,
}

impl CompareReport {
    /// Deltas that breached the tolerance.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Human-readable report, one line per metric.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench compare (tolerance {:.0}%):",
            self.tolerance * 100.0
        );
        for d in &self.deltas {
            let _ = writeln!(
                out,
                "  {:>12} {:<24} {:>14.1} -> {:>14.1}  {:>+7.1}%{}",
                d.shape,
                d.metric,
                d.baseline,
                d.current,
                d.change_pct,
                if d.regressed { "  REGRESSION" } else { "" }
            );
        }
        for s in &self.skipped {
            let _ = writeln!(out, "  {s:>12} not in both runs, skipped");
        }
        let n = self.regressions().len();
        let _ = writeln!(
            out,
            "  {} metric(s) compared, {} regression(s)",
            self.deltas.len(),
            n
        );
        out
    }

    /// Machine-readable report (the check.sh artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"tolerance\": {:.4},", self.tolerance);
        let _ = writeln!(out, "  \"regressions\": {},", self.regressions().len());
        out.push_str("  \"deltas\": [\n");
        for (i, d) in self.deltas.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"shape\": \"{}\", \"metric\": \"{}\", \"baseline\": {:.1}, \
                 \"current\": {:.1}, \"change_pct\": {:.2}, \"regressed\": {}}}",
                d.shape.replace('"', "\\\""),
                d.metric,
                d.baseline,
                d.current,
                d.change_pct,
                d.regressed
            );
            out.push_str(if i + 1 < self.deltas.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"skipped\": [");
        let skipped: Vec<String> = self
            .skipped
            .iter()
            .map(|s| format!("\"{}\"", s.replace('"', "\\\"")))
            .collect();
        out.push_str(&skipped.join(", "));
        out.push_str("]\n}\n");
        out
    }
}

/// Compare `current` rungs against `baseline` rungs at `tolerance`.
/// Returns an error when no rung is present on both sides (a gate that
/// compares nothing must not pass silently).
pub fn compare(
    baseline: &[RungMetrics],
    current: &[RungMetrics],
    tolerance: f64,
) -> Result<CompareReport, String> {
    let mut deltas = Vec::new();
    let mut skipped = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.shape == cur.shape) else {
            skipped.push(cur.shape.clone());
            continue;
        };
        push_delta(
            &mut deltas,
            &cur.shape,
            "construct_nodes_per_s",
            base.construct_nodes_per_s,
            cur.construct_nodes_per_s,
            Direction::HigherIsBetter,
            tolerance,
        );
        push_delta(
            &mut deltas,
            &cur.shape,
            "metrics_hops_per_s",
            base.metrics_hops_per_s,
            cur.metrics_hops_per_s,
            Direction::HigherIsBetter,
            tolerance,
        );
        push_delta(
            &mut deltas,
            &cur.shape,
            "peak_rss_kb",
            base.peak_rss_kb as f64,
            cur.peak_rss_kb as f64,
            Direction::LowerIsBetter,
            tolerance,
        );
    }
    for base in baseline {
        if !current.iter().any(|c| c.shape == base.shape) {
            skipped.push(base.shape.clone());
        }
    }
    if deltas.is_empty() {
        return Err(format!(
            "no rung appears in both baseline and current run \
             (baseline: {:?}, current: {:?})",
            baseline.iter().map(|r| &r.shape).collect::<Vec<_>>(),
            current.iter().map(|r| &r.shape).collect::<Vec<_>>()
        ));
    }
    Ok(CompareReport {
        tolerance,
        deltas,
        skipped,
    })
}

enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// One BENCH_5 query-service rung: a named figure of merit. The
/// direction is encoded in the name — `…_ns` latencies are
/// lower-is-better, everything else (throughput) is higher-is-better.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceMetrics {
    /// Rung name, e.g. `"lookup_p99_ns"` — the join key.
    pub name: String,
    /// The measured value.
    pub value: f64,
}

/// Parse a `BENCH_5.json` document into its service rungs.
pub fn load_service_baseline(json: &str) -> Result<Vec<ServiceMetrics>, String> {
    let doc = parse_json(json)
        .map_err(|(pos, msg)| format!("baseline is not valid JSON: {msg} at byte {pos}"))?;
    let rungs_json = doc
        .get("rungs")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "baseline has no \"rungs\" array".to_owned())?;
    let mut rungs = Vec::with_capacity(rungs_json.len());
    for (i, r) in rungs_json.iter().enumerate() {
        let name = r
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("service rung {i} has no \"name\""))?
            .to_owned();
        rungs.push(ServiceMetrics {
            name,
            value: r.get("value").and_then(JsonValue::as_f64).unwrap_or(0.0),
        });
    }
    Ok(rungs)
}

/// Compare the BENCH_5 service rungs, matched by name; rungs present on
/// only one side are skipped (an empty baseline gates nothing). Returns
/// an error when both sides are non-empty but nothing matches — a
/// service gate that silently compares nothing must not pass.
///
/// Service rungs recorded for visibility but excluded from gating: a
/// cold miss takes the live plan-and-certify path exactly once per
/// shape, so the rung is a best case over one-shot samples and its
/// run-to-run spread (host CPU phase) exceeds any tolerance tight
/// enough to catch a real regression. The repeatable rungs (8k-sample
/// warm percentiles, thousand-request throughput) carry the gate.
pub const SERVICE_REPORT_ONLY: &[&str] = &["cold_miss_ns"];

/// All gated service rungs are judged at **twice** the shared tolerance:
/// these are sub-microsecond lookups and single-connection loopback
/// throughput, and both wobble with host scheduler jitter and CPU
/// frequency drift far more than the ladder's multi-millisecond rungs
/// do (observed swings approach 2x on shared hosts). A service gate
/// that trips on an idle-host rerun is worse than a looser one; the
/// injected-regression self-test uses multipliers well outside the
/// doubled band so the gate is still provably live. The `…_ns` suffix
/// only flips the direction: latency regresses upward, throughput
/// downward.
pub fn compare_service(
    baseline: &[ServiceMetrics],
    current: &[ServiceMetrics],
    tolerance: f64,
) -> Result<Vec<Delta>, String> {
    let mut deltas = Vec::new();
    for cur in current {
        if SERVICE_REPORT_ONLY.contains(&cur.name.as_str()) {
            continue;
        }
        let Some(base) = baseline.iter().find(|b| b.name == cur.name) else {
            continue;
        };
        let dir = if cur.name.ends_with("_ns") {
            Direction::LowerIsBetter
        } else {
            Direction::HigherIsBetter
        };
        let tol = tolerance * 2.0;
        push_delta(
            &mut deltas,
            &cur.name,
            "service",
            base.value,
            cur.value,
            dir,
            tol,
        );
    }
    if deltas.is_empty() && !baseline.is_empty() && !current.is_empty() {
        return Err(format!(
            "no service rung appears in both baseline and current run \
             (baseline: {:?}, current: {:?})",
            baseline.iter().map(|r| &r.name).collect::<Vec<_>>(),
            current.iter().map(|r| &r.name).collect::<Vec<_>>()
        ));
    }
    Ok(deltas)
}

/// Compare the kernel micro-rungs, matched by name; returns one
/// higher-is-better delta per kernel present on both sides. An empty
/// baseline list yields no deltas, so pre-kernel baselines pass untouched.
pub fn compare_kernels(
    baseline: &[KernelMetrics],
    current: &[KernelMetrics],
    tolerance: f64,
) -> Vec<Delta> {
    let mut deltas = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.name == cur.name) else {
            continue;
        };
        push_delta(
            &mut deltas,
            &cur.name,
            "kernel_elems_per_s",
            base.elems_per_s,
            cur.elems_per_s,
            Direction::HigherIsBetter,
            tolerance,
        );
    }
    deltas
}

fn push_delta(
    deltas: &mut Vec<Delta>,
    shape: &str,
    metric: &'static str,
    baseline: f64,
    current: f64,
    dir: Direction,
    tolerance: f64,
) {
    // A zero/absent baseline (pre-RSS platforms, older docs) can't be
    // compared meaningfully — record the delta but never flag it.
    if baseline <= 0.0 {
        deltas.push(Delta {
            shape: shape.to_owned(),
            metric,
            baseline,
            current,
            change_pct: 0.0,
            regressed: false,
        });
        return;
    }
    let (change_pct, regressed) = match dir {
        Direction::HigherIsBetter => {
            let change = (current - baseline) / baseline;
            (change * 100.0, current < baseline * (1.0 - tolerance))
        }
        Direction::LowerIsBetter => {
            // Oriented so negative is worse: RSS growth is negative change.
            let change = (baseline - current) / baseline;
            (change * 100.0, current > baseline * (1.0 + tolerance))
        }
    };
    deltas.push(Delta {
        shape: shape.to_owned(),
        metric,
        baseline,
        current,
        change_pct,
        regressed,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rung(shape: &str, c: f64, m: f64, rss: u64) -> RungMetrics {
        RungMetrics {
            shape: shape.to_owned(),
            construct_nodes_per_s: c,
            metrics_hops_per_s: m,
            peak_rss_kb: rss,
        }
    }

    #[test]
    fn identical_runs_pass() {
        let base = vec![rung("16x16x16", 1e6, 2e6, 5000)];
        let rep = compare(&base, &base, DEFAULT_TOLERANCE).unwrap();
        assert!(rep.regressions().is_empty(), "{}", rep.to_text());
        assert_eq!(rep.deltas.len(), 3);
    }

    #[test]
    fn twenty_percent_throughput_drop_fails() {
        let base = vec![rung("16x16x16", 1e6, 2e6, 5000)];
        let cur = vec![rung("16x16x16", 0.8e6, 2e6, 5000)];
        let rep = compare(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        let regs = rep.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "construct_nodes_per_s");
        assert!(regs[0].change_pct < -19.0);
    }

    #[test]
    fn within_tolerance_wobble_passes() {
        let base = vec![rung("16x16x16", 1e6, 2e6, 5000)];
        let cur = vec![rung("16x16x16", 0.9e6, 1.9e6, 5400)];
        let rep = compare(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(rep.regressions().is_empty(), "{}", rep.to_text());
    }

    #[test]
    fn rss_growth_is_a_regression() {
        let base = vec![rung("16x16x16", 1e6, 2e6, 5000)];
        let cur = vec![rung("16x16x16", 1e6, 2e6, 7000)];
        let rep = compare(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        let regs = rep.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "peak_rss_kb");
        assert!(regs[0].change_pct < 0.0, "growth reports as negative");
    }

    #[test]
    fn improvements_never_flag() {
        let base = vec![rung("16x16x16", 1e6, 2e6, 5000)];
        let cur = vec![rung("16x16x16", 5e6, 9e6, 100)];
        let rep = compare(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(rep.regressions().is_empty());
    }

    #[test]
    fn quick_run_compares_the_intersection() {
        let base = vec![
            rung("16x16x16", 1e6, 2e6, 5000),
            rung("64x64x64", 3e6, 4e6, 90000),
        ];
        let cur = vec![rung("16x16x16", 1e6, 2e6, 5000)];
        let rep = compare(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(rep.deltas.len(), 3);
        assert_eq!(rep.skipped, vec!["64x64x64".to_owned()]);
    }

    #[test]
    fn disjoint_runs_error() {
        let base = vec![rung("8x8x8", 1e6, 2e6, 5000)];
        let cur = vec![rung("16x16x16", 1e6, 2e6, 5000)];
        assert!(compare(&base, &cur, DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn zero_baseline_rss_never_flags() {
        let base = vec![rung("16x16x16", 1e6, 2e6, 0)];
        let cur = vec![rung("16x16x16", 1e6, 2e6, 123_456)];
        let rep = compare(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(rep.regressions().is_empty());
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let doc = r#"{
          "bench": "BENCH_3",
          "threads": 1,
          "host_cores": 1,
          "parallel_backend": "shim-sequential",
          "rungs": [
            {"shape": "16x16x16", "construct_nodes_per_s": 123456.7,
             "metrics_hops_per_s": 891011.1, "peak_rss_kb": 4242}
          ]
        }"#;
        let base = load_baseline(doc).unwrap();
        assert_eq!(base.threads, 1);
        assert_eq!(base.parallel_backend.as_deref(), Some("shim-sequential"));
        assert_eq!(base.rungs.len(), 1);
        assert_eq!(base.rungs[0].shape, "16x16x16");
        assert_eq!(base.rungs[0].peak_rss_kb, 4242);
        let rep = compare(&base.rungs, &base.rungs, DEFAULT_TOLERANCE).unwrap();
        assert!(rep.regressions().is_empty());
        // The JSON artifact parses back.
        assert!(parse_json(&rep.to_json()).is_ok());
    }

    #[test]
    fn kernel_rungs_gate_like_shape_rungs() {
        let kern = |n: &str, v: f64| KernelMetrics {
            name: n.to_owned(),
            elems_per_s: v,
        };
        let base = vec![kern("gray_encode", 1e9), kern("hamming", 2e9)];
        // Matching run: no regressions; unknown kernel skipped.
        let cur = vec![
            kern("gray_encode", 1.05e9),
            kern("hamming", 1.9e9),
            kern("brand_new", 9e9),
        ];
        let deltas = compare_kernels(&base, &cur, DEFAULT_TOLERANCE);
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|d| !d.regressed));
        // A 20% drop trips.
        let cur = vec![kern("gray_encode", 0.8e9)];
        let deltas = compare_kernels(&base, &cur, DEFAULT_TOLERANCE);
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].regressed);
        assert_eq!(deltas[0].metric, "kernel_elems_per_s");
        // Pre-kernel baseline: nothing compared, nothing failed.
        assert!(compare_kernels(&[], &cur, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn baseline_parses_kernel_rungs() {
        let doc = r#"{
          "bench": "BENCH_3",
          "threads": 1,
          "rungs": [
            {"shape": "16x16x16", "construct_nodes_per_s": 1.0,
             "metrics_hops_per_s": 2.0, "peak_rss_kb": 3}
          ],
          "kernels": [
            {"name": "gray_encode", "elems_per_s": 123456789.0}
          ]
        }"#;
        let base = load_baseline(doc).unwrap();
        assert_eq!(base.kernels.len(), 1);
        assert_eq!(base.kernels[0].name, "gray_encode");
        assert!((base.kernels[0].elems_per_s - 123456789.0).abs() < 1.0);
    }

    #[test]
    fn service_latency_and_throughput_gate_in_opposite_directions() {
        let rung = |n: &str, v: f64| ServiceMetrics {
            name: n.to_owned(),
            value: v,
        };
        let base = vec![
            rung("lookup_p99_ns", 10_000.0),
            rung("queries_per_s_batch_64", 1e6),
        ];
        // Latency up 40% AND throughput down 40%: both regress (every
        // service rung is judged at 2x tolerance, so 40% > 30% trips).
        let cur = vec![
            rung("lookup_p99_ns", 14_000.0),
            rung("queries_per_s_batch_64", 0.6e6),
        ];
        let deltas = compare_service(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|d| d.regressed), "{deltas:?}");
        // Latency up 20% and throughput down 20%: inside the doubled
        // service tolerance, both pass.
        let cur = vec![
            rung("lookup_p99_ns", 12_000.0),
            rung("queries_per_s_batch_64", 0.8e6),
        ];
        let deltas = compare_service(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(deltas.iter().all(|d| !d.regressed), "{deltas:?}");
        // Latency down and throughput up: improvements never flag.
        let cur = vec![
            rung("lookup_p99_ns", 5_000.0),
            rung("queries_per_s_batch_64", 2e6),
        ];
        let deltas = compare_service(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(deltas.iter().all(|d| !d.regressed), "{deltas:?}");
        // cold_miss_ns is report-only: even a 10x blowup produces no
        // delta, so it can never trip the gate.
        let base_cold = vec![rung("cold_miss_ns", 600.0), rung("lookup_p99_ns", 10_000.0)];
        let cur_cold = vec![
            rung("cold_miss_ns", 6_000.0),
            rung("lookup_p99_ns", 10_000.0),
        ];
        let deltas = compare_service(&base_cold, &cur_cold, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(deltas.len(), 1, "{deltas:?}");
        assert_eq!(deltas[0].shape, "lookup_p99_ns");
        assert!(SERVICE_REPORT_ONLY.contains(&"cold_miss_ns"));
        // Pre-service baseline gates nothing; disjoint non-empty errors.
        assert!(compare_service(&[], &cur, DEFAULT_TOLERANCE)
            .unwrap()
            .is_empty());
        let other = vec![rung("cold_miss_ns", 1.0)];
        assert!(compare_service(&other, &cur, DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn service_baseline_roundtrips_through_json() {
        let doc = r#"{
          "bench": "BENCH_5",
          "rungs": [
            {"name": "lookup_p50_ns", "value": 1234.5},
            {"name": "queries_per_s_batch_1024", "value": 987654.3}
          ]
        }"#;
        let base = load_service_baseline(doc).unwrap();
        assert_eq!(base.len(), 2);
        assert_eq!(base[0].name, "lookup_p50_ns");
        assert!((base[1].value - 987654.3).abs() < 1e-6);
        assert!(load_service_baseline("{\"bench\": \"BENCH_5\"}").is_err());
    }

    #[test]
    fn missing_fields_are_an_error() {
        assert!(load_baseline("not json").is_err());
        assert!(load_baseline("{\"bench\": \"BENCH_3\"}").is_err());
    }
}
