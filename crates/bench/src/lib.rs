//! Shared helpers for the cubemesh benchmarks, the `figures`
//! regeneration binary, and the `cubemesh-bench` perf-trajectory gate.
//! The timing ladders live in `benches/` and `src/bin/`; this crate
//! holds the bench-history comparison ([`compare`]) the check.sh gate
//! runs against `BENCH_3.json`.

pub mod compare;

pub use compare::{
    compare as compare_rungs, compare_kernels, compare_service, load_baseline,
    load_service_baseline, Baseline, CompareReport, Delta, KernelMetrics, RungMetrics,
    ServiceMetrics, DEFAULT_TOLERANCE, SERVICE_REPORT_ONLY,
};

/// Format a percentage with one decimal, paper-style.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x)
}
