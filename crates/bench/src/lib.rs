//! Shared helpers for the cubemesh benchmarks and the `figures`
//! regeneration binary. The real content lives in `benches/` and
//! `src/bin/figures.rs`.

/// Format a percentage with one decimal, paper-style.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x)
}
