//! Census benchmarks: Figure 2 classification throughput and the Figure 1
//! estimators.

use criterion::{criterion_group, criterion_main, Criterion};
use cubemesh_census::{census_3d, gray_fraction_closed_form, gray_fraction_monte_carlo};
use cubemesh_core::classify3;
use std::hint::black_box;

fn bench_classification(c: &mut Criterion) {
    // Raw per-mesh classification cost, on a mix of easy and hard shapes.
    let shapes: Vec<(u64, u64, u64)> = (1..=17)
        .flat_map(|a| (a..=19).map(move |b| (a, b, 23u64)))
        .collect();
    c.bench_function("classify3/mixed", |b| {
        b.iter(|| {
            let mut covered = 0usize;
            for &(x, y, z) in &shapes {
                if classify3(black_box(x), black_box(y), black_box(z)).is_some() {
                    covered += 1;
                }
            }
            black_box(covered)
        })
    });
}

fn bench_census_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("census3d");
    group.sample_size(10);
    for n in [3u32, 4, 5] {
        group.bench_function(format!("n{}", n), |b| {
            b.iter(|| black_box(census_3d(black_box(n))))
        });
    }
    group.finish();
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1/closed_form_k10", |b| {
        b.iter(|| {
            for k in 1..=10 {
                black_box(gray_fraction_closed_form(black_box(k)));
            }
        })
    });
    c.bench_function("fig1/monte_carlo_100k", |b| {
        b.iter(|| black_box(gray_fraction_monte_carlo(3, 100_000, 7)))
    });
}

criterion_group!(
    benches,
    bench_classification,
    bench_census_small,
    bench_fig1
);
criterion_main!(benches);
