//! Direct-embedding search benchmarks: how long the exact backtracking
//! takes to rediscover the paper's tables, and the congestion-2
//! certification cost.

use criterion::{criterion_group, criterion_main, Criterion};
use cubemesh_embedding::builders::mesh_edge_list;
use cubemesh_search::routes::certify_congestion;
use cubemesh_search::{catalog_map, find_embedding, SearchConfig, SearchOutcome};
use cubemesh_topology::{Hypercube, Mesh, Shape};
use std::hint::black_box;

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("discover");
    for dims in [vec![3usize, 5], vec![3, 3, 3], vec![7, 9], vec![11, 11]] {
        let shape = Shape::new(&dims);
        let guest = Mesh::new(shape.clone()).to_graph();
        let order: Vec<u32> = (0..guest.nodes() as u32).collect();
        let cfg = SearchConfig::dilation2_minimal(guest.nodes());
        group.bench_function(shape.to_string(), |b| {
            b.iter(|| {
                let out = find_embedding(black_box(&guest), &order, &cfg);
                assert!(matches!(out, SearchOutcome::Found(_)));
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_certification(c: &mut Criterion) {
    let mut group = c.benchmark_group("certify_congestion2");
    for dims in [vec![7usize, 9], vec![11, 11]] {
        let shape = Shape::new(&dims);
        let map = catalog_map(&shape).expect("in catalog");
        let mesh = Mesh::new(shape.clone());
        let edges = mesh_edge_list(&mesh);
        let host = Hypercube::new(shape.minimal_cube_dim());
        group.bench_function(shape.to_string(), |b| {
            b.iter(|| black_box(certify_congestion(black_box(&map), &edges, host, 2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discovery, bench_certification);
criterion_main!(benches);
