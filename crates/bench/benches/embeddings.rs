//! Embedding-construction benchmarks: how fast the §4.2 strategy plans
//! and builds, and what the metrics engine costs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cubemesh_core::{construct, Planner};
use cubemesh_embedding::gray_mesh_embedding;
use cubemesh_topology::Shape;
use std::hint::black_box;

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan");
    for dims in [
        vec![21usize, 9, 5],
        vec![9, 9, 9],
        vec![24, 20, 12],
        vec![255, 255, 255],
    ] {
        let shape = Shape::new(&dims);
        group.bench_function(shape.to_string(), |b| {
            b.iter_batched(
                Planner::new,
                |mut planner| black_box(planner.plan(black_box(&shape))),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct");
    for dims in [vec![21usize, 9, 5], vec![9, 9, 9], vec![24, 20, 12]] {
        let shape = Shape::new(&dims);
        let plan = Planner::new().plan(&shape).expect("plannable");
        group.bench_function(shape.to_string(), |b| {
            b.iter(|| {
                black_box(construct(black_box(&shape), black_box(&plan)).expect("plan lowers"))
            })
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    for dims in [vec![32usize, 32], vec![16, 16, 16]] {
        let shape = Shape::new(&dims);
        let emb = gray_mesh_embedding(&shape);
        group.bench_function(shape.to_string(), |b| b.iter(|| black_box(emb.metrics())));
    }
    group.finish();
}

criterion_group!(benches, bench_planning, bench_construction, bench_metrics);
criterion_main!(benches);
