//! Network-simulation benchmarks: stencil-exchange makespans under
//! different embeddings (the A1 ablation), and raw simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use cubemesh_core::embed_mesh;
use cubemesh_embedding::gray_mesh_embedding;
use cubemesh_netsim::{simulate, stencil_exchange};
use cubemesh_reshape::snake_embedding;
use cubemesh_topology::Shape;
use std::hint::black_box;

fn bench_stencil(c: &mut Criterion) {
    let mut group = c.benchmark_group("stencil");
    group.sample_size(20);
    let shape = Shape::new(&[9, 9, 9]);
    let cases = [
        ("decomposition", embed_mesh(&shape).0),
        ("gray_expanded", gray_mesh_embedding(&shape)),
        ("snake", snake_embedding(&shape)),
    ];
    for (name, emb) in cases {
        let msgs = stencil_exchange(&emb, 32);
        let host = emb.host();
        group.bench_function(name, |b| {
            b.iter(|| black_box(simulate(host, black_box(&msgs))))
        });
    }
    group.finish();
}

fn bench_sim_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scaling");
    group.sample_size(10);
    for dims in [vec![16usize, 16], vec![32, 32], vec![16, 16, 16]] {
        let shape = Shape::new(&dims);
        let emb = gray_mesh_embedding(&shape);
        let msgs = stencil_exchange(&emb, 16);
        let host = emb.host();
        group.bench_function(shape.to_string(), |b| {
            b.iter(|| black_box(simulate(host, black_box(&msgs))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stencil, bench_sim_scaling);
criterion_main!(benches);
