//! Cost of the compiled-in instrumentation: identical workloads with
//! stats disabled (each site is one relaxed atomic load) and enabled.
//! The acceptance bar is ≤2% overhead when enabled and ~0 when off.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cubemesh_census::census_3d;
use cubemesh_core::Planner;
use cubemesh_obs as obs;
use cubemesh_topology::Shape;
use std::hint::black_box;

fn bench_planner_overhead(c: &mut Criterion) {
    let shape = Shape::new(&[21, 9, 5]);
    let mut group = c.benchmark_group("obs_overhead/planner");
    for (label, on) in [("off", false), ("on", true)] {
        group.bench_function(label, |b| {
            obs::set_enabled(on);
            b.iter_batched(
                Planner::new,
                |mut planner| black_box(planner.plan(black_box(&shape))),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
    obs::set_enabled(false);
    obs::reset();
}

fn bench_census_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead/census_small");
    group.sample_size(10);
    for (label, on) in [("off", false), ("on", true)] {
        group.bench_function(label, |b| {
            obs::set_enabled(on);
            b.iter(|| black_box(census_3d(black_box(4))))
        });
    }
    group.finish();
    obs::set_enabled(false);
    obs::reset();
}

criterion_group!(benches, bench_planner_overhead, bench_census_overhead);
criterion_main!(benches);
