//! Cost of the compiled-in instrumentation: identical workloads with
//! stats disabled (each site is one relaxed atomic load) and enabled.
//! The acceptance bar is ≤2% overhead when enabled and ~0 when off.
//!
//! `bench_trace_overhead` additionally gates the tracing layer on the
//! 64³ construct: disabled tracing must stay within 1% of the fully
//! uninstrumented baseline and enabled tracing within 5%. These are
//! hard assertions — `cargo bench --bench obs_overhead` fails if the
//! trace guard stops being cheap.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cubemesh_census::census_3d;
use cubemesh_core::{construct, Planner};
use cubemesh_obs as obs;
use cubemesh_topology::Shape;
use std::hint::black_box;
use std::time::Instant;

fn bench_planner_overhead(c: &mut Criterion) {
    let shape = Shape::new(&[21, 9, 5]);
    let mut group = c.benchmark_group("obs_overhead/planner");
    for (label, on) in [("off", false), ("on", true)] {
        group.bench_function(label, |b| {
            obs::set_enabled(on);
            b.iter_batched(
                Planner::new,
                |mut planner| black_box(planner.plan(black_box(&shape))),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
    obs::set_enabled(false);
    obs::reset();
}

fn bench_census_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead/census_small");
    group.sample_size(10);
    for (label, on) in [("off", false), ("on", true)] {
        group.bench_function(label, |b| {
            obs::set_enabled(on);
            b.iter(|| black_box(census_3d(black_box(4))))
        });
    }
    group.finish();
    obs::set_enabled(false);
    obs::reset();
}

/// Median seconds per call of `f` over `samples` runs (one warmup).
fn median_secs<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn bench_trace_overhead(_c: &mut Criterion) {
    // The trace guard on the hot construct path. Measured directly
    // (not via the criterion shim) because the assertions need the
    // medians, which the shim does not expose to callers.
    let shape = Shape::new(&[64, 64, 64]);
    let plan = Planner::new().plan(&shape).expect("64^3 is plannable");
    let samples = 9;

    obs::set_enabled(false);
    obs::trace::set_enabled(false);
    let baseline = median_secs(samples, || construct(&shape, &plan).expect("plan lowers"));
    let disabled = median_secs(samples, || construct(&shape, &plan).expect("plan lowers"));

    obs::trace::set_enabled(true);
    let enabled = median_secs(samples, || {
        let e = construct(&shape, &plan).expect("plan lowers");
        // Keep the per-thread buffers bounded across samples.
        let _ = obs::trace::drain();
        e
    });
    obs::trace::set_enabled(false);
    let _ = obs::trace::drain();
    obs::trace::reset();

    let disabled_pct = 100.0 * (disabled / baseline - 1.0);
    let enabled_pct = 100.0 * (enabled / baseline - 1.0);
    println!(
        "bench obs_overhead/trace_construct_64 ... baseline {:.1} ms, trace-off {:+.2}%, \
         trace-on {:+.2}% ({samples} samples)",
        baseline * 1e3,
        disabled_pct,
        enabled_pct
    );
    assert!(
        disabled_pct <= 1.0,
        "disabled tracing costs {disabled_pct:.2}% on 64^3 construct (budget 1%)"
    );
    assert!(
        enabled_pct <= 5.0,
        "enabled tracing costs {enabled_pct:.2}% on 64^3 construct (budget 5%)"
    );
}

criterion_group!(
    benches,
    bench_planner_overhead,
    bench_census_overhead,
    bench_trace_overhead
);
criterion_main!(benches);
