//! Fixture: trips exactly CM-A004 (nondet-float-reduce).
//!
//! Float addition is not associative; summing `f64` values over a
//! parallel iterator gives chunk-order-dependent results, breaking the
//! byte-identical determinism gates.

pub fn mean_load(v: Vec<u64>) -> f64 {
    v.into_par_iter().map(|x| x as f64).sum()
}
