//! Fixture: trips exactly CM-A008 (span-guard-escape).
//!
//! `drop(outer)` while `inner` is still live pops the per-thread span
//! stack out of LIFO order, corrupting the trace tree.

pub fn trace_phases() {
    let outer = span!("outer");
    let inner = span!("inner");
    drop(outer);
    drop(inner);
}
