//! Fixture: trips exactly CM-A006 (relaxed-ordering).
//!
//! `Ordering::Relaxed` outside a documented relaxed domain — this file
//! deliberately carries no waiver annotation.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn read_counter(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}
