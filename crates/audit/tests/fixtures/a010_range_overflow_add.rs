//! Known-bad: an unchecked sum of two unbounded shape-typed values
//! (CM-A010). `checked_add` or a guard (`assert!(a <= LIMIT)`) fixes it.

/// Both operands are shape-typed (the `shape` substring) with no
/// invariant bound, so the sum may wrap.
pub fn combined(shape_total: usize, shape_extra: usize) -> usize {
    shape_total + shape_extra
}
