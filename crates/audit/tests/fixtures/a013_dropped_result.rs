//! Known-bad: the `Result` of a workspace fallible function is silently
//! dropped (CM-A013). Propagate with `?`, match on the error, or keep a
//! read binding.

pub fn save_counts(x: u32) -> Result<(), String> {
    if x > 0 {
        Ok(())
    } else {
        Err("zero".to_owned())
    }
}

pub fn run(x: u32) {
    save_counts(x);
}
