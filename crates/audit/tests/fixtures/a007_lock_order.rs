//! Fixture: trips exactly CM-A007 (lock-order).
//!
//! `one` acquires `s.a` then `s.b`; `two` acquires them in the opposite
//! order — a deadlock under contention on a work-stealing pool.

use std::sync::Mutex;

pub struct S {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn one(s: &S) {
    let _x = s.a.lock();
    let _y = s.b.lock();
}

pub fn two(s: &S) {
    let _y = s.b.lock();
    let _x = s.a.lock();
}
