//! Fixture: trips exactly CM-A002 (worker-capture-interior).
//!
//! A function reachable from the worker closure constructs a `RefCell`
//! — non-`Sync` interior mutability inside the fan-out.

use std::cell::RefCell;

fn shared() -> RefCell<u32> {
    RefCell::new(0)
}

pub fn lower(v: Vec<u32>) {
    v.into_par_iter().for_each(|x| {
        let _ = shared();
        let _ = x;
    });
}
