//! Fixture: trips exactly CM-A001 (worker-capture-mut).
//!
//! The closure handed to the parallel `for_each` mutates `total`, a
//! binding captured from the enclosing scope — a data race once chunks
//! run on real threads.

pub fn lower(v: Vec<u32>) {
    let mut total = 0u32;
    v.into_par_iter().for_each(|x| total += x);
    let _ = total;
}
