//! Known-bad: an unchecked product of a shape-typed node count and an
//! arbitrary factor can exceed `u64` (CM-A009). The checked variant
//! (`nodes.checked_mul(record_bytes)`) or an `audit:allow` with a
//! relational justification is the accepted fix.

/// Bytes needed to store one record per node — `nodes` is bounded by the
/// addressability invariant, but `record_bytes` is arbitrary, so the
/// product is not.
pub fn payload_bytes(nodes: usize, record_bytes: usize) -> usize {
    nodes * record_bytes
}
