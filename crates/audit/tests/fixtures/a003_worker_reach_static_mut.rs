//! Fixture: trips exactly CM-A003 (worker-reach-static-mut).
//!
//! The worker closure calls `bump`, which touches a `static mut` — an
//! unconditional data race under real threads, found through the call
//! graph rather than in the closure text itself.

static mut COUNTER: u32 = 0;

fn bump() {
    unsafe {
        COUNTER += 1;
    }
}

pub fn lower(v: Vec<u32>) {
    v.into_par_iter().for_each(|_| bump());
}
