//! Known-bad: an untrusted axis length reaches a `Shape` constructor
//! without validation (CM-A012). Routing it through a `validate_*`
//! boundary first is the accepted fix.

use std::env;

pub struct Shape(Vec<usize>);

impl Shape {
    pub fn new(extents: Vec<usize>) -> Shape {
        Shape(extents)
    }
}

pub fn shape_from_env() -> Shape {
    let axis: usize = env::var("CUBEMESH_AXIS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    Shape::new(vec![axis])
}
