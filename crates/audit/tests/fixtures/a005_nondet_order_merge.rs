//! Fixture: trips exactly CM-A005 (nondet-order-merge).
//!
//! Workers push into a shared results vector; the arrival order depends
//! on the schedule, so the output ordering is non-deterministic.

pub fn gather(v: Vec<u32>) {
    let mut results = Vec::new();
    v.into_par_iter().for_each(|x| results.push(x));
    let _ = results;
}
