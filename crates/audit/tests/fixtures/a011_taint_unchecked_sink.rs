//! Known-bad: an environment read flows into a slice index without a
//! validation boundary (CM-A011). Bounding (`k.min(xs.len() - 1)`) or a
//! `validate_*` call on the statement clears it.

use std::env;

pub fn pick(xs: &[u32]) -> u32 {
    let k: usize = env::var("CUBEMESH_K")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    xs[k]
}
