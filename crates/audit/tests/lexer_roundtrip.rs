//! Lexer round-trip properties, referenced by the `lexer` module docs.
//!
//! The lexer is *lossless*: every byte of the input lands in exactly one
//! token span, so concatenating token texts reproduces the source
//! verbatim. `code_view` is the blanked projection: same length and line
//! structure, code tokens verbatim at their original offsets, trivia and
//! string/char-literal bytes spaced out.
//!
//! Both properties are checked exhaustively over every library source in
//! the workspace (the corpus the analyzer actually runs on) and then
//! property-tested on adversarial slices of those files — line-granular
//! cuts that split block comments, raw strings and string literals mid-
//! token, where a heuristic scanner would desynchronize.

use cubemesh_audit::lexer::{code_view, lex, TokKind};
use cubemesh_audit::lint::walk_lib_sources;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

/// Every library source in the workspace as `(label, contents)`.
fn workspace_sources() -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    walk_lib_sources(&root, &mut files).expect("walk workspace");
    assert!(files.len() > 50, "workspace walk found too few files");
    files
        .into_iter()
        .map(|(rel, path)| {
            let text = fs::read_to_string(&path).expect("read source");
            (rel, text)
        })
        .collect()
}

/// Concatenation of token texts must equal the input byte-for-byte.
fn assert_lossless(label: &str, src: &str) {
    let tokens = lex(src);
    let mut rebuilt = String::with_capacity(src.len());
    let mut prev_end = 0usize;
    for t in &tokens {
        assert_eq!(
            t.span.start, prev_end,
            "{label}: gap or overlap before token at byte {}",
            t.span.start
        );
        rebuilt.push_str(t.text(src));
        prev_end = t.span.end;
    }
    assert_eq!(prev_end, src.len(), "{label}: tokens do not cover the tail");
    assert_eq!(rebuilt, src, "{label}: concat of tokens differs from input");
}

/// `code_view` invariants: equal length, newlines preserved, trivia and
/// literal spans blanked, code tokens verbatim.
fn assert_code_view(label: &str, src: &str) {
    let tokens = lex(src);
    let view = code_view(src, &tokens);
    assert_eq!(view.len(), src.len(), "{label}: view length differs");
    for (a, b) in src.bytes().zip(view.bytes()) {
        if a == b'\n' {
            assert_eq!(b, b'\n', "{label}: newline not preserved");
        }
    }
    for t in &tokens {
        let slice = &view[t.span.clone()];
        match t.kind {
            TokKind::Whitespace | TokKind::Comment => {
                assert!(
                    slice.bytes().all(|b| b == b' ' || b == b'\n'),
                    "{label}: trivia at {:?} not blanked: {slice:?}",
                    t.span
                );
            }
            TokKind::Ident | TokKind::Punct | TokKind::Lifetime => {
                assert_eq!(slice, t.text(src), "{label}: code token altered");
            }
            _ => {}
        }
    }
}

#[test]
fn every_workspace_source_roundtrips() {
    for (label, src) in workspace_sources() {
        assert_lossless(&label, &src);
        assert_code_view(&label, &src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary line-granular slices of real sources still lex
    /// losslessly — even when the cut lands inside a block comment, a
    /// raw string, or a multi-line string literal, the lexer stays
    /// total and byte-exact (a truncated literal becomes one token to
    /// end-of-input, never a desync).
    #[test]
    fn sliced_workspace_source_roundtrips(seed in any::<u64>()) {
        let sources = workspace_sources();
        let (label, src) = &sources[(seed as usize) % sources.len()];
        let lines: Vec<&str> = src.lines().collect();
        let n = lines.len().max(1);
        let start = ((seed >> 16) as usize) % n;
        let end = start + 1 + ((seed >> 40) as usize) % (n - start).max(1);
        let fragment = lines[start..end.min(n)].join("\n");
        assert_lossless(&format!("{label}[{start}..{end}]"), &fragment);
    }

    /// Single-byte corruption cannot desynchronize the lexer: it stays
    /// total (every byte covered) and lossless on near-arbitrary input.
    #[test]
    fn mutated_source_still_lexes_losslessly(seed in any::<u64>()) {
        let sources = workspace_sources();
        let (label, src) = &sources[(seed as usize) % sources.len()];
        let mut bytes = src.as_bytes().to_vec();
        if !bytes.is_empty() {
            // Mutate an ASCII byte to an ASCII byte so the mutant stays
            // valid UTF-8 (sources contain multi-byte math glyphs).
            let start = ((seed >> 8) as usize) % bytes.len();
            if let Some(pos) = (start..bytes.len()).find(|&i| bytes[i].is_ascii()) {
                bytes[pos] = 0x20 + ((seed >> 48) as u8 % 0x5f);
            }
        }
        let mutant = String::from_utf8(bytes).expect("ascii mutation");
        assert_lossless(&format!("{label}+mut"), &mutant);
    }
}
