//! Golden stability: the plan fingerprint is persisted in every plan-
//! database record and certify artifact, so its value for a fixed plan
//! tree is frozen here. If any of these assertions moves, the plandb
//! format version must be bumped and existing databases rebuilt —
//! changing the hash silently is the failure mode this file exists to
//! catch.

use cubemesh_audit::{fingerprint, fnv1a};
use cubemesh_core::{Plan, Planner};
use cubemesh_topology::Shape;

#[test]
fn leaf_fingerprints_are_frozen() {
    // fnv1a("g") / fnv1a("d") — computed once, pinned forever.
    assert_eq!(fingerprint(&Plan::Gray), fnv1a(b"g"));
    assert_eq!(fingerprint(&Plan::Direct), fnv1a(b"d"));
    assert_eq!(fingerprint(&Plan::Gray), 0xaf63_da4c_8601_e926);
    assert_eq!(fingerprint(&Plan::Direct), 0xaf63_d94c_8601_e773);
}

#[test]
fn product_fingerprint_is_frozen() {
    let plan = Plan::Product {
        f1: Shape::new(&[3, 5]),
        p1: Box::new(Plan::Direct),
        f2: Shape::new(&[4, 4]),
        p2: Box::new(Plan::Gray),
    };
    assert_eq!(plan.to_canonical_string(), "(3x5 d * 4x4 g)");
    assert_eq!(fingerprint(&plan), fnv1a(b"(3x5 d * 4x4 g)"));
    assert_eq!(fingerprint(&plan), 0xa110_66f8_1f44_b98b);
}

#[test]
fn planner_output_fingerprints_are_reproducible() {
    // Two independent planners must fingerprint identically — the
    // service's cold-miss path and the DB builder meet on this.
    for dims in [[5usize, 6, 7], [3, 25, 3], [12, 20, 1], [9, 9, 9]] {
        let shape = Shape::new(&dims);
        let a = Planner::new().plan(&shape);
        let b = Planner::new().plan(&shape);
        assert_eq!(a, b);
        if let (Some(a), Some(b)) = (a, b) {
            assert_eq!(fingerprint(&a), fingerprint(&b), "{shape}");
        }
    }
}
