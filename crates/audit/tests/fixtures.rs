//! The known-bad corpus: one fixture file per analyzer diagnostic code,
//! each asserted to trip *exactly* its own rule — no misses, no
//! collateral findings. `scripts/check.sh` runs this test as the gate's
//! self-test, so a pass that silently stops firing breaks the build
//! even while the workspace itself is clean.

use cubemesh_audit::analyze::{Analysis, FanoutApis};
use cubemesh_audit::ast::Workspace;
use cubemesh_audit::Code;
use std::fs;
use std::path::Path;

/// `(fixture file, the one code it must trip)`, covering all of
/// [`Code::ALL`].
const CORPUS: [(&str, Code); 13] = [
    ("a001_worker_capture_mut.rs", Code::WorkerCaptureMut),
    (
        "a002_worker_capture_interior.rs",
        Code::WorkerCaptureInterior,
    ),
    (
        "a003_worker_reach_static_mut.rs",
        Code::WorkerReachStaticMut,
    ),
    ("a004_nondet_float_reduce.rs", Code::NondetFloatReduce),
    ("a005_nondet_order_merge.rs", Code::NondetOrderMerge),
    ("a006_relaxed_ordering.rs", Code::RelaxedOrdering),
    ("a007_lock_order.rs", Code::LockOrder),
    ("a008_span_guard_escape.rs", Code::SpanGuardEscape),
    ("a009_range_overflow_mul.rs", Code::RangeMulOverflow),
    ("a010_range_overflow_add.rs", Code::RangeAddOverflow),
    ("a011_taint_unchecked_sink.rs", Code::TaintUncheckedSink),
    (
        "a012_taint_unvalidated_shape.rs",
        Code::TaintUnvalidatedShape,
    ),
    ("a013_dropped_result.rs", Code::DroppedResult),
];

fn analyze_fixture(name: &str) -> Analysis {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    let mut ws = Workspace::default();
    ws.add_file(name, src);
    Analysis::run(&ws, &FanoutApis::default())
}

#[test]
fn every_fixture_trips_exactly_its_code() {
    for (name, code) in CORPUS {
        let analysis = analyze_fixture(name);
        assert!(
            !analysis.findings.is_empty(),
            "{name}: expected {} to fire, analyzer found nothing",
            code.as_str()
        );
        for f in &analysis.findings {
            assert_eq!(
                f.code,
                code,
                "{name}: expected only {}, also got {} ({})",
                code.as_str(),
                f.code.as_str(),
                f.message
            );
        }
    }
}

#[test]
fn corpus_covers_every_diagnostic_code() {
    for code in Code::ALL {
        assert!(
            CORPUS.iter().any(|&(_, c)| c == code),
            "no fixture exercises {}",
            code.as_str()
        );
    }
}

#[test]
fn fixture_findings_carry_call_path_evidence() {
    // The interprocedural codes must attribute their sink through the
    // call graph: the static-mut fixture reaches the sink via `bump`.
    let analysis = analyze_fixture("a003_worker_reach_static_mut.rs");
    let f = &analysis.findings[0];
    assert!(
        f.path.iter().any(|q| q.contains("bump")),
        "expected call path through `bump`, got {:?}",
        f.path
    );
}
