//! Golden-file test for the SARIF 2.1.0 export.
//!
//! Pins the exact bytes `cubemesh_audit::sarif::to_sarif` produces for
//! a representative pair of diagnostics — one dataflow finding with a
//! call path, one lint finding without — so any change to the SARIF
//! surface (field order, escaping, schema URL) shows up as a readable
//! diff against `tests/golden/analyze.sarif` rather than a silent
//! consumer break. Regenerate by running this test with
//! `BLESS_SARIF=1` if a change is intentional.

use cubemesh_audit::sarif::{to_sarif, Diag};

fn sample() -> Vec<Diag> {
    vec![
        Diag {
            code: "CM-A009".to_owned(),
            rule: "range-mul-overflow".to_owned(),
            file: "crates/core/src/product.rs".to_owned(),
            line: 42,
            message: "`n1 * n2` may exceed usize (lhs <= 2^48, rhs <= 2^48)".to_owned(),
            path: vec![
                "core::embed_mesh".to_owned(),
                "core::mesh_product_embedding".to_owned(),
            ],
        },
        Diag {
            code: "CM-L001".to_owned(),
            rule: "panic-in-lib".to_owned(),
            file: "crates/topology/src/graph.rs".to_owned(),
            line: 7,
            message: "`.unwrap()` in library code without an allowlist entry".to_owned(),
            path: Vec::new(),
        },
    ]
}

#[test]
fn sarif_export_matches_golden_file() {
    let actual = to_sarif("cubemesh-audit analyze", &sample());
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/analyze.sarif");
    if std::env::var_os("BLESS_SARIF").is_some() {
        std::fs::write(golden_path, &actual).expect("bless golden");
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file present");
    assert_eq!(
        actual,
        golden.trim_end(),
        "SARIF output drifted from tests/golden/analyze.sarif \
         (rerun with BLESS_SARIF=1 to accept)"
    );
    // Belt and braces: the golden bytes are themselves valid JSON.
    cubemesh_obs::parse_json(&golden).expect("golden is valid JSON");
}
