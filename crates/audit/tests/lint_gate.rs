//! End-to-end lint gate tests: the real workspace passes with the real
//! allowlist, and a seeded violation in a synthetic tree is caught.

use cubemesh_audit::{lint_workspace, Allowlist, Rule};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/audit sits two levels under the repo root")
        .to_path_buf()
}

#[test]
fn real_workspace_is_clean_under_the_real_allowlist() {
    let root = repo_root();
    let allow = Allowlist::load(&root.join("audit-allowlist.txt")).expect("allowlist parses");
    assert!(allow.len() <= 20, "allowlist must stay small");
    let violations = lint_workspace(&root, allow).expect("lint runs");
    assert!(
        violations.is_empty(),
        "workspace must lint clean:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_violation_fails_the_gate() {
    let dir = std::env::temp_dir().join(format!("cubemesh-audit-neg-{}", std::process::id()));
    let src = dir.join("crates/bad/src");
    fs::create_dir_all(&src).expect("temp tree");
    fs::write(
        src.join("lib.rs"),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("write seeded file");

    let violations = lint_workspace(&dir, Allowlist::default()).expect("lint runs");
    fs::remove_dir_all(&dir).ok();

    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, Rule::PanicInLib);
    assert!(violations[0].message.contains("`f`"), "{}", violations[0]);
}

#[test]
fn narrowing_addr_cast_is_seeded_and_caught() {
    let dir = std::env::temp_dir().join(format!("cubemesh-audit-cast-{}", std::process::id()));
    let src = dir.join("crates/bad/src");
    fs::create_dir_all(&src).expect("temp tree");
    fs::write(
        src.join("lib.rs"),
        "pub fn g(addr: u64) -> u32 { addr as u32 }\n",
    )
    .expect("write seeded file");

    let violations = lint_workspace(&dir, Allowlist::default()).expect("lint runs");
    fs::remove_dir_all(&dir).ok();

    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, Rule::NarrowingAddrCast);
}
