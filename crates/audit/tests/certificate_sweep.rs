//! Acceptance sweep: every planner output within 32×32×32 must certify,
//! and every certificate must dominate the measured metrics of the
//! embedding it describes (up to the node cap that keeps debug builds
//! quick; `cubemesh-audit selfcheck` runs the release-sized cap in the
//! repo gate).

use cubemesh_audit::{certify, crosscheck_shape, sweep};
use cubemesh_core::Planner;
use cubemesh_topology::Shape;

#[test]
fn full_32_cube_sweep_certifies() {
    let cap = if cfg!(debug_assertions) { 512 } else { 4096 };
    let report = sweep(32, cap).expect("sweep must be clean");
    // C(32+2, 3) canonical triples a <= b <= c <= 32.
    assert_eq!(report.shapes, 5984);
    assert_eq!(report.certified + report.unplanned, report.shapes);
    // The planner covers the overwhelming majority of shapes; the open
    // cases are the ones Section 6 leaves unresolved.
    assert!(
        report.certified * 10 >= report.shapes * 9,
        "coverage regressed: {report:?}"
    );
    assert!(report.constructed > 0, "{report:?}");
}

#[test]
fn theorem3_inheritance_along_product_spines() {
    // For shapes the planner decomposes, the product certificate is the
    // max/max/product combination of its factors' certificates.
    let mut planner = Planner::new();
    for dims in [[4usize, 6, 9], [12, 20, 1], [3, 5, 30], [7, 14, 28]] {
        let shape = Shape::new(&dims);
        let plan = planner.plan(&shape).expect("planner covers these");
        let cert = certify(&shape, &plan).expect("must certify");
        if let cubemesh_core::Plan::Product { f1, p1, f2, p2 } = &plan {
            let c1 = certify(f1, p1).expect("factor 1 certifies");
            let c2 = certify(f2, p2).expect("factor 2 certifies");
            assert_eq!(cert.host_dim, c1.host_dim + c2.host_dim);
            assert_eq!(
                cert.dilation_bound,
                c1.dilation_bound.max(c2.dilation_bound)
            );
            assert_eq!(
                cert.congestion_bound,
                c1.congestion_bound.max(c2.congestion_bound)
            );
            let eps = (c1.expansion * c2.expansion - cert.expansion).abs();
            assert!(eps < 1e-9, "{dims:?}: expansion not multiplicative");
        }
    }
}

#[test]
fn certificates_are_stable_across_planner_instances() {
    // Certification is a pure function of (shape, plan): two fresh
    // planners must yield identical certificates.
    for dims in [[8usize, 8, 8], [3, 9, 27], [2, 30, 31]] {
        let shape = Shape::new(&dims);
        let a = crosscheck_shape(&mut Planner::new(), &shape, false).unwrap();
        let b = crosscheck_shape(&mut Planner::new(), &shape, false).unwrap();
        assert_eq!(a, b, "{dims:?}");
    }
}
