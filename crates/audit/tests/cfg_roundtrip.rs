//! CFG round-trip properties over every function in the workspace.
//!
//! The analyzer's dataflow passes trust three structural invariants of
//! [`cubemesh_audit::cfg::Cfg`] (documented in `cfg.rs`):
//!
//! 1. every code token of a function body lands in **exactly one**
//!    basic block (no token is analyzed twice or skipped);
//! 2. within a block, token indices are strictly increasing (blocks
//!    are straight-line runs in source order);
//! 3. every edge targets a valid block, and every loop construct in
//!    the body contributes at least one edge marked `back` (so
//!    widening triggers exactly at loop heads).
//!
//! Rather than sampling synthetic programs, the property corpus is the
//! workspace itself: every library function and named closure the
//! analyzer sees in a real run (~1300 functions) is round-tripped
//! through `Cfg::build` and checked. Any Rust construct the repo
//! starts using immediately joins the corpus.

use cubemesh_audit::ast::Workspace;
use cubemesh_audit::cfg::Cfg;
use cubemesh_audit::lexer::{Delim, TokKind};
use std::path::Path;

/// Load every library source the real analyzer run reads.
fn workspace() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    cubemesh_audit::lint::walk_lib_sources(&root, &mut files).expect("walk workspace");
    files.sort();
    assert!(
        files.len() > 50,
        "workspace walk found only {} files",
        files.len()
    );
    let mut ws = Workspace::default();
    for (rel, path) in &files {
        ws.add_file(rel, std::fs::read_to_string(path).expect("read source"));
    }
    ws
}

/// The body token range `Cfg::build` partitions: inside the outer
/// braces when present, the raw range for expression-bodied closures.
fn body_range(
    file: &cubemesh_audit::ast::File,
    item: &cubemesh_audit::ast::FnItem,
) -> std::ops::Range<usize> {
    let mut range = item.body.clone();
    range.end = range.end.min(file.tokens.len());
    if range.start < range.end && file.tokens[range.start].kind == TokKind::Open(Delim::Brace) {
        range = range.start + 1..range.end.saturating_sub(1);
    }
    range
}

/// `true` if token `i` opens a loop construct (`loop`/`while`/`for`
/// followed by something other than an HRTB `<`).
fn is_loop_keyword(file: &cubemesh_audit::ast::File, i: usize) -> bool {
    if file.tokens[i].kind != TokKind::Ident {
        return false;
    }
    match file.text(i) {
        "loop" | "while" => true,
        "for" => file
            .next_code(i + 1)
            .map(|n| !file.is(n, "<"))
            .unwrap_or(false),
        _ => false,
    }
}

#[test]
fn every_workspace_function_round_trips() {
    let ws = workspace();
    let mut checked = 0usize;
    let mut with_loops = 0usize;
    for item in &ws.fns {
        let file = &ws.files[item.file];
        let cfg = Cfg::build(file, item);
        let label = format!("{}::{}", file.label, item.name);

        // Property 3a: edges target valid blocks.
        for (bid, b) in cfg.blocks.iter().enumerate() {
            for e in &b.succs {
                assert!(
                    e.to < cfg.blocks.len(),
                    "{label}: block {bid} edge to invalid block {}",
                    e.to
                );
            }
        }
        assert!(cfg.entry < cfg.blocks.len() && cfg.exit < cfg.blocks.len());

        // Property 2: strictly increasing token lists per block.
        for (bid, b) in cfg.blocks.iter().enumerate() {
            for w in b.tokens.windows(2) {
                assert!(
                    w[0] < w[1],
                    "{label}: block {bid} tokens not strictly increasing at {:?}",
                    w
                );
            }
        }

        // Property 1: each code token of the body owned exactly once.
        let range = body_range(file, item);
        let mut owned = vec![0u8; file.tokens.len()];
        for b in &cfg.blocks {
            for &t in &b.tokens {
                owned[t] = owned[t].saturating_add(1);
            }
        }
        for i in range.clone() {
            if file.tokens[i].is_code() {
                assert_eq!(
                    owned[i],
                    1,
                    "{label}: token {i} `{}` owned {} times",
                    file.text(i),
                    owned[i]
                );
            }
        }

        // Property 3b: a body with loop constructs has back edges, and
        // back edges only ever target loop heads the Cfg reports.
        let loops = range
            .clone()
            .filter(|&i| file.tokens[i].is_code() && is_loop_keyword(file, i))
            .count();
        if loops > 0 {
            with_loops += 1;
            assert!(
                cfg.back_edge_count() >= 1,
                "{label}: {loops} loop construct(s) but no back edge"
            );
        }
        let heads = cfg.loop_heads();
        for b in &cfg.blocks {
            for e in b.succs.iter().filter(|e| e.back) {
                assert!(
                    heads.binary_search(&e.to).is_ok(),
                    "{label}: back edge to {} not reported as a loop head",
                    e.to
                );
            }
        }
        checked += 1;
    }
    // The corpus must actually be the workspace, not a handful of stubs.
    assert!(checked > 1000, "only {checked} functions round-tripped");
    assert!(with_loops > 100, "only {with_loops} functions with loops");
}
