//! Static analysis for the cubemesh workspace: plan certificates and a
//! custom lint driver.
//!
//! Two prongs, both runnable through the `cubemesh-audit` binary and wired
//! into the repo gate (`scripts/check.sh`):
//!
//! * [`certificate`] — derive a `(dilation, congestion, expansion)`
//!   [`Certificate`] for any [`cubemesh_core::Plan`] tree *without
//!   constructing the embedding*, checking every theorem precondition
//!   (Corollary 2 factor compatibility, minimal-cube arithmetic, catalog
//!   applicability) and known lower-bound floors along the way;
//!   [`crosscheck`] then builds real embeddings and asserts the measured
//!   metrics never exceed the static claims.
//! * [`lint`] — source-level rules over the workspace's own library code:
//!   no `unwrap`/`expect`/`panic!` outside tests (explicit, shrinking
//!   allowlist; allowlisted functions must carry `# Panics` docs) and no
//!   narrowing casts on 64-bit cube addresses.

pub mod certificate;
pub mod crosscheck;
pub mod lint;

pub use certificate::{certify, check_plan, dilation_floor, AuditError, Certificate};
pub use crosscheck::{crosscheck_shape, sweep, CrosscheckError, SweepReport};
pub use lint::{lint_source, lint_workspace, Allowlist, Rule, Violation};
