//! Static analysis for the cubemesh workspace: plan certificates and a
//! custom lint driver.
//!
//! Two prongs, both runnable through the `cubemesh-audit` binary and wired
//! into the repo gate (`scripts/check.sh`):
//!
//! * [`certificate`] — derive a `(dilation, congestion, load, expansion)`
//!   [`Certificate`] for any [`cubemesh_core::Plan`] tree *without
//!   constructing the embedding*, checking every theorem precondition
//!   (Corollary 2 factor compatibility, minimal-cube arithmetic, catalog
//!   applicability) along the way; [`torus`] and [`manytoone`] extend the
//!   same certificate shape to wraparound plans (Lemmas 1–4, Corollary 3)
//!   and many-to-one plans (Theorem 4, Lemma 5, Corollary 5); [`bounds`]
//!   supplies the provable per-shape floors so `certified − floor` is a
//!   rigorous optimality gap; [`crosscheck`] then builds real embeddings
//!   and asserts measured ≤ certificate and certificate ≥ floor.
//! * [`lint`] — source-level rules over the workspace's own library code:
//!   no `unwrap`/`expect`/`panic!` outside tests (explicit, shrinking
//!   allowlist; allowlisted functions must carry `# Panics` docs), no
//!   narrowing casts on 64-bit cube addresses, no narrowing casts of
//!   shape-extent products, no allocation inside chunk/shard loops, and
//!   no shared mutable state in worker-spawning functions.
//! * [`analyze`] — the interprocedural concurrency/determinism analyzer
//!   built on a real front end: a lossless Rust [`lexer`], a lightweight
//!   item/closure parser ([`ast`]) producing a workspace symbol table,
//!   and a may-call [`callgraph`]. Its passes prove worker closures free
//!   of captured mutation, interior mutability, and `static mut`
//!   (`CM-A001`–`A003`), reductions deterministic under chunk reorder
//!   (`CM-A004`–`A005`), atomics/locks disciplined (`CM-A006`–`A007`),
//!   and span guards LIFO (`CM-A008`) — each finding carrying call-path
//!   evidence from the fan-out site to the sink. On top of the same
//!   front end sits a dataflow engine — an intraprocedural [`cfg`] and
//!   a generic worklist solver with widening ([`dataflow`]) — powering
//!   value-range overflow proofs on shape/address arithmetic
//!   (`CM-A009`–`A010`), taint tracking from untrusted inputs to
//!   index/capacity/constructor sinks (`CM-A011`–`A012`), and def-use
//!   dropped-`Result` analysis (`CM-A013`). Findings serialize in the
//!   shared `cubemesh-audit-diag/v1` schema, diff against a prior
//!   artifact ([`analyze::baseline_keys`], `analyze --baseline`), and
//!   export as SARIF 2.1.0 ([`sarif`]) for editor/CI annotation.

pub mod analyze;
pub mod ast;
pub mod bounds;
pub mod callgraph;
pub mod certificate;
pub mod cfg;
pub mod crosscheck;
pub mod dataflow;
pub mod fingerprint;
pub mod lexer;
pub mod lint;
pub mod manytoone;
pub mod sarif;
pub mod torus;

pub use analyze::{baseline_keys, Analysis, Code, FanoutApis, Finding};
pub use bounds::{manytoone_floors, mesh_floors, torus_floors, Floors};
pub use certificate::{certify, check_plan, dilation_floor, AuditError, Certificate};
pub use crosscheck::{
    crosscheck_contract_shape, crosscheck_fold_shape, crosscheck_shape, crosscheck_torus_shape,
    sweep, sweep_contract, sweep_fold, sweep_torus, CrosscheckError, SweepReport,
};
pub use fingerprint::{fingerprint, fnv1a};
pub use lint::{lint_source, lint_workspace, Allowlist, Rule, Violation};
pub use manytoone::{certify_contract, certify_fold};
pub use torus::{certify_torus, certify_torus_combo};
