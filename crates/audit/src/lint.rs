//! Source-level lints over the workspace's own library code.
//!
//! Rules, all enforced by `cubemesh-audit lint` in the repo gate:
//!
//! * **panic-in-lib** — `.unwrap()`, `.expect(…)`, `panic!`,
//!   `unreachable!`, `todo!` and `unimplemented!` are forbidden in
//!   non-test library code. Provably-infallible or deliberately
//!   validating sites are allowlisted per function in
//!   `audit-allowlist.txt`; every allowlisted function must document its
//!   panic with a `# Panics` doc section (**missing-panics-doc**), and
//!   allowlist entries that no longer match anything are themselves
//!   errors (**unused-allow**) so the list can only shrink.
//! * **narrowing-addr-cast** — an `as` cast of an address-carrying
//!   identifier (name contains `addr`) to a type narrower than the
//!   64-bit cube address space (`u8/u16/u32/i8/i16/i32`) silently drops
//!   high bits for hosts above `Q_32`; compute in `u64` instead.
//! * **shape-product-overflow** — a narrowing `as` cast of a
//!   shape-extent value (identifier mentioning `dim`/`len`/`extent`/
//!   `stride`/`nodes`/`shape`/`factor`, or a parenthesized product of
//!   one) can truncate: extent *products* grow multiplicatively
//!   (a 2¹¹×2¹¹×2¹¹ guest already overflows `u32` node counts). Widen
//!   first, narrow never.
//! * **alloc-in-chunk-loop** — `Vec::new()` / `vec![…]` inside a loop
//!   whose header mentions `chunk` or `shard` allocates once per chunk
//!   on the hot parallel-lowering path; hoist the buffer out and
//!   `clear()` it.
//! * **shared-mut-in-worker** — `static mut` anywhere, or
//!   `RefCell::new(…)` / `Cell::new(…)` inside a function that also
//!   spawns workers (`spawn(`, `par_iter`, `…::scope(`): non-`Sync`
//!   interior mutability next to fan-out is either a data race waiting
//!   for a real-threads build or a refactoring trap. Use per-worker
//!   state plus a reduction instead.
//! * **dropped-span-guard** — a `span!(…)` / `SpanTimer::new(…)` guard
//!   bound to `_` (`let _ = span!(…)`) or left as a bare statement
//!   (`span!(…);`) drops at the end of *that expression*, silently
//!   recording a zero-length span and corrupting every nested span path
//!   opened afterwards. Bind the guard to a named placeholder
//!   (`let _span = span!(…);`) so it lives to the end of the scope.
//!
//! The rules themselves are line-pattern matchers, but since the
//! analyzer landed they run over the real token stream: [`lint_source`]
//! lexes the file with [`crate::lexer`] and matches against its
//! [`crate::lexer::code_view`] — an offset- and line-identical view of
//! the source in which every comment and string/char-literal byte is
//! guaranteed blank *by the lexer*, not by ad-hoc scanning. `#[cfg(test)]`
//! items are then masked by brace matching and violations are attributed
//! to their enclosing `fn` for allowlist lookup. The pre-lexer blanking
//! heuristic survives as [`strip_noncode`], a documented legacy fallback
//! kept only for regression comparison.
//!
//! Every rule carries a stable diagnostic code (`CM-L001`–`CM-L008`),
//! and `cubemesh-audit lint --json` emits findings in the same
//! `cubemesh-audit-diag/v1` schema as `analyze --json`.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// Panic-family call in non-test library code without an allowlist
    /// entry.
    PanicInLib,
    /// Narrowing cast of an address-carrying value.
    NarrowingAddrCast,
    /// Allowlisted function lacks a `# Panics` doc section.
    MissingPanicsDoc,
    /// Allowlist entry matched nothing.
    UnusedAllow,
    /// Narrowing cast of a shape-extent value or extent product.
    ShapeProductOverflow,
    /// Allocation inside a chunk/shard loop body.
    AllocInChunkLoop,
    /// Non-`Sync` interior mutability in a worker-spawning function, or
    /// `static mut` anywhere.
    SharedMutInWorker,
    /// Span guard dropped immediately (`let _ = span!(…)` or a bare
    /// `span!(…);` statement).
    DroppedSpanGuard,
}

impl Rule {
    /// Stable diagnostic code, never renumbered (`CM-L001`–`CM-L008`).
    /// Shares the `CM-` namespace with the analyzer's `CM-A…` codes.
    pub fn code(&self) -> &'static str {
        match self {
            Rule::PanicInLib => "CM-L001",
            Rule::NarrowingAddrCast => "CM-L002",
            Rule::MissingPanicsDoc => "CM-L003",
            Rule::UnusedAllow => "CM-L004",
            Rule::ShapeProductOverflow => "CM-L005",
            Rule::AllocInChunkLoop => "CM-L006",
            Rule::SharedMutInWorker => "CM-L007",
            Rule::DroppedSpanGuard => "CM-L008",
        }
    }

    /// Human-readable rule slug.
    pub fn slug(&self) -> &'static str {
        match self {
            Rule::PanicInLib => "panic-in-lib",
            Rule::NarrowingAddrCast => "narrowing-addr-cast",
            Rule::MissingPanicsDoc => "missing-panics-doc",
            Rule::UnusedAllow => "unused-allow",
            Rule::ShapeProductOverflow => "shape-product-overflow",
            Rule::AllocInChunkLoop => "alloc-in-chunk-loop",
            Rule::SharedMutInWorker => "shared-mut-in-worker",
            Rule::DroppedSpanGuard => "dropped-span-guard",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.slug())
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative file path (or the allowlist path for unused-allow).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.file,
            self.line,
            self.rule.code(),
            self.rule,
            self.message
        )
    }
}

impl Violation {
    /// Render as one JSON object in the shared `cubemesh-audit-diag/v1`
    /// finding schema (same shape as the analyzer's findings; lint
    /// findings have no call path).
    pub fn to_json(&self) -> String {
        crate::analyze::finding_json(
            self.rule.code(),
            self.rule.slug(),
            &self.file,
            self.line as u32,
            &self.message,
            &[],
        )
    }
}

/// Render a full `lint --json` report in the `cubemesh-audit-diag/v1`
/// schema, mirroring [`crate::analyze::Analysis::to_json`].
pub fn lint_report_json(
    violations: &[Violation],
    files: usize,
    allowlist: usize,
    elapsed_ms: u128,
) -> String {
    let body: Vec<String> = violations.iter().map(Violation::to_json).collect();
    format!(
        "{{\"schema\":\"cubemesh-audit-diag/v1\",\"tool\":\"lint\",\"files\":{},\
         \"allowlist\":{},\"elapsed_ms\":{},\"findings\":[{}]}}",
        files,
        allowlist,
        elapsed_ms,
        body.join(",\n ")
    )
}

/// One allowlist entry: `path/to/file.rs::function_name`.
#[derive(Clone, Debug)]
struct AllowEntry {
    file: String,
    func: String,
    line: usize,
    used: bool,
}

/// The parsed panic allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    source: String,
}

impl Allowlist {
    /// Parse allowlist text. Lines are `file.rs::fn_name`; blank lines
    /// and `#` comments are ignored. Malformed lines are errors.
    pub fn parse(source_label: &str, text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((file, func)) = line.split_once("::") else {
                return Err(format!(
                    "{source_label}:{}: expected 'file.rs::fn_name', got '{line}'",
                    i + 1
                ));
            };
            if file.is_empty() || func.is_empty() || !file.ends_with(".rs") {
                return Err(format!(
                    "{source_label}:{}: expected 'file.rs::fn_name', got '{line}'",
                    i + 1
                ));
            }
            entries.push(AllowEntry {
                file: file.to_owned(),
                func: func.to_owned(),
                line: i + 1,
                used: false,
            });
        }
        Ok(Allowlist {
            entries,
            source: source_label.to_owned(),
        })
    }

    /// Load and parse an allowlist file. A missing file is an empty list.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        let label = path.display().to_string();
        match fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&label, &text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("{label}: {e}")),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn permit(&mut self, file: &str, func: &str) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            let file_matches = file == e.file || file.ends_with(&format!("/{}", e.file));
            if e.func == func && file_matches {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    fn unused(&self) -> Vec<Violation> {
        self.entries
            .iter()
            .filter(|e| !e.used)
            .map(|e| Violation {
                file: self.source.clone(),
                line: e.line,
                rule: Rule::UnusedAllow,
                message: format!(
                    "allowlist entry {}::{} matched no finding; remove it",
                    e.file, e.func
                ),
            })
            .collect()
    }
}

/// Replace comment bodies, string/char-literal contents and their quotes
/// with spaces, preserving byte offsets and line breaks, so downstream
/// passes see only code.
///
/// **Legacy fallback.** [`lint_source`] now derives its code view from
/// the real lexer ([`crate::lexer::code_view`]), which handles every
/// literal form by construction. This hand-rolled scanner is retained
/// for comparison and as a dependency-free escape hatch; it understands
/// line/block comments (nested), plain and raw strings, byte strings
/// (`b"…"`), raw byte strings (`br#"…"#`), and char/byte-char literals.
pub fn strip_noncode(text: &str) -> String {
    let b = text.as_bytes();
    let mut out = text.as_bytes().to_vec();
    let mut i = 0;
    let n = b.len();
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for c in &mut out[from..to] {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    };
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let end = memchr_newline(b, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if j + 1 < n && b[j] == b'/' && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && b[j] == b'*' && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let end = scan_string(b, i);
                blank(&mut out, i, end);
                i = end;
            }
            // Byte string `b"…"` / byte char `b'…'`: same bodies as their
            // unprefixed forms, with the sigil blanked too.
            b'b' if i + 1 < n && b[i + 1] == b'"' && (i == 0 || !is_ident_byte(b[i - 1])) => {
                let end = scan_string(b, i + 1);
                blank(&mut out, i, end);
                i = end;
            }
            b'b' if i + 1 < n && b[i + 1] == b'\'' && (i == 0 || !is_ident_byte(b[i - 1])) => {
                if let Some(end) = scan_char_literal(b, i + 1) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let end = scan_raw_string(b, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // bytes (`'x'`, `'\n'`, `'\u{1F600}'`); a lifetime never
                // has a closing quote before a non-ident boundary.
                if let Some(end) = scan_char_literal(b, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // Lossless for our purposes: input was valid UTF-8 and we only wrote
    // ASCII spaces over complete character ranges.
    String::from_utf8_lossy(&out).into_owned()
}

fn memchr_newline(b: &[u8], from: usize) -> usize {
    let mut i = from;
    while i < b.len() && b[i] != b'\n' {
        i += 1;
    }
    i
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r"…", r#"…"#, br"…" — plain "b"…"" is handled by the '"' arm. The
    // sigil must not be the tail of an identifier (`var` ends in 'r').
    if i > 0 && is_ident_byte(b[i - 1]) {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn scan_raw_string(b: &[u8], i: usize) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut h = 0;
            while k < b.len() && b[k] == b'#' && h < hashes {
                h += 1;
                k += 1;
            }
            if h == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

fn scan_string(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

fn scan_char_literal(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    if i + 2 >= n {
        return None;
    }
    if b[i + 1] == b'\\' {
        // Escaped: find the closing quote (handles '\u{…}').
        let mut j = i + 2;
        while j < n && j < i + 12 {
            if b[j] == b'\'' {
                return Some(j + 1);
            }
            j += 1;
        }
        return None;
    }
    // Unescaped: exactly one scalar between quotes. Multi-byte UTF-8
    // chars span up to 4 bytes; anything longer is a lifetime.
    for (j, &c) in b.iter().enumerate().take((i + 6).min(n)).skip(i + 2) {
        if c == b'\'' {
            return Some(j + 1);
        }
        if c == b'\n' {
            return None;
        }
    }
    None
}

fn is_ident_byte(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// A function body located in cleaned source.
#[derive(Clone, Debug)]
struct FnSpan {
    name: String,
    decl_line: usize,
    body: std::ops::Range<usize>,
}

/// Locate every `fn` body and every `#[cfg(test)]` item range in cleaned
/// source.
fn scan_items(clean: &str) -> (Vec<FnSpan>, Vec<std::ops::Range<usize>>) {
    let b = clean.as_bytes();
    let n = b.len();
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut test_ranges: Vec<std::ops::Range<usize>> = Vec::new();
    // Pending declarations waiting for their opening brace.
    let mut pending_fn: Option<(String, usize)> = None;
    let mut pending_tests = 0usize;
    // Open items: (brace_depth_at_open, fn index or usize::MAX for a test item, start).
    let mut stack: Vec<(usize, usize, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut paren = 0i32;
    let mut line = 1usize;
    let mut i = 0;
    while i < n {
        match b[i] {
            b'\n' => line += 1,
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren -= 1,
            b';' if paren == 0 => {
                pending_fn = None;
                pending_tests = 0;
            }
            b'{' => {
                if pending_tests > 0 {
                    stack.push((depth, usize::MAX, i));
                    pending_tests -= 1;
                    // A test mod swallows any pending fn decl ordering.
                } else if let Some((name, decl_line)) = pending_fn.take() {
                    if paren == 0 {
                        fns.push(FnSpan {
                            name,
                            decl_line,
                            body: i..n,
                        });
                        stack.push((depth, fns.len() - 1, i));
                    }
                }
                depth += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                if let Some(&(d, idx, start)) = stack.last() {
                    if d == depth {
                        stack.pop();
                        if idx == usize::MAX {
                            test_ranges.push(start..i + 1);
                        } else {
                            fns[idx].body = start..i + 1;
                        }
                    }
                }
            }
            b'#' if clean[i..].starts_with("#[cfg(test)]") => {
                pending_tests += 1;
            }
            b'f' if clean[i..].starts_with("fn")
                && (i == 0 || !is_ident_byte(b[i - 1]))
                && i + 2 < n
                && !is_ident_byte(b[i + 2]) =>
            {
                // Parse the identifier after `fn`.
                let mut j = i + 2;
                while j < n && (b[j] == b' ' || b[j] == b'\n' || b[j] == b'\t') {
                    if b[j] == b'\n' {
                        line += 1;
                    }
                    j += 1;
                }
                let start = j;
                while j < n && is_ident_byte(b[j]) {
                    j += 1;
                }
                if j > start {
                    pending_fn = Some((clean[start..j].to_owned(), line));
                }
                i = j;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    (fns, test_ranges)
}

/// Byte offset of the start of each line, for offset → line mapping.
fn line_offsets(text: &str) -> Vec<usize> {
    let mut offs = vec![0usize];
    for (i, c) in text.bytes().enumerate() {
        if c == b'\n' {
            offs.push(i + 1);
        }
    }
    offs
}

const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

const NARROW_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier fragments that mark a value as a shape extent (or a
/// product of extents) for **shape-product-overflow**.
const EXTENT_KEYWORDS: [&str; 7] = ["dim", "len", "extent", "stride", "nodes", "shape", "factor"];

/// Worker fan-out markers for **shared-mut-in-worker**.
const WORKER_APIS: [&str; 3] = ["spawn(", "par_iter", "::scope("];

/// Does the doc block immediately above `decl_line` (1-based, in the
/// original text) contain a `# Panics` section?
fn has_panics_doc(original_lines: &[&str], decl_line: usize) -> bool {
    let mut i = decl_line.saturating_sub(1); // index of the decl line
    while i > 0 {
        let t = original_lines[i - 1].trim_start();
        if t.starts_with("///") || t.starts_with("#[") || t.starts_with("//!") {
            if t.contains("# Panics") {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    false
}

/// Lint one library source file. `label` is the repo-relative path used
/// in reports and allowlist matching.
///
/// The code view the line matchers run over comes from the real lexer
/// ([`crate::lexer::code_view`]): same length and line structure as
/// `text`, with every comment and string/char-literal byte blanked by
/// token kind rather than by the legacy [`strip_noncode`] heuristics.
pub fn lint_source(label: &str, text: &str, allow: &mut Allowlist) -> Vec<Violation> {
    let tokens = crate::lexer::lex(text);
    let clean = crate::lexer::code_view(text, &tokens);
    let (fns, test_ranges) = scan_items(&clean);
    let offsets = line_offsets(&clean);
    let original_lines: Vec<&str> = text.lines().collect();
    let in_tests = |off: usize| test_ranges.iter().any(|r| r.contains(&off));
    let enclosing_fn = |off: usize| {
        fns.iter()
            .filter(|f| f.body.contains(&off))
            .max_by_key(|f| f.body.start)
    };

    let mut out = Vec::new();
    let mut doc_checked: Vec<usize> = Vec::new(); // decl lines already checked
    for (lineno, (line, &line_start)) in clean.lines().zip(&offsets).enumerate() {
        let lineno = lineno + 1;
        if in_tests(line_start) {
            continue;
        }
        for pat in PANIC_PATTERNS {
            for (col, _) in line.match_indices(pat) {
                let off = line_start + col;
                if in_tests(off) {
                    continue;
                }
                let holder = enclosing_fn(off);
                let fname = holder.map(|f| f.name.as_str()).unwrap_or("<module>");
                if allow.permit(label, fname) {
                    // Allowlisted: require the `# Panics` doc instead.
                    if let Some(f) = holder {
                        if !doc_checked.contains(&f.decl_line) {
                            doc_checked.push(f.decl_line);
                            if !has_panics_doc(&original_lines, f.decl_line) {
                                out.push(Violation {
                                    file: label.to_owned(),
                                    line: f.decl_line,
                                    rule: Rule::MissingPanicsDoc,
                                    message: format!(
                                        "allowlisted fn `{fname}` has no `# Panics` doc section"
                                    ),
                                });
                            }
                        }
                    }
                    continue;
                }
                out.push(Violation {
                    file: label.to_owned(),
                    line: lineno,
                    rule: Rule::PanicInLib,
                    message: format!(
                        "`{}` in non-test library code (fn `{fname}`); return a Result or \
                         allowlist it with a `# Panics` doc",
                        pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                });
            }
        }
        for (col, _) in line.match_indices(" as ") {
            let after = &line[col + 4..];
            let ty: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if !NARROW_TYPES.contains(&ty.as_str()) {
                continue;
            }
            let off = line_start + col;
            if in_tests(off) {
                continue;
            }
            // The operand: last identifier before the cast.
            let before = &line[..col];
            let operand: String = before
                .chars()
                .rev()
                .take_while(|&c| c == '_' || c.is_ascii_alphanumeric())
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            let operand_low = operand.to_ascii_lowercase();
            if operand_low.contains("addr") {
                out.push(Violation {
                    file: label.to_owned(),
                    line: lineno,
                    rule: Rule::NarrowingAddrCast,
                    message: format!(
                        "`{operand} as {ty}` narrows a cube address below 64 bits; \
                         keep address arithmetic in u64"
                    ),
                });
            } else if EXTENT_KEYWORDS.iter().any(|k| operand_low.contains(k)) {
                out.push(Violation {
                    file: label.to_owned(),
                    line: lineno,
                    rule: Rule::ShapeProductOverflow,
                    message: format!(
                        "`{operand} as {ty}` narrows a shape extent; extent products \
                         overflow narrow integers — widen first, narrow never"
                    ),
                });
            } else if let Some(expr) = trailing_paren_expr(before) {
                let low = expr.to_ascii_lowercase();
                if expr.contains('*') && EXTENT_KEYWORDS.iter().any(|k| low.contains(k)) {
                    out.push(Violation {
                        file: label.to_owned(),
                        line: lineno,
                        rule: Rule::ShapeProductOverflow,
                        message: format!(
                            "`{expr} as {ty}` narrows a product of shape extents; \
                             compute in u64/usize and keep it wide"
                        ),
                    });
                }
            }
        }
        for (col, _) in line.match_indices("static mut") {
            let off = line_start + col;
            if in_tests(off) {
                continue;
            }
            out.push(Violation {
                file: label.to_owned(),
                line: lineno,
                rule: Rule::SharedMutInWorker,
                message: "`static mut` is an unconditional data race under real threads; \
                          use an atomic, a lock, or per-worker state"
                    .to_owned(),
            });
        }
    }
    let line_of = |off: usize| offsets.partition_point(|&o| o <= off);
    scan_chunk_loop_allocs(label, &clean, &in_tests, &line_of, &mut out);
    scan_worker_cells(label, &clean, &fns, &in_tests, &line_of, &mut out);
    scan_dropped_span_guards(label, &clean, &in_tests, &line_of, &mut out);
    out.sort_by_key(|a| (a.line, a.rule as usize));
    out
}

/// If `before` ends with a parenthesized expression, return that
/// expression (including parens); `None` otherwise.
fn trailing_paren_expr(before: &str) -> Option<&str> {
    let bt = before.trim_end();
    if !bt.ends_with(')') {
        return None;
    }
    let b = bt.as_bytes();
    let mut depth = 0i32;
    for i in (0..b.len()).rev() {
        match b[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&bt[i..]);
                }
            }
            _ => {}
        }
    }
    None
}

/// **alloc-in-chunk-loop**: find `for`/`while` loops whose header (the
/// text between the keyword and the body's opening brace) mentions
/// `chunk` or `shard`, then flag every `Vec::new()` / `vec![` in the
/// loop body.
fn scan_chunk_loop_allocs(
    label: &str,
    clean: &str,
    in_tests: &dyn Fn(usize) -> bool,
    line_of: &dyn Fn(usize) -> usize,
    out: &mut Vec<Violation>,
) {
    let b = clean.as_bytes();
    let n = b.len();
    for kw in ["for", "while"] {
        for (kw_off, _) in clean.match_indices(kw) {
            let bounded = (kw_off == 0 || !is_ident_byte(b[kw_off - 1]))
                && kw_off + kw.len() < n
                && !is_ident_byte(b[kw_off + kw.len()]);
            if !bounded || in_tests(kw_off) {
                continue;
            }
            // Header runs to the first `{` at bracket depth 0 (a `;` or
            // a second `{`-less construct like `&Striped {` never occurs
            // in a loop header at depth 0).
            let mut j = kw_off + kw.len();
            let mut paren = 0i32;
            let mut body_open = None;
            while j < n {
                match b[j] {
                    b'(' | b'[' => paren += 1,
                    b')' | b']' => paren -= 1,
                    b'{' if paren == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    b';' if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = body_open else { continue };
            let header = clean[kw_off..open].to_ascii_lowercase();
            if !header.contains("chunk") && !header.contains("shard") {
                continue;
            }
            // Matching close brace.
            let mut depth = 0usize;
            let mut close = n;
            for (k, &c) in b.iter().enumerate().take(n).skip(open) {
                match c {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            close = k;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let body = &clean[open..close];
            for pat in ["Vec::new()", "vec!["] {
                for (col, _) in body.match_indices(pat) {
                    let off = open + col;
                    if in_tests(off) {
                        continue;
                    }
                    out.push(Violation {
                        file: label.to_owned(),
                        line: line_of(off),
                        rule: Rule::AllocInChunkLoop,
                        message: format!(
                            "`{pat}` allocates on every iteration of a chunk/shard loop; \
                             hoist the buffer out and `clear()` it"
                        ),
                    });
                }
            }
        }
    }
}

/// **shared-mut-in-worker**: flag `RefCell::new(` / `Cell::new(` inside
/// any function body that also mentions a worker fan-out API.
fn scan_worker_cells(
    label: &str,
    clean: &str,
    fns: &[FnSpan],
    in_tests: &dyn Fn(usize) -> bool,
    line_of: &dyn Fn(usize) -> usize,
    out: &mut Vec<Violation>,
) {
    let b = clean.as_bytes();
    for f in fns {
        if in_tests(f.body.start) {
            continue;
        }
        let body = &clean[f.body.clone()];
        if !WORKER_APIS.iter().any(|api| body.contains(api)) {
            continue;
        }
        for pat in ["RefCell::new(", "Cell::new("] {
            for (col, _) in body.match_indices(pat) {
                let off = f.body.start + col;
                // `Cell::new(` is a suffix of `RefCell::new(`; require a
                // non-identifier boundary so each site fires exactly once.
                if off > 0 && is_ident_byte(b[off - 1]) {
                    continue;
                }
                if in_tests(off) {
                    continue;
                }
                out.push(Violation {
                    file: label.to_owned(),
                    line: line_of(off),
                    rule: Rule::SharedMutInWorker,
                    message: format!(
                        "`{}…)` in worker-spawning fn `{}` is not Sync; keep per-worker \
                         state and reduce afterwards",
                        pat, f.name
                    ),
                });
            }
        }
    }
}

/// Span-guard constructors for **dropped-span-guard**.
const SPAN_GUARD_PATTERNS: [&str; 2] = ["span!(", "SpanTimer::new("];

/// **dropped-span-guard**: find `span!(…)` / `SpanTimer::new(…)` sites
/// whose guard value is discarded on the spot — either bound to the `_`
/// wildcard (which drops immediately, unlike `_span`) or evaluated as a
/// bare statement. Both record a zero-length span and unbalance the
/// thread's span stack relative to the author's intent.
fn scan_dropped_span_guards(
    label: &str,
    clean: &str,
    in_tests: &dyn Fn(usize) -> bool,
    line_of: &dyn Fn(usize) -> usize,
    out: &mut Vec<Violation>,
) {
    let b = clean.as_bytes();
    for pat in SPAN_GUARD_PATTERNS {
        for (off, _) in clean.match_indices(pat) {
            // Word boundary: `my_span!(` or `to_span!(` are different macros.
            if off > 0 && is_ident_byte(b[off - 1]) {
                continue;
            }
            if in_tests(off) {
                continue;
            }
            let line_start = clean[..off].rfind('\n').map(|i| i + 1).unwrap_or(0);
            // Text before the call on its line, with any module path
            // (`obs::`, `crate::trace::`) peeled off the end.
            let mut before = clean[line_start..off].trim_end();
            while let Some(stripped) = before.strip_suffix("::") {
                before = stripped
                    .trim_end_matches(|c: char| c == '_' || c.is_ascii_alphanumeric())
                    .trim_end();
            }
            let wildcard_bound = before.strip_suffix('=').is_some_and(|pre| {
                let pre = pre.trim_end();
                pre.ends_with("let _") && !pre.ends_with("let __")
            });
            // A call with nothing before it on the line is a bare
            // statement only if the previous line finished a statement —
            // `let _span =` on the line above is a continuation.
            let bare_statement = if before.is_empty() {
                match clean[..line_start]
                    .lines()
                    .rev()
                    .find(|l| !l.trim().is_empty())
                {
                    None => true,
                    Some(prev) => {
                        let t = prev.trim_end();
                        t.ends_with(';') || t.ends_with('{') || t.ends_with('}')
                    }
                }
            } else {
                before.ends_with(';') || before.ends_with('{') || before.ends_with('}')
            };
            if !wildcard_bound && !bare_statement {
                continue;
            }
            let call = pat.trim_end_matches('(');
            out.push(Violation {
                file: label.to_owned(),
                line: line_of(off),
                rule: Rule::DroppedSpanGuard,
                message: if wildcard_bound {
                    format!(
                        "`let _ = {call}(…)` drops the span guard immediately, recording a \
                         zero-length span; bind it (`let _span = {call}(…);`)"
                    )
                } else {
                    format!(
                        "bare `{call}(…);` statement drops the span guard immediately, \
                         recording a zero-length span; bind it (`let _span = {call}(…);`)"
                    )
                },
            });
        }
    }
}

/// Should this path be linted? Library sources only: `**/src/**.rs`,
/// excluding vendored shims, binaries, benches, tests and examples.
fn lintable(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    if !parts.contains(&"src") {
        return false;
    }
    const SKIP: [&str; 7] = [
        "shims", "bin", "benches", "tests", "examples", "target", ".git",
    ];
    !parts.iter().any(|p| SKIP.contains(p))
}

/// Collect every lintable library source under `root` as
/// `(repo-relative label, absolute path)` pairs. Shared by the lint
/// driver and the [`crate::analyze`] engine so both see the same file
/// set.
pub fn walk_lib_sources(root: &Path, files: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    walk(root, root, files)
}

fn walk(dir: &Path, root: &Path, files: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                ".git" | "target" | "shims" | "bin" | "benches" | "tests" | "examples"
            ) {
                continue;
            }
            walk(&path, root, files)?;
        } else {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if lintable(&rel) {
                files.push((rel, path));
            }
        }
    }
    Ok(())
}

/// Lint every library source under `root` against the allowlist. Returns
/// all violations, including unused-allow entries, sorted by file/line.
pub fn lint_workspace(root: &Path, mut allow: Allowlist) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for (rel, path) in &files {
        let text = fs::read_to_string(path)?;
        out.extend(lint_source(rel, &text, &mut allow));
    }
    out.extend(allow.unused());
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(text: &str) -> Vec<Violation> {
        let mut allow = Allowlist::default();
        lint_source("lib.rs", text, &mut allow)
    }

    #[test]
    fn seeded_unwrap_is_flagged() {
        let v = lint_str("pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::PanicInLib);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("fn `f`"));
    }

    #[test]
    fn panic_in_cfg_test_module_is_ignored() {
        let src = "pub fn ok() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { \
                   Option::<u32>::None.unwrap(); panic!(\"x\") }\n}\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip() {
        let src = "pub fn msg() -> &'static str {\n    // panic! in a comment is fine\n    \
                   \"call .unwrap() and panic!\"\n}\n/// Docs may say panic! too.\npub fn d() {}\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn narrowing_addr_cast_is_flagged() {
        let v = lint_str("pub fn f(addr: u64) -> u32 {\n    addr as u32\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NarrowingAddrCast);
        // `as usize` and non-address identifiers stay legal.
        assert!(lint_str(
            "pub fn g(addr: u64, w: u64) -> usize { (addr as usize) + (w as u32) as usize }\n"
        )
        .is_empty());
    }

    #[test]
    fn allowlisted_fn_needs_panics_doc() {
        let mut allow = Allowlist::parse("allow.txt", "lib.rs::f\n").unwrap();
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let v = lint_source("lib.rs", src, &mut allow);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::MissingPanicsDoc);

        let mut allow = Allowlist::parse("allow.txt", "lib.rs::f\n").unwrap();
        let documented = "/// Frobs.\n///\n/// # Panics\n/// Panics when absent.\npub fn f(x: \
                          Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let v = lint_source("lib.rs", documented, &mut allow);
        assert!(v.is_empty(), "{v:?}");
        assert!(allow.unused().is_empty());
    }

    #[test]
    fn unused_allow_entries_are_reported() {
        let mut allow = Allowlist::parse("allow.txt", "lib.rs::ghost\n").unwrap();
        let _ = lint_source("lib.rs", "pub fn real() {}\n", &mut allow);
        let unused = allow.unused();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, Rule::UnusedAllow);
    }

    #[test]
    fn malformed_allowlist_is_rejected() {
        assert!(Allowlist::parse("a", "not-a-valid-line\n").is_err());
        assert!(Allowlist::parse("a", "# comment only\n\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn enclosing_fn_attribution_handles_nesting() {
        let src =
            "pub fn outer() {\n    fn inner(x: Option<u32>) -> u32 {\n        x.unwrap()\n    \
                   }\n    let _ = inner(Some(3));\n}\n";
        let v = lint_str(src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("fn `inner`"), "{}", v[0].message);
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "pub fn f() -> (char, &'static str) {\n    ('{', r#\"panic!(\"no\")\"#)\n}\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn shape_product_overflow_is_flagged() {
        // Bare extent identifier narrowed.
        let v = lint_str("pub fn f(stride: usize) -> u32 {\n    stride as u32\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ShapeProductOverflow);
        // Parenthesized product of extents narrowed.
        let v = lint_str("pub fn g(a: usize, f: usize) -> u16 {\n    (a * dim_len(f)) as u16\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ShapeProductOverflow);
        // Widening casts and non-extent operands stay legal.
        assert!(lint_str("pub fn h(stride: usize, i: usize) -> u64 {\n    (stride as u64) + foo(i) as u64 + i as u32 as u64\n}\n").is_empty());
        // A call result without `*` in the parens is not a product.
        assert!(lint_str("pub fn k(x: usize) -> u32 {\n    ilog(x) as u32\n}\n").is_empty());
    }

    #[test]
    fn alloc_in_chunk_loop_is_flagged() {
        let src = "pub fn lower(chunks: &[u32]) {\n    for chunk in chunks {\n        let mut buf \
                   = Vec::new();\n        buf.push(*chunk);\n    }\n}\n";
        let v = lint_str(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::AllocInChunkLoop);
        assert_eq!(v[0].line, 3);
        // vec! macro counts too; non-chunk loops do not.
        let v = lint_str(
            "pub fn s(shards: usize) {\n    while shards > 0 {\n        let _ = vec![0u8; 4];\n    \
             }\n}\npub fn ok(xs: &[u32]) {\n    for _x in xs {\n        let _ = Vec::<u8>::new();\n    \
             }\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::AllocInChunkLoop);
    }

    #[test]
    fn shared_mut_in_worker_is_flagged() {
        // static mut fires anywhere.
        let v = lint_str("static mut COUNTER: u64 = 0;\npub fn f() {}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::SharedMutInWorker);
        // RefCell next to a spawn fires; without a worker API it does not.
        let src = "pub fn fan_out() {\n    let acc = RefCell::new(0u64);\n    spawn(|| {});\n    \
                   let _ = acc;\n}\npub fn quiet() {\n    let _ = RefCell::new(1u8);\n}\n";
        let v = lint_str(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::SharedMutInWorker);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("fan_out"), "{}", v[0].message);
    }

    #[test]
    fn dropped_span_guard_is_flagged() {
        // `let _ = …` drops the guard on the spot.
        let v = lint_str("pub fn f() {\n    let _ = obs::span!(\"construct\");\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::DroppedSpanGuard);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("let _ ="), "{}", v[0].message);
        // A bare statement drops it too, for both constructor spellings.
        let v = lint_str("pub fn f() {\n    span!(\"construct\");\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::DroppedSpanGuard);
        let v = lint_str("pub fn f() {\n    obs::SpanTimer::new(\"x\");\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::DroppedSpanGuard);
    }

    #[test]
    fn bound_span_guard_is_legal() {
        // Named placeholder bindings live until end of scope.
        assert!(lint_str("pub fn f() {\n    let _span = obs::span!(\"x\");\n}\n").is_empty());
        // Closures returning the guard hand ownership to the caller.
        assert!(lint_str(
            "pub fn f(top: bool) {\n    let _span = top.then(|| obs::span!(\"x\"));\n}\n"
        )
        .is_empty());
        // A continuation line is still the same binding statement.
        assert!(lint_str("pub fn f() {\n    let _span =\n        span!(\"x\");\n}\n").is_empty());
        // Test modules are exempt, like every other rule.
        assert!(lint_str(
            "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { span!(\"x\"); }\n}\n"
        )
        .is_empty());
        // Different macros sharing the suffix are not span guards.
        assert!(lint_str("pub fn f() {\n    my_span!(\"x\");\n}\n").is_empty());
    }

    #[test]
    fn byte_strings_do_not_trip_rules() {
        // Through the live (lexer-backed) path.
        let src = "pub fn f() -> &'static [u8] {\n    b\"panic!(\\\"x\\\") .unwrap()\"\n}\n\
                   pub fn g() -> &'static [u8] {\n    br#\"todo! and .expect(\"#\n}\n\
                   pub fn h() -> u8 {\n    b'!'\n}\n";
        assert!(lint_str(src).is_empty(), "{:?}", lint_str(src));
    }

    #[test]
    fn strip_noncode_blanks_byte_and_raw_byte_strings() {
        // Regression for the legacy fallback: byte-string bodies must be
        // blanked so a panic-family pattern inside one can never match.
        let clean = strip_noncode("let x = b\"panic!(\\\"no\\\")\";\n");
        assert!(!clean.contains("panic!"), "{clean}");
        let clean = strip_noncode("let y = br#\".unwrap() todo!\"#;\n");
        assert!(!clean.contains("unwrap"), "{clean}");
        assert!(!clean.contains("todo!"), "{clean}");
        let clean = strip_noncode("let z = b'u'; let w = b'\\n';\n");
        assert!(!clean.contains("'u'"), "{clean}");
        // Offsets and newlines are preserved.
        let src = "a\nb\"x\"\nc\n";
        let clean = strip_noncode(src);
        assert_eq!(clean.len(), src.len());
        assert_eq!(clean.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn rule_codes_are_stable() {
        // These identifiers are part of the gate's public schema; any
        // renumbering breaks downstream JSON consumers.
        assert_eq!(Rule::PanicInLib.code(), "CM-L001");
        assert_eq!(Rule::NarrowingAddrCast.code(), "CM-L002");
        assert_eq!(Rule::MissingPanicsDoc.code(), "CM-L003");
        assert_eq!(Rule::UnusedAllow.code(), "CM-L004");
        assert_eq!(Rule::ShapeProductOverflow.code(), "CM-L005");
        assert_eq!(Rule::AllocInChunkLoop.code(), "CM-L006");
        assert_eq!(Rule::SharedMutInWorker.code(), "CM-L007");
        assert_eq!(Rule::DroppedSpanGuard.code(), "CM-L008");
    }

    #[test]
    fn violation_json_uses_shared_schema() {
        let v = Violation {
            file: "crates/x/src/lib.rs".to_owned(),
            line: 7,
            rule: Rule::PanicInLib,
            message: "`unwrap` in non-test library code".to_owned(),
        };
        let j = v.to_json();
        assert!(j.contains("\"code\":\"CM-L001\""), "{j}");
        assert!(j.contains("\"rule\":\"panic-in-lib\""), "{j}");
        assert!(j.contains("\"line\":7"), "{j}");
        assert!(j.contains("\"path\":[]"), "{j}");
        let report = lint_report_json(&[v], 3, 4, 12);
        assert!(
            report.contains("\"schema\":\"cubemesh-audit-diag/v1\""),
            "{report}"
        );
        assert!(report.contains("\"tool\":\"lint\""), "{report}");
        assert!(report.contains("\"allowlist\":4"), "{report}");
    }

    #[test]
    fn lintable_path_filter() {
        assert!(lintable("crates/core/src/plan.rs"));
        assert!(lintable("src/lib.rs"));
        assert!(!lintable("crates/core/src/bin/tool.rs"));
        assert!(!lintable("crates/shims/rand/src/lib.rs"));
        assert!(!lintable("tests/paper_examples.rs"));
        assert!(!lintable("examples/quickstart.rs"));
        assert!(!lintable("crates/bench/benches/search.rs"));
    }
}
