//! SARIF 2.1.0 export for the shared `cubemesh-audit-diag/v1` schema.
//!
//! Both gate front-ends — `lint` (CM-L…) and `analyze` (CM-A…) — emit
//! findings in the same internal shape: a stable code, a rule slug, a
//! repo-relative file, a 1-based line, a message, and (for dataflow
//! findings) a call path. [`Diag`] is that shape made explicit, and
//! [`to_sarif`] renders any list of them as a single-run SARIF log so
//! editors and CI annotators can consume the gate output without
//! knowing the in-house schema.
//!
//! The emitted subset is deliberately small: one `run`, one
//! `tool.driver` with a deduplicated `rules` table, and one `result`
//! per finding with a `physicalLocation` and (when present) the call
//! path flattened into the message text plus a `cubemesh/path`
//! property bag entry. Everything is spec-valid SARIF 2.1.0; the
//! golden-file test in `tests/sarif_golden.rs` pins the exact bytes.

use crate::analyze::Finding;
use crate::lint::Violation;

/// One diagnostic in the shared schema, independent of which front-end
/// produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    /// Stable code (`CM-L001`…, `CM-A001`…). Becomes the SARIF `ruleId`.
    pub code: String,
    /// Human-readable rule slug (`panic-in-lib`, `range-mul-overflow`).
    pub rule: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Explanation.
    pub message: String,
    /// Call-path evidence, root to sink (empty for intraprocedural
    /// findings and all lint findings).
    pub path: Vec<String>,
}

impl From<&Violation> for Diag {
    fn from(v: &Violation) -> Diag {
        Diag {
            code: v.rule.code().to_owned(),
            rule: v.rule.slug().to_owned(),
            file: v.file.clone(),
            line: v.line as u32,
            message: v.message.clone(),
            path: Vec::new(),
        }
    }
}

impl From<&Finding> for Diag {
    fn from(f: &Finding) -> Diag {
        Diag {
            code: f.code.as_str().to_owned(),
            rule: f.code.slug().to_owned(),
            file: f.file.clone(),
            line: f.line,
            message: f.message.clone(),
            path: f.path.clone(),
        }
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    cubemesh_obs::json_escape_into(&mut out, s);
    out
}

/// Render `diags` as a SARIF 2.1.0 log with one run.
///
/// `tool` names the front-end (`"cubemesh-audit lint"` /
/// `"cubemesh-audit analyze"`). Rules are collected in first-seen
/// order and deduplicated by code; each result carries `ruleIndex`
/// into that table. Output is deterministic for a given input.
pub fn to_sarif(tool: &str, diags: &[Diag]) -> String {
    let mut rules: Vec<(&str, &str)> = Vec::new();
    for d in diags {
        if !rules.iter().any(|(c, _)| *c == d.code) {
            rules.push((&d.code, &d.rule));
        }
    }
    let rules_json: Vec<String> = rules
        .iter()
        .map(|(code, slug)| {
            format!(
                "{{\"id\":{},\"name\":{},\"shortDescription\":{{\"text\":{}}}}}",
                esc(code),
                esc(slug),
                esc(slug)
            )
        })
        .collect();
    let results: Vec<String> = diags
        .iter()
        .map(|d| {
            let rule_index = rules.iter().position(|(c, _)| *c == d.code).unwrap_or(0);
            let text = if d.path.is_empty() {
                d.message.clone()
            } else {
                format!("{} (via {})", d.message, d.path.join(" -> "))
            };
            let props = if d.path.is_empty() {
                String::new()
            } else {
                let steps: Vec<String> = d.path.iter().map(|p| esc(p)).collect();
                format!(
                    ",\"properties\":{{\"cubemesh/path\":[{}]}}",
                    steps.join(",")
                )
            };
            format!(
                "{{\"ruleId\":{},\"ruleIndex\":{},\"level\":\"error\",\
                 \"message\":{{\"text\":{}}},\
                 \"locations\":[{{\"physicalLocation\":{{\
                 \"artifactLocation\":{{\"uri\":{}}},\
                 \"region\":{{\"startLine\":{}}}}}}}]{}}}",
                esc(&d.code),
                rule_index,
                esc(&text),
                esc(&d.file),
                d.line.max(1),
                props
            )
        })
        .collect();
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":{},\"informationUri\":\"https://example.invalid/cubemesh\",\
         \"rules\":[{}]}}}},\"results\":[{}]}}]}}",
        esc(tool),
        rules_json.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diag> {
        vec![
            Diag {
                code: "CM-A009".to_owned(),
                rule: "range-mul-overflow".to_owned(),
                file: "crates/x/src/lib.rs".to_owned(),
                line: 12,
                message: "product may exceed usize".to_owned(),
                path: vec!["x::outer".to_owned(), "x::inner".to_owned()],
            },
            Diag {
                code: "CM-L001".to_owned(),
                rule: "panic-in-lib".to_owned(),
                file: "crates/y/src/lib.rs".to_owned(),
                line: 3,
                message: "unwrap in library code".to_owned(),
                path: Vec::new(),
            },
            Diag {
                code: "CM-A009".to_owned(),
                rule: "range-mul-overflow".to_owned(),
                file: "crates/z/src/lib.rs".to_owned(),
                line: 7,
                message: "another product".to_owned(),
                path: Vec::new(),
            },
        ]
    }

    #[test]
    fn sarif_is_valid_json_with_expected_structure() {
        let log = to_sarif("cubemesh-audit analyze", &sample());
        let doc = cubemesh_obs::parse_json(&log).expect("valid JSON");
        assert_eq!(doc.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
        let runs = doc.get("runs").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").and_then(|t| t.get("driver")).unwrap();
        // Two distinct codes -> two rules, first-seen order.
        let rules = driver.get("rules").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].get("id").and_then(|v| v.as_str()), Some("CM-A009"));
        let results = runs[0].get("results").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(results.len(), 3);
        // Third result shares rule 0 with the first.
        assert_eq!(
            results[2].get("ruleIndex").and_then(|v| v.as_u64()),
            Some(0)
        );
        // The call path lands in the message and the property bag.
        let msg = results[0]
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(|t| t.as_str())
            .unwrap();
        assert!(msg.contains("via x::outer -> x::inner"), "{msg}");
    }

    #[test]
    fn empty_input_is_still_a_valid_run() {
        let log = to_sarif("cubemesh-audit lint", &[]);
        let doc = cubemesh_obs::parse_json(&log).expect("valid JSON");
        let runs = doc.get("runs").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(
            runs[0]
                .get("results")
                .and_then(|r| r.as_arr())
                .map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn conversions_from_both_frontends() {
        let v = Violation {
            file: "a.rs".to_owned(),
            line: 5,
            rule: crate::lint::Rule::PanicInLib,
            message: "m".to_owned(),
        };
        let d = Diag::from(&v);
        assert_eq!(d.code, "CM-L001");
        assert_eq!(d.rule, "panic-in-lib");
        assert!(d.path.is_empty());
    }
}
