//! Span-stack balance: `CM-A008`.
//!
//! The obs crate's `span!` guards maintain a per-thread span *stack* —
//! each guard pushes on construction and pops on drop, and the trace
//! exporter assumes pops mirror pushes. RAII makes that automatic: a
//! guard bound with `let` drops at end of scope in reverse binding
//! order, so plain usage (including early `return`) is always balanced.
//!
//! What provably breaks LIFO is explicit interference, and that is what
//! this pass flags:
//!
//! * `mem::forget(guard)` — the pop never happens;
//! * `drop(older)` while a younger guard is still live — pops out of
//!   order;
//! * `return guard` — the guard escapes the scope whose spans it
//!   brackets, popping at an unrelated point in the caller.
//!
//! The pass is intraprocedural and scans only bindings initialized from
//! a `span!` macro invocation, so ordinary values named like guards are
//! never flagged.

use super::{Code, Finding};
use crate::ast::{File, Workspace};
use crate::lexer::{Delim, TokKind};

/// Run the span-balance pass over every non-test function.
pub fn check(ws: &Workspace, findings: &mut Vec<Finding>) {
    for (_, f) in ws.lib_fns() {
        if f.is_closure {
            continue; // closure bodies are inside some fn body already
        }
        let file = &ws.files[f.file];
        check_body(file, &f.qual, f.body.clone(), findings);
    }
}

fn check_body(file: &File, qual: &str, body: std::ops::Range<usize>, findings: &mut Vec<Finding>) {
    let end = body.end.min(file.tokens.len());
    // Guards in binding order: (name, bind token, dropped?).
    let mut guards: Vec<(String, usize, bool)> = Vec::new();

    let mut i = body.start;
    while i < end {
        let t = &file.tokens[i];
        if !t.is_code() {
            i += 1;
            continue;
        }
        // `let NAME = span!(…)`
        if t.kind == TokKind::Ident && file.is(i, "let") {
            if let Some(g) = span_binding(file, i, end) {
                guards.push((g, i, false));
            }
        }
        // `forget(NAME)` (with or without a `mem::` path).
        if t.kind == TokKind::Ident && file.is(i, "forget") {
            if let Some(name) = single_ident_arg(file, i, end) {
                if guards.iter().any(|(n, _, _)| n == &name) {
                    findings.push(Finding {
                        code: Code::SpanGuardEscape,
                        file: file.label.clone(),
                        line: t.line,
                        message: format!(
                            "span guard `{name}` leaked via mem::forget — its span is \
                             never popped"
                        ),
                        path: vec![qual.to_owned()],
                    });
                }
            }
        }
        // `drop(NAME)` — must be LIFO against live younger guards.
        if t.kind == TokKind::Ident && file.is(i, "drop") {
            if let Some(name) = single_ident_arg(file, i, end) {
                if let Some(pos) = guards.iter().position(|(n, _, _)| n == &name) {
                    let younger_live: Vec<&str> = guards[pos + 1..]
                        .iter()
                        .filter(|(_, bind, dropped)| !dropped && *bind < i)
                        .map(|(n, _, _)| n.as_str())
                        .collect();
                    if !younger_live.is_empty() {
                        findings.push(Finding {
                            code: Code::SpanGuardEscape,
                            file: file.label.clone(),
                            line: t.line,
                            message: format!(
                                "span guard `{name}` dropped while younger guard(s) \
                                 `{}` are still live — span stack pops out of LIFO \
                                 order",
                                younger_live.join("`, `")
                            ),
                            path: vec![qual.to_owned()],
                        });
                    }
                    guards[pos].2 = true;
                }
            }
        }
        // `return NAME` — guard escapes its scope.
        if t.kind == TokKind::Ident && file.is(i, "return") {
            if let Some(n) = file.next_code(i + 1) {
                if file.tokens[n].kind == TokKind::Ident {
                    let name = file.text(n).to_owned();
                    let terminated = file
                        .next_code(n + 1)
                        .map(|k| {
                            file.is(k, ";") || matches!(file.tokens[k].kind, TokKind::Close(_))
                        })
                        .unwrap_or(true);
                    if terminated && guards.iter().any(|(g, _, _)| g == &name) {
                        findings.push(Finding {
                            code: Code::SpanGuardEscape,
                            file: file.label.clone(),
                            line: t.line,
                            message: format!(
                                "span guard `{name}` is returned out of the scope its \
                                 span brackets"
                            ),
                            path: vec![qual.to_owned()],
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

/// If the `let` at token `let_tok` binds `NAME = span!(…)`, the name.
fn span_binding(file: &File, let_tok: usize, end: usize) -> Option<String> {
    let mut j = file.next_code(let_tok + 1)?;
    if file.is(j, "mut") {
        j = file.next_code(j + 1)?;
    }
    if file.tokens[j].kind != TokKind::Ident {
        return None;
    }
    let name = file.text(j).to_owned();
    let eq = file.next_code(j + 1)?;
    if !file.is(eq, "=") {
        return None; // typed bindings (`let g: T = …`) are rare for guards
    }
    let m = file.next_code(eq + 1)?;
    if m >= end || file.tokens[m].kind != TokKind::Ident || !file.is(m, "span") {
        return None;
    }
    let bang = file.next_code(m + 1)?;
    (file.is(bang, "!")).then_some(name)
}

/// For `name(IDENT)` at token `call`, the single identifier argument.
fn single_ident_arg(file: &File, call: usize, end: usize) -> Option<String> {
    let open = file.next_code(call + 1)?;
    if open >= end || file.tokens[open].kind != TokKind::Open(Delim::Paren) {
        return None;
    }
    let arg = file.next_code(open + 1)?;
    if file.tokens[arg].kind != TokKind::Ident {
        return None;
    }
    let close = file.next_code(arg + 1)?;
    if file.tokens[close].kind != TokKind::Close(Delim::Paren) {
        return None;
    }
    Some(file.text(arg).to_owned())
}

#[cfg(test)]
mod tests {
    use super::super::analyze_str;

    fn codes(src: &str) -> Vec<&'static str> {
        analyze_str(src).iter().map(|f| f.code.as_str()).collect()
    }

    #[test]
    fn plain_raii_usage_is_clean() {
        let c = codes(
            "fn f() {\n    let _outer = span!(\"phase\");\n    {\n        let _inner = span!(\"inner\");\n    }\n}\n",
        );
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn lifo_explicit_drops_are_clean() {
        let c = codes(
            "fn f() {\n    let a = span!(\"a\");\n    let b = span!(\"b\");\n    drop(b);\n    drop(a);\n}\n",
        );
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn out_of_order_drop_is_a008() {
        let c = codes(
            "fn f() {\n    let a = span!(\"a\");\n    let b = span!(\"b\");\n    drop(a);\n    drop(b);\n}\n",
        );
        assert!(c.contains(&"CM-A008"), "{c:?}");
    }

    #[test]
    fn forget_is_a008() {
        let c = codes("fn f() {\n    let g = span!(\"phase\");\n    std::mem::forget(g);\n}\n");
        assert!(c.contains(&"CM-A008"), "{c:?}");
    }

    #[test]
    fn returned_guard_is_a008() {
        let c = codes("fn f() -> SpanGuard {\n    let g = span!(\"phase\");\n    return g;\n}\n");
        assert!(c.contains(&"CM-A008"), "{c:?}");
    }

    #[test]
    fn non_guard_values_are_ignored() {
        let c = codes(
            "fn f() -> u32 {\n    let g = 3u32;\n    drop(g);\n    let h = 4u32;\n    return h;\n}\n",
        );
        assert!(c.is_empty(), "{c:?}");
    }
}
