//! Taint tracking: untrusted values reaching unchecked sinks
//! (CM-A011, CM-A012).
//!
//! The planned query server feeds the embedder from *untrusted* shape
//! queries and JSONL traces; a hostile `{"shape":[9,9,99999999]}` must
//! die at a validation boundary, not inside a slice index. This pass
//! tracks values from untrusted **sources** through assignments, loops,
//! and the interprocedural call graph into **sinks**:
//!
//! * `CM-A011` `taint-unchecked-sink` — a tainted value reaches a slice
//!   index (`xs[i]`) or `Vec::with_capacity` without validation;
//! * `CM-A012` `taint-unvalidated-shape` — a tainted value reaches a
//!   shape constructor (`Shape::new`, any `Shape::…` call) without
//!   validation.
//!
//! **Sources** are environment reads (`env::var`, `env::args`) plus any
//! function a file *declares* untrusted with an analyzer-visible
//! annotation, mirroring the fan-out idiom:
//!
//! ```text
//! // audit: taint-source(parse_trace_line)
//! ```
//!
//! **Sanitizers** clear taint: functions named `validate*`/`check*`/
//! `sanitize*`/`is_valid*`, explicit bounding (`.min(…)`, `.clamp(…)`,
//! `%`), or an annotated `audit: taint-sanitizer(name)`. Clearing is
//! statement-granular: any statement that routes a value through a
//! sanitizer launders every identifier in that statement — coarse, but
//! it makes the *boundary* pattern (`let rec = decode(line)?;
//! validate_record(&rec)?;`) pass clean while a decode that skips the
//! boundary does not.
//!
//! Taint is a set of labels per variable: `Source` (an untrusted read in
//! this function, with its line for def-use evidence) or `Param(i)`
//! (the value arrived through parameter `i`). `Param` labels feed
//! interprocedural *summaries* — "this function sinks parameter `i`
//! unvalidated" — propagated to a fixpoint over recorded call sites, so
//! a tainted value passed through two layers of helpers still produces
//! a finding, with the call path as evidence.

use super::{Code, Finding};
use crate::ast::{File, FnItem, Workspace};
use crate::cfg::Cfg;
use crate::dataflow::{solve, Lattice, Transfer};
use crate::lexer::{Delim, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// One taint label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Taint {
    /// Untrusted read at this 1-based line of the current function.
    Source(u32),
    /// Arrived through the function's parameter `i`.
    Param(usize),
}

type TaintSet = BTreeSet<Taint>;

/// Dataflow state: variable name → taint labels. Join is union; the
/// lattice is finite (params and source lines are bounded), so no
/// widening is needed.
#[derive(Clone, PartialEq, Default)]
struct Env {
    vars: BTreeMap<String, TaintSet>,
}

impl Lattice for Env {
    fn bottom() -> Self {
        Env::default()
    }
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, v) in &other.vars {
            let e = self.vars.entry(k.clone()).or_default();
            let before = e.len();
            e.extend(v.iter().copied());
            changed |= e.len() != before;
        }
        changed
    }
}

/// Source/sanitizer sets, built-in plus annotation-declared.
#[derive(Debug, Default)]
pub struct TaintApis {
    sources: Vec<String>,
    sanitizers: Vec<String>,
}

impl TaintApis {
    /// Collect `audit: taint-source(name)` / `audit: taint-sanitizer(name)`
    /// annotations from every file in the workspace.
    pub fn collect(ws: &Workspace) -> TaintApis {
        let mut apis = TaintApis::default();
        for f in &ws.files {
            for (marker, is_source) in [
                ("audit: taint-source(", true),
                ("audit: taint-sanitizer(", false),
            ] {
                for (pos, _) in f.src.match_indices(marker) {
                    let rest = &f.src[pos + marker.len()..];
                    if let Some(end) = rest.find(')') {
                        let name = rest[..end].trim().to_string();
                        if name.is_empty()
                            || !name.chars().all(|c| c == '_' || c.is_ascii_alphanumeric())
                        {
                            continue;
                        }
                        let set = if is_source {
                            &mut apis.sources
                        } else {
                            &mut apis.sanitizers
                        };
                        if !set.contains(&name) {
                            set.push(name);
                        }
                    }
                }
            }
        }
        apis
    }

    fn is_source_call(&self, file: &File, ident: usize) -> bool {
        let name = file.text(ident);
        if self.sources.iter().any(|s| s == name) {
            return true;
        }
        // `env::var` / `env::args`.
        if name == "var" || name == "args" {
            if let Some(c1) = file.prev_code(ident) {
                if file.is(c1, ":") {
                    if let Some(c2) = file.prev_code(c1) {
                        if file.is(c2, ":") {
                            if let Some(seg) = file.prev_code(c2) {
                                return file.is(seg, "env");
                            }
                        }
                    }
                }
            }
        }
        false
    }

    fn is_sanitizer_name(&self, name: &str) -> bool {
        name.starts_with("validate")
            || name.starts_with("check")
            || name.starts_with("sanitize")
            || name.starts_with("is_valid")
            || name == "min"
            || name == "clamp"
            || self.sanitizers.iter().any(|s| s == name)
    }
}

/// What kind of sink a tainted value reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum SinkKind {
    /// Slice/array indexing.
    Index,
    /// `Vec::with_capacity` (allocation sized by the value).
    Capacity,
    /// `Shape::…` constructor.
    ShapeCtor,
}

impl SinkKind {
    fn code(self) -> Code {
        match self {
            SinkKind::Index | SinkKind::Capacity => Code::TaintUncheckedSink,
            SinkKind::ShapeCtor => Code::TaintUnvalidatedShape,
        }
    }
    fn describe(self) -> &'static str {
        match self {
            SinkKind::Index => "slice index",
            SinkKind::Capacity => "Vec::with_capacity",
            SinkKind::ShapeCtor => "shape constructor",
        }
    }
}

/// A sink reached by a `Param(i)` label: one function-summary entry.
#[derive(Clone, Debug)]
struct ParamSink {
    kind: SinkKind,
    file: String,
    line: u32,
    /// Qualified-function chain from this function down to the sink.
    chain: Vec<String>,
}

/// A recorded call to a workspace function, with per-argument taints.
#[derive(Clone, Debug)]
struct CallRec {
    caller: usize,
    callee: String,
    line: u32,
    /// Taint of each argument (receiver of a method call is arg 0 when
    /// the callee's first parameter is `self`).
    args: Vec<TaintSet>,
    method: bool,
}

/// Entry point.
pub fn check(ws: &Workspace, findings: &mut Vec<Finding>) {
    let apis = TaintApis::collect(ws);
    let mut recs: Vec<CallRec> = Vec::new();
    // name → param index → representative sink (function summaries).
    let mut summaries: BTreeMap<String, BTreeMap<usize, ParamSink>> = BTreeMap::new();
    // name → parameter counts of summarized definitions. The call graph
    // is name-based, so `events.push(ev)` would otherwise pick up a
    // summary for an unrelated 3-parameter `push`; a summary only
    // applies to calls whose argument count matches some summarized
    // definition of that name.
    let mut arity: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    // fn index → (name, params-take-self, param count) for propagation.
    let mut fn_meta: Vec<(usize, Vec<String>)> = Vec::new();

    for (fi, f) in ws.lib_fns() {
        if f.is_closure {
            continue;
        }
        let file = &ws.files[f.file];
        if f.body.start >= file.tokens.len()
            || file.in_macro_def(file.tokens[f.body.start].span.start)
        {
            continue;
        }
        let params = param_idents(file, f);
        let cfg = Cfg::build(file, f);
        let pass = TaintPass { file, apis: &apis };
        let mut entry = Env::default();
        for (i, p) in params.iter().enumerate() {
            entry
                .vars
                .entry(p.clone())
                .or_default()
                .insert(Taint::Param(i));
        }
        let states = solve(&cfg, &pass, entry);
        let mut out = Report::default();
        for (b, state) in states.iter().enumerate() {
            let mut env = state.clone();
            pass.walk_block(&cfg.blocks[b].tokens, &mut env, Some(&mut out));
        }
        // Local Source → sink findings.
        for hit in &out.hits {
            let mut src_lines: Vec<u32> = hit
                .taint
                .iter()
                .filter_map(|t| match t {
                    Taint::Source(l) => Some(*l),
                    Taint::Param(_) => None,
                })
                .collect();
            src_lines.dedup();
            if !src_lines.is_empty() {
                let mut path = vec![f.qual.clone()];
                for l in &src_lines {
                    path.push(format!("untrusted read at {}:{l}", file.label));
                }
                findings.push(Finding {
                    code: hit.kind.code(),
                    file: file.label.clone(),
                    line: hit.line,
                    message: format!(
                        "untrusted value reaches {} without validation; route it \
                         through a validate_/check_ boundary or bound it first",
                        hit.kind.describe()
                    ),
                    path,
                });
            }
            // Param-labelled hits seed the function summary.
            for t in &hit.taint {
                if let Taint::Param(p) = t {
                    summaries
                        .entry(f.name.clone())
                        .or_default()
                        .entry(*p)
                        .or_insert_with(|| ParamSink {
                            kind: hit.kind,
                            file: file.label.clone(),
                            line: hit.line,
                            chain: vec![f.qual.clone()],
                        });
                    arity
                        .entry(f.name.clone())
                        .or_default()
                        .insert(params.len());
                }
            }
        }
        for mut r in out.calls {
            r.caller = fi;
            recs.push(r);
        }
        fn_meta.push((fi, params));
    }

    // Fixpoint: a caller passing its own Param(p) into a summarized
    // parameter sinks p too (bounded: summaries only grow).
    let param_of = |fi: usize| -> Option<&Vec<String>> {
        fn_meta.iter().find(|(i, _)| *i == fi).map(|(_, p)| p)
    };
    loop {
        let mut changed = false;
        for r in &recs {
            let Some(callee_sum) = summaries.get(&r.callee).cloned() else {
                continue;
            };
            if !arity
                .get(&r.callee)
                .is_some_and(|a| a.contains(&r.args.len()))
            {
                continue;
            }
            let caller = &ws.fns[r.caller];
            let caller_file = &ws.files[caller.file];
            for (q, sink) in &callee_sum {
                let arg_at = arg_index(ws, r, *q);
                let Some(taint) = arg_at.and_then(|a| r.args.get(a)) else {
                    continue;
                };
                for t in taint {
                    if let Taint::Param(p) = t {
                        let entry = summaries.entry(caller.name.clone()).or_default().entry(*p);
                        if let std::collections::btree_map::Entry::Vacant(v) = entry {
                            let mut chain = vec![caller.qual.clone()];
                            chain.extend(sink.chain.iter().cloned());
                            v.insert(ParamSink {
                                kind: sink.kind,
                                file: sink.file.clone(),
                                line: sink.line,
                                chain,
                            });
                            if let Some(ps) = param_of(r.caller) {
                                arity
                                    .entry(caller.name.clone())
                                    .or_default()
                                    .insert(ps.len());
                            }
                            changed = true;
                        }
                    }
                }
            }
            let _ = caller_file;
        }
        if !changed {
            break;
        }
    }

    // Interprocedural findings: a locally-tainted value passed into a
    // summarized parameter.
    for r in &recs {
        let Some(callee_sum) = summaries.get(&r.callee) else {
            continue;
        };
        if !arity
            .get(&r.callee)
            .is_some_and(|a| a.contains(&r.args.len()))
        {
            continue;
        }
        let caller = &ws.fns[r.caller];
        let caller_file = &ws.files[caller.file];
        for (q, sink) in callee_sum {
            let arg_at = arg_index(ws, r, *q);
            let Some(taint) = arg_at.and_then(|a| r.args.get(a)) else {
                continue;
            };
            if taint.iter().any(|t| matches!(t, Taint::Source(_))) {
                let mut path = vec![caller.qual.clone()];
                path.extend(sink.chain.iter().cloned());
                findings.push(Finding {
                    code: sink.kind.code(),
                    file: caller_file.label.clone(),
                    line: r.line,
                    message: format!(
                        "untrusted value flows into `{}`, which passes it to a {} \
                         without validation (sink at {}:{})",
                        r.callee,
                        sink.kind.describe(),
                        sink.file,
                        sink.line
                    ),
                    path,
                });
            }
        }
    }
}

/// Map a callee parameter index to the recorded argument index: a
/// method call's receiver occupies arg 0 exactly when the callee's
/// first parameter is `self`.
fn arg_index(ws: &Workspace, r: &CallRec, param: usize) -> Option<usize> {
    let takes_self = ws.fns.iter().filter(|f| f.name == r.callee).any(|f| {
        ws.files[f.file].tokens[f.sig.clone()].iter().any(|t| {
            t.is_code() && t.kind == TokKind::Ident && t.text(&ws.files[f.file].src) == "self"
        })
    });
    if r.method && !takes_self {
        // Receiver recorded at 0 but callee has no self: shift.
        Some(param + 1)
    } else {
        Some(param)
    }
}

/// Parameter identifiers in declaration order (`self` included).
fn param_idents(file: &File, f: &FnItem) -> Vec<String> {
    let mut out = Vec::new();
    let mut open = None;
    for i in f.sig.clone() {
        if i < file.tokens.len()
            && file.tokens[i].is_code()
            && file.tokens[i].kind == TokKind::Open(Delim::Paren)
        {
            open = Some(i);
            break;
        }
    }
    let Some(open) = open else { return out };
    let close = file.matching(open);
    let mut depth = 0i32;
    for j in open + 1..close {
        let t = &file.tokens[j];
        if !t.is_code() {
            continue;
        }
        match t.kind {
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => depth -= 1,
            TokKind::Ident if depth == 0 => {
                let name = file.text(j);
                if name == "self" {
                    out.push("self".to_owned());
                } else if name != "mut"
                    && name != "ref"
                    && file
                        .next_code(j + 1)
                        .map(|k| file.is(k, ":"))
                        .unwrap_or(false)
                {
                    out.push(name.to_owned());
                }
            }
            _ => {}
        }
    }
    out
}

/// A sink reached during the report walk.
#[derive(Debug)]
struct SinkHit {
    kind: SinkKind,
    line: u32,
    taint: TaintSet,
}

#[derive(Debug, Default)]
struct Report {
    hits: Vec<SinkHit>,
    calls: Vec<CallRec>,
}

struct TaintPass<'a> {
    file: &'a File,
    apis: &'a TaintApis,
}

impl Transfer for TaintPass<'_> {
    type State = Env;
    fn transfer(&self, cfg: &Cfg, b: usize, state: &mut Env) {
        self.walk_block(&cfg.blocks[b].tokens, state, None);
    }
}

impl TaintPass<'_> {
    /// Interpret one block statement-by-statement (split at depth-0
    /// `;`), updating the taint environment and — when reporting —
    /// recording sinks and workspace call sites.
    fn walk_block(&self, tokens: &[usize], env: &mut Env, mut report: Option<&mut Report>) {
        let file = self.file;
        let mut start = 0usize;
        let mut depth = 0i32;
        for p in 0..tokens.len() {
            let i = tokens[p];
            match file.tokens[i].kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Punct if depth == 0 && file.is(i, ";") => {
                    self.statement(&tokens[start..p], env, report.as_deref_mut());
                    start = p + 1;
                }
                _ => {}
            }
        }
        if start < tokens.len() {
            self.statement(&tokens[start..], env, report);
        }
    }

    fn statement(&self, stmt: &[usize], env: &mut Env, mut report: Option<&mut Report>) {
        if stmt.is_empty() {
            return;
        }
        let file = self.file;
        let sanitized = self.has_sanitizer(stmt);
        // Report sinks and calls first (a sanitizer in the same
        // statement launders it — `xs[i.min(cap)]` is fine).
        if !sanitized {
            self.scan_sinks(stmt, env, report.as_deref_mut());
        }
        self.record_calls(stmt, env, sanitized, report.take());

        if sanitized {
            // Statement-granular laundering: every identifier touched
            // by a validation statement is now trusted.
            for &i in stmt {
                if file.tokens[i].kind == TokKind::Ident {
                    env.vars.remove(file.text(i));
                }
            }
            return;
        }

        // Bindings: `let PAT = RHS`, `for PAT in RHS`, `x = RHS`,
        // `x op= RHS`.
        let first = stmt[0];
        if file.tokens[first].kind == TokKind::Ident {
            match file.text(first) {
                "for" => {
                    if let Some(in_at) = stmt.iter().position(|&i| file.is(i, "in")) {
                        let taint = self.expr_taint(&stmt[in_at + 1..], env);
                        for &i in &stmt[1..in_at] {
                            self.bind_pattern_ident(i, &taint, env);
                        }
                    }
                    return;
                }
                "if" | "while" | "match" | "return" => {
                    // `if let PAT = RHS` binds; plain conditions don't.
                    if stmt.len() > 1 && file.is(stmt[1], "let") {
                        self.let_like(&stmt[1..], env);
                    }
                    return;
                }
                "let" => {
                    self.let_like(stmt, env);
                    return;
                }
                _ => {}
            }
            // Assignment `x = …` / `x op= …` (not `==`).
            if stmt.len() >= 3 && file.tokens[stmt[0]].kind == TokKind::Ident {
                let mut eq = None;
                for w in 1..stmt.len().min(4) {
                    if file.is(stmt[w], "=")
                        && stmt.get(w + 1).map(|&n| file.is(n, "=")) != Some(true)
                        && !file.is(stmt[w - 1], "=")
                        && !file.is(stmt[w - 1], "!")
                        && !file.is(stmt[w - 1], "<")
                        && !file.is(stmt[w - 1], ">")
                    {
                        eq = Some(w);
                        break;
                    }
                }
                if let Some(w) = eq {
                    let taint = self.expr_taint(&stmt[w + 1..], env);
                    let name = file.text(stmt[0]).to_owned();
                    if taint.is_empty() {
                        env.vars.remove(&name);
                    } else {
                        env.vars.insert(name, taint);
                    }
                }
            }
        }
    }

    /// `let PAT = RHS` (also reached for `if let`/`while let` tails).
    fn let_like(&self, stmt: &[usize], env: &mut Env) {
        let file = self.file;
        let mut depth = 0i32;
        let mut eq = None;
        for (w, &i) in stmt.iter().enumerate().skip(1) {
            match file.tokens[i].kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Punct
                    if depth == 0
                        && file.is(i, "=")
                        && stmt.get(w + 1).map(|&n| file.is(n, "=")) != Some(true)
                        && !file.is(stmt[w - 1], "=")
                        && !file.is(stmt[w - 1], "!")
                        && !file.is(stmt[w - 1], "<")
                        && !file.is(stmt[w - 1], ">") =>
                {
                    eq = Some(w);
                    break;
                }
                _ => {}
            }
        }
        let Some(w) = eq else { return };
        let taint = self.expr_taint(&stmt[w + 1..], env);
        for &i in &stmt[1..w] {
            self.bind_pattern_ident(i, &taint, env);
        }
    }

    /// Bind one pattern identifier (skipping keywords, path segments,
    /// and enum constructors, which are capitalized).
    fn bind_pattern_ident(&self, i: usize, taint: &TaintSet, env: &mut Env) {
        let file = self.file;
        if file.tokens[i].kind != TokKind::Ident {
            return;
        }
        let name = file.text(i);
        if matches!(name, "mut" | "ref" | "_" | "box")
            || name.starts_with(|c: char| c.is_ascii_uppercase())
        {
            return;
        }
        if taint.is_empty() {
            env.vars.remove(name);
        } else {
            env.vars.insert(name.to_owned(), taint.clone());
        }
    }

    /// Union taint of an expression: tainted identifiers plus `Source`
    /// for any untrusted read; a sanitizer anywhere in the chain
    /// launders the whole expression.
    fn expr_taint(&self, expr: &[usize], env: &Env) -> TaintSet {
        let file = self.file;
        if self.has_sanitizer(expr) {
            return TaintSet::new();
        }
        let mut out = TaintSet::new();
        for (p, &i) in expr.iter().enumerate() {
            let t = &file.tokens[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let is_call = expr
                .get(p + 1)
                .map(|&n| file.tokens[n].kind == TokKind::Open(Delim::Paren))
                == Some(true);
            if is_call && self.apis.is_source_call(file, i) {
                out.insert(Taint::Source(t.line));
            } else if !is_call {
                if let Some(ts) = env.vars.get(file.text(i)) {
                    out.extend(ts.iter().copied());
                }
            }
        }
        out
    }

    fn has_sanitizer(&self, stmt: &[usize]) -> bool {
        let file = self.file;
        stmt.iter().enumerate().any(|(p, &i)| {
            file.tokens[i].kind == TokKind::Ident
                && self.apis.is_sanitizer_name(file.text(i))
                && stmt
                    .get(p + 1)
                    .map(|&n| file.tokens[n].kind == TokKind::Open(Delim::Paren))
                    == Some(true)
        }) || stmt.iter().any(|&i| {
            // Modulo bounds the value.
            file.tokens[i].kind == TokKind::Punct
                && file.is(i, "%")
                && file
                    .prev_code(i)
                    .map(|p| {
                        matches!(
                            file.tokens[p].kind,
                            TokKind::Ident | TokKind::Close(_) | TokKind::Literal(_)
                        )
                    })
                    .unwrap_or(false)
        })
    }

    /// Report sinks inside one statement against the current env.
    fn scan_sinks(&self, stmt: &[usize], env: &Env, report: Option<&mut Report>) {
        let Some(report) = report else { return };
        let file = self.file;
        for (p, &i) in stmt.iter().enumerate() {
            let t = &file.tokens[i];
            // Slice index: `expr[ … ]` — open bracket preceded by an
            // operand.
            if t.kind == TokKind::Open(Delim::Bracket) && p > 0 {
                let prev = stmt[p - 1];
                let is_index = match file.tokens[prev].kind {
                    TokKind::Ident => !matches!(
                        file.text(prev),
                        "return" | "in" | "if" | "while" | "match" | "else" | "mut" | "let"
                    ),
                    TokKind::Close(_) => true,
                    _ => false,
                };
                if is_index && !file.in_macro_def(t.span.start) {
                    let close = file.matching(i);
                    let inner: Vec<usize> = stmt[p + 1..]
                        .iter()
                        .copied()
                        .take_while(|&k| k < close)
                        .collect();
                    let taint = self.expr_taint(&inner, env);
                    if !taint.is_empty() {
                        report.hits.push(SinkHit {
                            kind: SinkKind::Index,
                            line: t.line,
                            taint,
                        });
                    }
                }
            }
            if t.kind == TokKind::Ident {
                let name = file.text(i);
                let is_call = stmt
                    .get(p + 1)
                    .map(|&n| file.tokens[n].kind == TokKind::Open(Delim::Paren))
                    == Some(true);
                if !is_call {
                    continue;
                }
                let kind = if name == "with_capacity" {
                    Some(SinkKind::Capacity)
                } else if self.is_shape_ctor(stmt, p) {
                    Some(SinkKind::ShapeCtor)
                } else {
                    None
                };
                if let Some(kind) = kind {
                    if file.in_macro_def(t.span.start) {
                        continue;
                    }
                    let open = stmt[p + 1];
                    let close = file.matching(open);
                    let inner: Vec<usize> = stmt[p + 2..]
                        .iter()
                        .copied()
                        .take_while(|&k| k < close)
                        .collect();
                    let taint = self.expr_taint(&inner, env);
                    if !taint.is_empty() {
                        report.hits.push(SinkHit {
                            kind,
                            line: t.line,
                            taint,
                        });
                    }
                }
            }
        }
    }

    /// Is the call at statement position `p` a `Shape::…` constructor?
    fn is_shape_ctor(&self, stmt: &[usize], p: usize) -> bool {
        let file = self.file;
        // Walk back over `:: segment` pairs looking for `Shape`.
        let mut q = p;
        while q >= 2 && file.is(stmt[q - 1], ":") && q >= 3 && file.is(stmt[q - 2], ":") {
            q -= 3;
            if q < stmt.len()
                && file.tokens[stmt[q]].kind == TokKind::Ident
                && file.text(stmt[q]) == "Shape"
            {
                return true;
            }
            if q == 0 {
                break;
            }
        }
        false
    }

    /// Record workspace-call argument taints for the interprocedural
    /// fixpoint.
    fn record_calls(
        &self,
        stmt: &[usize],
        env: &Env,
        sanitized: bool,
        report: Option<&mut Report>,
    ) {
        let Some(report) = report else { return };
        if sanitized {
            return;
        }
        let file = self.file;
        for (p, &i) in stmt.iter().enumerate() {
            let t = &file.tokens[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let Some(&open_tok) = stmt.get(p + 1) else {
                continue;
            };
            if file.tokens[open_tok].kind != TokKind::Open(Delim::Paren) {
                continue;
            }
            // Macros (`name!(…)`) are not workspace calls.
            if file.prev_code(i).map(|b| file.is(b, "!")) == Some(true)
                || file
                    .next_code(i + 1)
                    .map(|n| file.is(n, "!"))
                    .unwrap_or(false)
            {
                continue;
            }
            let name = file.text(i).to_owned();
            let close = file.matching(open_tok);
            // Split args at depth-0 commas (relative to the group).
            let mut args: Vec<TaintSet> = Vec::new();
            let mut cur: Vec<usize> = Vec::new();
            let mut depth = 0i32;
            for &k in stmt[p + 2..].iter().take_while(|&&k| k < close) {
                match file.tokens[k].kind {
                    TokKind::Open(_) => {
                        depth += 1;
                        cur.push(k);
                    }
                    TokKind::Close(_) => {
                        depth -= 1;
                        cur.push(k);
                    }
                    TokKind::Punct if depth == 0 && file.is(k, ",") => {
                        args.push(self.expr_taint(&cur, env));
                        cur.clear();
                    }
                    _ => cur.push(k),
                }
            }
            if !cur.is_empty() {
                args.push(self.expr_taint(&cur, env));
            }
            // Method call: receiver taint goes in front as arg 0.
            let method = file.prev_code(i).map(|b| file.is(b, ".")) == Some(true);
            if method {
                let mut recv = TaintSet::new();
                if let Some(dot) = file.prev_code(i) {
                    if let Some(r) = file.prev_code(dot) {
                        if file.tokens[r].kind == TokKind::Ident {
                            if let Some(ts) = env.vars.get(file.text(r)) {
                                recv.extend(ts.iter().copied());
                            }
                        }
                    }
                }
                args.insert(0, recv);
            }
            if args.iter().all(|a| a.is_empty()) {
                continue;
            }
            report.calls.push(CallRec {
                caller: 0, // patched by the driver
                callee: name,
                line: t.line,
                args,
                method,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::analyze_str;

    fn codes(src: &str) -> Vec<&'static str> {
        analyze_str(src).iter().map(|f| f.code.as_str()).collect()
    }

    #[test]
    fn env_read_to_index_fires() {
        let c = codes(
            "use std::env;\npub fn f(xs: &[u32]) -> u32 {\n    let k = env::var(\"K\").ok().and_then(|v| v.parse().ok()).unwrap_or(0);\n    xs[k]\n}\n",
        );
        assert!(c.contains(&"CM-A011"), "{c:?}");
    }

    #[test]
    fn bounded_env_read_passes() {
        let c = codes(
            "use std::env;\npub fn f(xs: &[u32]) -> u32 {\n    let k = env::var(\"K\").ok().and_then(|v| v.parse().ok()).unwrap_or(0);\n    xs[k.min(xs.len() - 1)]\n}\n",
        );
        assert!(!c.contains(&"CM-A011"), "{c:?}");
    }

    #[test]
    fn annotated_source_to_capacity_fires() {
        let c = codes(
            "// audit: taint-source(decode_len)\npub fn decode_len(s: &str) -> usize {\n    s.len()\n}\npub fn f(s: &str) -> Vec<u8> {\n    let n = decode_len(s);\n    Vec::with_capacity(n)\n}\n",
        );
        assert!(c.contains(&"CM-A011"), "{c:?}");
    }

    #[test]
    fn validated_boundary_passes() {
        let c = codes(
            "// audit: taint-source(decode_len)\npub fn decode_len(s: &str) -> usize {\n    s.len()\n}\nfn validate_len(n: usize) -> usize {\n    n\n}\npub fn f(s: &str) -> Vec<u8> {\n    let n = decode_len(s);\n    let n = validate_len(n);\n    Vec::with_capacity(n)\n}\n",
        );
        assert!(!c.contains(&"CM-A011"), "{c:?}");
    }

    #[test]
    fn taint_through_helper_fires_with_path() {
        let fs = analyze_str(
            "use std::env;\nfn sink_helper(xs: &[u32], pos: usize) -> u32 {\n    xs[pos]\n}\npub fn f(xs: &[u32]) -> u32 {\n    let k = env::var(\"K\").ok().and_then(|v| v.parse().ok()).unwrap_or(0);\n    sink_helper(xs, k)\n}\n",
        );
        let hit = fs.iter().find(|f| f.code.as_str() == "CM-A011");
        assert!(hit.is_some(), "{fs:?}");
        assert!(hit.unwrap().path.len() >= 2, "{:?}", hit.unwrap().path);
    }

    #[test]
    fn tainted_shape_ctor_fires() {
        let c = codes(
            "use std::env;\npub struct Shape(Vec<usize>);\nimpl Shape {\n    pub fn new(d: Vec<usize>) -> Shape {\n        Shape(d)\n    }\n}\npub fn f() -> Shape {\n    let d = env::var(\"D\").ok().and_then(|v| v.parse().ok()).unwrap_or(1);\n    Shape::new(vec![d])\n}\n",
        );
        assert!(c.contains(&"CM-A012"), "{c:?}");
    }

    #[test]
    fn untainted_index_passes() {
        let c = codes("pub fn f(xs: &[u32]) -> u32 {\n    let k = xs.len() / 2;\n    xs[k]\n}\n");
        assert!(!c.contains(&"CM-A011"), "{c:?}");
    }
}
