//! Parallel-region discovery: find every fan-out site in the workspace
//! and the worker code it hands off.
//!
//! A *region* is one fan-out call site — `chunks.into_par_iter().map(f)`,
//! `thread::scope(|s| …)`, `s.spawn(move || …)` — together with the
//! worker code it runs: closure literals passed in argument position and
//! named function/closure references (`.map(fill_routes)`). The passes
//! then reason over the region's *reachable set* (worker roots plus
//! everything the call graph reaches from them).
//!
//! A method entry like `.map(…)` only counts as a fan-out when its
//! receiver chain (scanned backwards to the statement boundary) contains
//! a parallel source marker (`into_par_iter`, `par_iter`, …) — a plain
//! `vec.iter().map(…)` never forms a region.

use super::FanoutApis;
use crate::ast::{closure_at, Closure, File, Workspace};
use crate::callgraph::CallGraph;
use crate::lexer::{Delim, TokKind};
use std::ops::Range;

/// One fan-out site and its worker code.
#[derive(Clone, Debug)]
pub struct Region {
    /// Function containing the fan-out site (index into `ws.fns`).
    pub caller: usize,
    /// File of the site (index into `ws.files`).
    pub file: usize,
    /// 1-based line of the fan-out call.
    pub line: u32,
    /// Token index of the fan-out API name in its file.
    pub tok: usize,
    /// The API that fans out (`map`, `spawn`, …).
    pub api: String,
    /// Closure literals passed at the site (params + body token ranges).
    pub closures: Vec<Closure>,
    /// Named worker roots (indices into `ws.fns`): function references
    /// passed by name, e.g. `.map(fill_routes)`.
    pub roots: Vec<usize>,
}

impl Region {
    /// Display label used as the head of call-path evidence.
    pub fn describe(&self, ws: &Workspace) -> String {
        format!(
            "{}:{} {}(…) worker",
            ws.files[self.file].label, self.line, self.api
        )
    }
}

/// Find every parallel region in non-test workspace code.
pub fn find_regions(ws: &Workspace, cg: &CallGraph, apis: &FanoutApis) -> Vec<Region> {
    let mut out: Vec<Region> = Vec::new();
    for (fi, f) in ws.lib_fns() {
        if f.is_closure {
            // Closure bodies are scanned as part of their owner: a
            // fan-out site inside a named closure is attributed to it
            // by the range check below anyway.
        }
        let file = &ws.files[f.file];
        let mut i = f.body.start;
        while i < f.body.end.min(file.tokens.len()) {
            let t = &file.tokens[i];
            if t.is_code() && t.kind == TokKind::Ident && !file.in_macro_def(t.span.start) {
                let name = file.text(i);
                let is_direct = apis.direct.iter().any(|d| d == name);
                let is_entry = apis.entries.iter().any(|d| d == name);
                if is_direct || is_entry {
                    if let Some(open) = call_open_paren(file, i) {
                        let qualifies = is_direct
                            || (is_method_call(file, i)
                                && chain_has_source(file, f.body.start, i, apis));
                        if qualifies {
                            let close = file.matching(open);
                            let (closures, roots) =
                                worker_args(ws, cg, f.file, fi, file, open, close);
                            if !closures.is_empty() || !roots.is_empty() {
                                out.push(Region {
                                    caller: fi,
                                    file: f.file,
                                    line: t.line,
                                    tok: i,
                                    api: name.to_owned(),
                                    closures,
                                    roots,
                                });
                                // Skip past the argument list so nested
                                // entries inside worker closures are
                                // seen relative to their own chain, not
                                // re-attributed to this site.
                                i = open;
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }
    out
}

/// If token `i` names a call (`name(…)`), the index of its `(`.
fn call_open_paren(file: &File, i: usize) -> Option<usize> {
    let j = file.next_code(i + 1)?;
    (file.tokens[j].kind == TokKind::Open(Delim::Paren)).then_some(j)
}

/// Is the identifier at `i` a method call (`.name(`)?
fn is_method_call(file: &File, i: usize) -> bool {
    file.prev_code(i).map(|p| file.is(p, ".")).unwrap_or(false)
}

/// Does the receiver chain of the method call at `i` contain a parallel
/// source marker? Scans backwards to the statement/argument boundary:
/// a `;`/`{`/`}`/`=` at relative depth 0, or the opening delimiter of an
/// enclosing group (relative depth < 0).
fn chain_has_source(file: &File, body_start: usize, i: usize, apis: &FanoutApis) -> bool {
    let mut depth = 0i32;
    let mut j = i;
    while j > body_start {
        j -= 1;
        let t = &file.tokens[j];
        if !t.is_code() {
            continue;
        }
        match t.kind {
            TokKind::Close(_) => depth += 1,
            TokKind::Open(_) => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            TokKind::Ident if apis.sources.iter().any(|s| s == file.text(j)) => {
                return true;
            }
            TokKind::Punct if depth == 0 && (file.is(j, ";") || file.is(j, "=")) => {
                return false;
            }
            _ => {}
        }
    }
    false
}

/// Extract worker code from the argument list `open..close` of a fan-out
/// call: closure-literal bodies, and named function references resolved
/// through the call graph.
fn worker_args(
    ws: &Workspace,
    cg: &CallGraph,
    file_idx: usize,
    caller: usize,
    file: &File,
    open: usize,
    close: usize,
) -> (Vec<Closure>, Vec<usize>) {
    let mut closures = Vec::new();
    let mut roots = Vec::new();
    // Split top-level arguments at depth-1 commas.
    let mut arg_starts = vec![open + 1];
    let mut depth = 0i32;
    for j in open..=close {
        let t = &file.tokens[j];
        if !t.is_code() {
            continue;
        }
        match t.kind {
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => depth -= 1,
            TokKind::Punct if depth == 1 && file.is(j, ",") => arg_starts.push(j + 1),
            _ => {}
        }
    }
    for (k, &s) in arg_starts.iter().enumerate() {
        let end = arg_starts.get(k + 1).map(|&e| e - 1).unwrap_or(close);
        let Some(first) = file.next_code(s).filter(|&f| f < end) else {
            continue;
        };
        if file.is(first, "|") || file.is(first, "move") {
            if let Some(c) = closure_at(file, first) {
                closures.push(c);
            }
            continue;
        }
        // A bare identifier argument (exactly one code token): a named
        // function/closure reference.
        let only_code: Vec<usize> = (first..end).filter(|&j| file.tokens[j].is_code()).collect();
        if only_code.len() == 1 && file.tokens[only_code[0]].kind == TokKind::Ident {
            let name = file.text(only_code[0]);
            for &cand in cg.named(name) {
                let cf = &ws.fns[cand];
                let visible = !cf.in_tests
                    && (!cf.is_closure
                        || (cf.file == file_idx
                            && ws.fns[caller].body.start <= cf.body.start
                            && cf.body.end <= ws.fns[caller].body.end));
                if visible && !roots.contains(&cand) {
                    roots.push(cand);
                }
            }
        }
    }
    (closures, roots)
}

/// Workspace functions called from a token range of `file` (used to seed
/// reachability from closure-literal bodies).
pub fn calls_in_range(
    ws: &Workspace,
    cg: &CallGraph,
    file_idx: usize,
    caller: usize,
    range: &Range<usize>,
) -> Vec<usize> {
    let file = &ws.files[file_idx];
    let mut out = Vec::new();
    for j in range.clone() {
        let t = &file.tokens[j];
        if !t.is_code() || t.kind != TokKind::Ident {
            continue;
        }
        if call_open_paren(file, j).is_none() {
            continue;
        }
        for &cand in cg.named(file.text(j)) {
            let cf = &ws.fns[cand];
            let visible = !cf.in_tests
                && (!cf.is_closure
                    || (cf.file == file_idx
                        && ws.fns[caller].body.start <= cf.body.start
                        && cf.body.end <= ws.fns[caller].body.end));
            if visible && !out.contains(&cand) {
                out.push(cand);
            }
        }
    }
    out
}

/// The region's worker seed set: named roots plus functions called from
/// its closure literals.
pub fn worker_seeds(ws: &Workspace, cg: &CallGraph, region: &Region) -> Vec<usize> {
    let mut seeds = region.roots.clone();
    for clo in &region.closures {
        for c in calls_in_range(ws, cg, region.file, region.caller, &clo.body) {
            if !seeds.contains(&c) {
                seeds.push(c);
            }
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions_of(src: &str) -> (Workspace, CallGraph, Vec<Region>) {
        let mut ws = Workspace::default();
        ws.add_file("lib.rs", src.to_owned());
        let cg = CallGraph::build(&ws);
        let apis = FanoutApis::default();
        let r = find_regions(&ws, &cg, &apis);
        (ws, cg, r)
    }

    #[test]
    fn par_chain_with_closure_is_a_region() {
        let (_, _, r) = regions_of(
            "fn f(chunks: Vec<u32>) -> u32 {\n    chunks.into_par_iter().map(|c| c + 1).sum()\n}\n",
        );
        assert_eq!(r.len(), 1, "{r:?}");
        assert_eq!(r[0].api, "map");
        assert_eq!(r[0].closures.len(), 1);
    }

    #[test]
    fn sequential_map_is_not_a_region() {
        let (_, _, r) = regions_of(
            "fn f(v: Vec<u32>) -> Vec<u32> {\n    v.iter().map(|c| c + 1).collect()\n}\n",
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn named_function_reference_becomes_root() {
        let (ws, _, r) = regions_of(
            "fn f(chunks: Vec<u32>) {\n    let fill = |c: u32| c + 1;\n    \
             let _: Vec<u32> = chunks.into_par_iter().map(fill).collect();\n}\n",
        );
        assert_eq!(r.len(), 1, "{r:?}");
        assert_eq!(r[0].roots.len(), 1);
        assert!(ws.fns[r[0].roots[0]].is_closure);
    }

    #[test]
    fn spawn_closure_is_direct_region() {
        let (_, _, r) = regions_of("fn f() {\n    spawn(move || { work(); });\n}\nfn work() {}\n");
        assert_eq!(r.len(), 1, "{r:?}");
        assert_eq!(r[0].api, "spawn");
    }

    #[test]
    fn inner_sequential_chain_inside_worker_not_reattributed() {
        // The inner `.filter(...)` rides a sequential `(1..n)` range; only
        // the outer `.map` is a region.
        let (_, _, r) = regions_of(
            "fn f(n: u64) -> u64 {\n    (1..n).into_par_iter().map(|a| \
             (1..n).filter(|&b| b > a).count() as u64).sum()\n}\n",
        );
        assert_eq!(r.len(), 1, "{r:?}");
        assert_eq!(r[0].api, "map");
    }

    #[test]
    fn worker_seeds_follow_closure_calls() {
        let (ws, cg, r) = regions_of(
            "fn f(chunks: Vec<u32>) -> u32 {\n    chunks.into_par_iter().map(|c| helper(c)).sum()\n}\n\
             fn helper(c: u32) -> u32 { c }\n",
        );
        assert_eq!(r.len(), 1);
        let seeds = worker_seeds(&ws, &cg, &r[0]);
        assert!(
            seeds.iter().any(|&s| ws.fns[s].name == "helper"),
            "{seeds:?}"
        );
    }
}
