//! Worker-capture escape analysis: `CM-A001`..`CM-A003`.
//!
//! For every parallel region, the worker code (closure literals at the
//! fan-out site, named roots, and everything the call graph reaches from
//! them) is checked for three escape families:
//!
//! * **`CM-A001`** — a worker *closure* mutates an identifier it did not
//!   bind: `captured = …`, `captured += …`, `captured[i] = …`,
//!   `&mut captured`. Closures own their parameters and their `let`/`for`
//!   bindings; everything else they touch is captured from the enclosing
//!   scope and shared across workers.
//! * **`CM-A002`** — non-`Sync` interior mutability (`RefCell`, `Cell`,
//!   `Rc`) appears in any function reachable from a worker.
//!   `thread_local! { … }` bodies are exempt: those cells are per-thread
//!   by construction.
//! * **`CM-A003`** — a call path from a worker to code touching a
//!   `static mut`.
//!
//! Ownership tracking is an over-approximation of "locals" (see
//! [`crate::ast::bound_idents`]); the passes flag only mutations whose
//! base identifier is provably *not* in that set, so shadowed rebinds
//! lean toward silence, never toward false alarms.

use super::regions::{worker_seeds, Region};
use super::{Code, Finding};
use crate::ast::{bound_idents, param_idents, File, Workspace};
use crate::callgraph::CallGraph;
use crate::lexer::{Delim, TokKind};
use std::ops::Range;

/// Names whose construction/mention marks interior mutability (A002).
const INTERIOR: [&str; 3] = ["RefCell", "Cell", "Rc"];

/// Primitive type names — an `&mut u32` in type position is not a
/// mutable capture.
const PRIMITIVES: [&str; 17] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char", "str",
];

/// Run the capture passes over all regions.
pub fn check(ws: &Workspace, cg: &CallGraph, regions: &[Region], findings: &mut Vec<Finding>) {
    let static_muts = collect_static_muts(ws);
    for region in regions {
        let head = region.describe(ws);
        let seeds = worker_seeds(ws, cg, region);
        let reach = cg.reachable(ws, &seeds);

        // Closure literals at the fan-out site.
        let file = &ws.files[region.file];
        for clo in &region.closures {
            let mut owned = Vec::new();
            param_idents(file, clo.params.clone(), &mut owned);
            bound_idents(file, clo.body.clone(), &mut owned);
            check_closure_mutations(file, &owned, clo.body.clone(), &head, &[], findings);
            check_interior(file, clo.body.clone(), &head, &[], findings);
            check_static_mut(file, clo.body.clone(), &static_muts, &head, &[], findings);
        }

        // Everything reachable from the worker seeds.
        for &fi in &reach {
            let f = &ws.fns[fi];
            let ffile = &ws.files[f.file];
            let path = evidence_path(ws, cg, &seeds, fi);
            if f.is_closure {
                let mut owned = Vec::new();
                param_idents(ffile, f.sig.clone(), &mut owned);
                bound_idents(ffile, f.body.clone(), &mut owned);
                check_closure_mutations(ffile, &owned, f.body.clone(), &head, &path, findings);
            }
            check_interior(ffile, f.body.clone(), &head, &path, findings);
            check_static_mut(ffile, f.body.clone(), &static_muts, &head, &path, findings);
        }
    }
}

/// `static mut NAME` declarations in non-test workspace code.
fn collect_static_muts(ws: &Workspace) -> Vec<String> {
    let mut out = Vec::new();
    for file in &ws.files {
        let n = file.tokens.len();
        for i in 0..n {
            let t = &file.tokens[i];
            if !t.is_code() || t.kind != TokKind::Ident || !file.is(i, "static") {
                continue;
            }
            if file.in_tests(t.span.start) || file.in_macro_def(t.span.start) {
                continue;
            }
            let Some(m) = file.next_code(i + 1) else {
                continue;
            };
            if !file.is(m, "mut") {
                continue;
            }
            let Some(name) = file.next_code(m + 1) else {
                continue;
            };
            if file.tokens[name].kind == TokKind::Ident {
                let text = file.text(name).to_owned();
                if !out.contains(&text) {
                    out.push(text);
                }
            }
        }
    }
    out
}

/// BFS path from the worker seeds to `sink`, rendered as qualified names
/// with the region head prepended.
fn evidence_path(ws: &Workspace, cg: &CallGraph, seeds: &[usize], sink: usize) -> Vec<String> {
    cg.find_path(ws, seeds, |f| f == sink)
        .map(|p| p.iter().map(|&i| ws.fns[i].qual.clone()).collect())
        .unwrap_or_default()
}

fn push_finding(
    findings: &mut Vec<Finding>,
    code: Code,
    file: &File,
    line: u32,
    message: String,
    head: &str,
    path: &[String],
) {
    let mut full = vec![head.to_owned()];
    full.extend(path.iter().cloned());
    findings.push(Finding {
        code,
        file: file.label.clone(),
        line,
        message,
        path: full,
    });
}

/// A001: mutations of non-owned identifiers inside a closure body.
fn check_closure_mutations(
    file: &File,
    owned: &[String],
    body: Range<usize>,
    head: &str,
    path: &[String],
    findings: &mut Vec<Finding>,
) {
    let mut reported: Vec<(u32, String)> = Vec::new();
    let mut i = body.start;
    let end = body.end.min(file.tokens.len());
    while i < end {
        let t = &file.tokens[i];
        if !t.is_code() {
            i += 1;
            continue;
        }
        // Skip attributes (`#[cfg(feature = "x")]` carries `=` tokens
        // that are not assignments).
        if file.is(i, "#") {
            if let Some(j) = file.next_code(i + 1) {
                if file.tokens[j].kind == TokKind::Open(Delim::Bracket) {
                    i = file.matching(j) + 1;
                    continue;
                }
            }
        }
        // `&mut captured` (value position only: skip type names).
        if file.is(i, "&") {
            if let Some(m) = file.next_code(i + 1) {
                if file.is(m, "mut") {
                    if let Some(x) = file.next_code(m + 1) {
                        if file.tokens[x].kind == TokKind::Ident {
                            let name = file.text(x);
                            let is_type = name
                                .chars()
                                .next()
                                .map(|c| c.is_ascii_uppercase())
                                .unwrap_or(false)
                                || PRIMITIVES.contains(&name);
                            if !is_type && !owned.iter().any(|o| o == name) {
                                let entry = (file.tokens[x].line, name.to_owned());
                                if !reported.contains(&entry) {
                                    push_finding(
                                        findings,
                                        Code::WorkerCaptureMut,
                                        file,
                                        entry.0,
                                        format!("worker takes `&mut {name}` to captured state"),
                                        head,
                                        path,
                                    );
                                    reported.push(entry);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Assignment operators: `place = v`, `place += v`, `place[i] = v`.
        if file.is(i, "=") {
            if let Some((line, base)) = assignment_base(file, &body, i) {
                if !owned.iter().any(|o| o == &base) {
                    let entry = (line, base.clone());
                    if !reported.contains(&entry) {
                        push_finding(
                            findings,
                            Code::WorkerCaptureMut,
                            file,
                            line,
                            format!("worker closure assigns to captured `{base}`"),
                            head,
                            path,
                        );
                        reported.push(entry);
                    }
                }
            }
        }
        i += 1;
    }
}

/// If the `=` at token `eq` is an assignment to a simple place, return
/// `(line, base identifier)` of that place. Rejects `==`, `!=`, `<=`,
/// `>=`, `=>`, `..=`, `let` bindings, and pattern positions.
fn assignment_base(file: &File, body: &Range<usize>, eq: usize) -> Option<(u32, String)> {
    // Not `==` / `=>`.
    if let Some(n) = file.next_code(eq + 1) {
        if file.is(n, "=") || file.is(n, ">") {
            return None;
        }
    }
    let prev = file.prev_code(eq)?;
    if prev < body.start {
        return None;
    }
    // `==`, `!=`, `<=`, `>=`, shift-assigns: second char of a two-char
    // operator — reject.
    if ["=", "!", "<", ">"].iter().any(|s| file.is(prev, s)) {
        return None;
    }
    // Compound assignment: the place ends before the operator char.
    let compound = ["+", "-", "*", "/", "%", "&", "|", "^"]
        .iter()
        .any(|s| file.is(prev, s));
    let mut place_end = if compound {
        file.prev_code(prev)?
    } else {
        prev
    };
    if place_end < body.start {
        return None;
    }
    // Walk the place expression backwards: `a.b[c].d` → base `a`.
    let mut base: Option<usize> = None;
    loop {
        let t = &file.tokens[place_end];
        match t.kind {
            TokKind::Close(Delim::Bracket) => {
                // Backward-match the index group.
                let mut depth = 0i32;
                let mut j = place_end;
                loop {
                    match file.tokens[j].kind {
                        TokKind::Close(Delim::Bracket) => depth += 1,
                        TokKind::Open(Delim::Bracket) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        return None;
                    }
                    j -= 1;
                }
                place_end = file.prev_code(j)?;
                if place_end < body.start {
                    return None;
                }
            }
            TokKind::Ident => {
                let txt = file.text(place_end);
                if matches!(txt, "let" | "mut" | "ref" | "if" | "else" | "in" | "while") {
                    return None;
                }
                base = Some(place_end);
                let q = match file.prev_code(place_end) {
                    Some(q) if q >= body.start => q,
                    _ => break,
                };
                if file.is(q, ".") {
                    place_end = file.prev_code(q)?;
                    if place_end < body.start {
                        break;
                    }
                } else if file.is(q, "let") || file.is(q, "mut") {
                    // A `let` binding init, not a mutation.
                    return None;
                } else {
                    break;
                }
            }
            _ => break,
        }
        if base.is_some()
            && !matches!(
                file.tokens[place_end].kind,
                TokKind::Ident | TokKind::Close(Delim::Bracket)
            )
        {
            break;
        }
    }
    let b = base?;
    Some((file.tokens[b].line, file.text(b).to_owned()))
}

/// A002: interior-mutability names mentioned in a token range.
fn check_interior(
    file: &File,
    body: Range<usize>,
    head: &str,
    path: &[String],
    findings: &mut Vec<Finding>,
) {
    for i in body.start..body.end.min(file.tokens.len()) {
        let t = &file.tokens[i];
        if !t.is_code() || t.kind != TokKind::Ident {
            continue;
        }
        let name = file.text(i);
        if !INTERIOR.contains(&name) {
            continue;
        }
        if file.in_thread_local(t.span.start) || file.in_macro_def(t.span.start) {
            continue;
        }
        push_finding(
            findings,
            Code::WorkerCaptureInterior,
            file,
            t.line,
            format!("`{name}` (non-Sync interior mutability) reachable from parallel workers"),
            head,
            path,
        );
    }
}

/// A003: references to `static mut` names (or local declarations) in a
/// token range.
fn check_static_mut(
    file: &File,
    body: Range<usize>,
    static_muts: &[String],
    head: &str,
    path: &[String],
    findings: &mut Vec<Finding>,
) {
    for i in body.start..body.end.min(file.tokens.len()) {
        let t = &file.tokens[i];
        if !t.is_code() || t.kind != TokKind::Ident {
            continue;
        }
        let name = file.text(i);
        if !static_muts.iter().any(|s| s == name) {
            continue;
        }
        // Skip the declaration site itself only if it is also the use —
        // touching it from a worker is the finding either way.
        push_finding(
            findings,
            Code::WorkerReachStaticMut,
            file,
            t.line,
            format!("`static mut {name}` reachable from parallel workers"),
            head,
            path,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::super::analyze_str;
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        analyze_str(src).iter().map(|f| f.code.as_str()).collect()
    }

    #[test]
    fn captured_assignment_is_a001() {
        let c = codes(
            "fn f(v: Vec<u32>) {\n    let mut total = 0u32;\n    \
             v.into_par_iter().for_each(|x| total += x);\n}\n",
        );
        assert!(c.contains(&"CM-A001"), "{c:?}");
    }

    #[test]
    fn local_mutation_is_clean() {
        let c = codes(
            "fn f(v: Vec<u32>) -> Vec<u32> {\n    v.into_par_iter().map(|x| {\n        \
             let mut acc = 0;\n        acc += x;\n        acc\n    }).collect()\n}\n",
        );
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn named_closure_mutating_capture_is_found_interprocedurally() {
        let c = analyze_str(
            "fn f(v: Vec<u32>) {\n    let mut hits = 0u32;\n    \
             let tally = |x: u32| { hits += x; };\n    \
             v.into_par_iter().for_each(|x| tally(x));\n}\n",
        );
        assert!(c.iter().any(|f| f.code == Code::WorkerCaptureMut), "{c:?}");
        let f = c.iter().find(|f| f.code == Code::WorkerCaptureMut).unwrap();
        assert!(f.path.iter().any(|p| p.contains("tally")), "{:?}", f.path);
    }

    #[test]
    fn refcell_in_reachable_fn_is_a002() {
        let c = codes(
            "use std::cell::RefCell;\nfn shared() -> RefCell<u32> { RefCell::new(0) }\n\
             fn f(v: Vec<u32>) {\n    v.into_par_iter().for_each(|x| { let _ = shared(); let _ = x; });\n}\n",
        );
        assert!(c.contains(&"CM-A002"), "{c:?}");
    }

    #[test]
    fn thread_local_refcell_is_exempt() {
        let c = codes(
            "thread_local! {\n    static BUF: std::cell::RefCell<Vec<u32>> = std::cell::RefCell::new(Vec::new());\n}\n\
             fn f(v: Vec<u32>) -> Vec<u32> {\n    v.into_par_iter().map(|x| x + 1).collect()\n}\n",
        );
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn static_mut_reach_is_a003() {
        let c = codes(
            "static mut COUNTER: u32 = 0;\nfn bump() { unsafe { COUNTER += 1; } }\n\
             fn f(v: Vec<u32>) {\n    v.into_par_iter().for_each(|_| bump());\n}\n",
        );
        assert!(c.contains(&"CM-A003"), "{c:?}");
    }

    #[test]
    fn index_assignment_to_captured_is_a001() {
        let c = codes(
            "fn f(v: Vec<usize>, out: &mut [u32]) {\n    \
             v.into_par_iter().for_each(|i| out[i] = 1);\n}\n",
        );
        assert!(c.contains(&"CM-A001"), "{c:?}");
    }

    #[test]
    fn comparisons_and_match_arms_are_not_assignments() {
        let c = codes(
            "fn f(v: Vec<u32>) -> Vec<bool> {\n    let limit = 3;\n    \
             v.into_par_iter().map(|x| match x {\n        0 => true,\n        \
             n => n >= limit && n <= 9 && n == 5,\n    }).collect()\n}\n",
        );
        assert!(c.is_empty(), "{c:?}");
    }
}
