//! Lock/atomic discipline: `CM-A006` / `CM-A007`.
//!
//! * **`CM-A006`** — `Ordering::Relaxed` (or an imported bare `Relaxed`)
//!   in library code outside a *documented relaxed domain*. Relaxed
//!   atomics are fine for monotonic stat counters read after join, and
//!   wrong almost everywhere else; a file opts in with a named
//!   annotation comment:
//!
//!   ```text
//!   //! audit: relaxed-domain(stat counters): totals are read after join
//!   ```
//!
//!   The domain name in parentheses is mandatory — the gate refuses
//!   anonymous waivers — and the annotation covers only its own file.
//!
//! * **`CM-A007`** — lock-order consistency: if one function acquires
//!   `a.lock()` then `b.lock()` and another acquires `b` then `a`, the
//!   pair can deadlock under a work-stealing pool. Acquisition order is
//!   approximated by textual order of `.lock()` receivers within each
//!   function body (first acquisition wins; receivers are `a.b` chain
//!   bases).

use super::{Code, Finding};
use crate::ast::{File, Workspace};
use crate::callgraph::CallGraph;
use crate::lexer::{Delim, TokKind};

/// Run both ordering passes.
pub fn check(ws: &Workspace, _cg: &CallGraph, findings: &mut Vec<Finding>) {
    check_relaxed(ws, findings);
    check_lock_order(ws, findings);
}

/// Does the file carry a named `audit: relaxed-domain(…)` annotation?
fn relaxed_domain(file: &File) -> bool {
    for t in &file.tokens {
        if t.kind != TokKind::Comment {
            continue;
        }
        let text = t.text(&file.src);
        if let Some(pos) = text.find("audit: relaxed-domain(") {
            let rest = &text[pos + "audit: relaxed-domain(".len()..];
            if let Some(close) = rest.find(')') {
                if !rest[..close].trim().is_empty() {
                    return true;
                }
            }
        }
    }
    false
}

/// A006 — `Relaxed` memory ordering outside documented domains.
fn check_relaxed(ws: &Workspace, findings: &mut Vec<Finding>) {
    for file in &ws.files {
        if relaxed_domain(file) {
            continue;
        }
        for (i, t) in file.tokens.iter().enumerate() {
            if !t.is_code() || t.kind != TokKind::Ident || !file.is(i, "Relaxed") {
                continue;
            }
            if file.in_tests(t.span.start) || file.in_macro_def(t.span.start) {
                continue;
            }
            findings.push(Finding {
                code: Code::RelaxedOrdering,
                file: file.label.clone(),
                line: t.line,
                message: "Ordering::Relaxed outside a documented relaxed domain \
                          (annotate the file with `audit: relaxed-domain(name)` \
                          if this is a stat/trace counter read after join)"
                    .to_owned(),
                path: Vec::new(),
            });
        }
    }
}

/// A007 — inconsistent lock acquisition order across functions.
fn check_lock_order(ws: &Workspace, findings: &mut Vec<Finding>) {
    // Per function: lock receivers in first-acquisition order.
    let mut acq: Vec<(usize, Vec<(String, u32)>)> = Vec::new();
    for (fi, f) in ws.lib_fns() {
        let file = &ws.files[f.file];
        let mut locks: Vec<(String, u32)> = Vec::new();
        for i in f.body.start..f.body.end.min(file.tokens.len()) {
            let t = &file.tokens[i];
            if !t.is_code() || t.kind != TokKind::Ident || !file.is(i, "lock") {
                continue;
            }
            let Some(dot) = file.prev_code(i).filter(|&p| file.is(p, ".")) else {
                continue;
            };
            let called = file
                .next_code(i + 1)
                .map(|n| file.tokens[n].kind == TokKind::Open(Delim::Paren))
                .unwrap_or(false);
            if !called {
                continue;
            }
            let Some(base) = chain_base(file, dot, f.body.start) else {
                continue;
            };
            if !locks.iter().any(|(n, _)| n == &base) {
                locks.push((base, t.line));
            }
        }
        if locks.len() >= 2 {
            acq.push((fi, locks));
        }
    }
    // Pairwise order conflicts.
    let mut seen_pairs: Vec<(String, String)> = Vec::new();
    for a in 0..acq.len() {
        for b in a + 1..acq.len() {
            let (fa, la) = &acq[a];
            let (fb, lb) = &acq[b];
            for (i1, (x, _)) in la.iter().enumerate() {
                for (y, _) in la.iter().skip(i1 + 1) {
                    // `fa` acquires x before y; does `fb` do y before x?
                    let px = lb.iter().position(|(n, _)| n == x);
                    let py = lb.iter().position(|(n, _)| n == y);
                    if let (Some(px), Some(py)) = (px, py) {
                        if py < px {
                            let key = if x < y {
                                (x.clone(), y.clone())
                            } else {
                                (y.clone(), x.clone())
                            };
                            if seen_pairs.contains(&key) {
                                continue;
                            }
                            seen_pairs.push(key);
                            let f2 = &ws.fns[*fb];
                            let line = lb[px].1;
                            findings.push(Finding {
                                code: Code::LockOrder,
                                file: ws.files[f2.file].label.clone(),
                                line,
                                message: format!(
                                    "lock order conflict: `{}` acquires `{x}` then `{y}`, \
                                     `{}` acquires `{y}` then `{x}` — deadlock under \
                                     contention",
                                    ws.fns[*fa].qual, f2.qual
                                ),
                                path: vec![ws.fns[*fa].qual.clone(), f2.qual.clone()],
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Full dotted path of an `a.b.c` chain ending at the `.` token
/// (`s.a.lock()` → `"s.a"`), so two locks behind the same struct stay
/// distinct.
fn chain_base(file: &File, dot: usize, floor: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut p = file.prev_code(dot)?;
    loop {
        if p < floor || file.tokens[p].kind != TokKind::Ident {
            break;
        }
        parts.push(file.text(p).to_owned());
        let Some(q) = file.prev_code(p).filter(|&q| q >= floor && file.is(q, ".")) else {
            break;
        };
        p = match file.prev_code(q) {
            Some(x) => x,
            None => break,
        };
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

#[cfg(test)]
mod tests {
    use super::super::analyze_str;

    fn codes(src: &str) -> Vec<&'static str> {
        analyze_str(src).iter().map(|f| f.code.as_str()).collect()
    }

    #[test]
    fn relaxed_without_domain_is_a006() {
        let c = codes(
            "use std::sync::atomic::{AtomicU64, Ordering};\n\
             fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n",
        );
        assert!(c.contains(&"CM-A006"), "{c:?}");
    }

    #[test]
    fn relaxed_domain_annotation_exempts_file() {
        let c = codes(
            "//! audit: relaxed-domain(stat counters): read only after join\n\
             use std::sync::atomic::{AtomicU64, Ordering};\n\
             fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n",
        );
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn anonymous_relaxed_domain_is_void() {
        let c = codes(
            "//! audit: relaxed-domain()\n\
             use std::sync::atomic::{AtomicU64, Ordering};\n\
             fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n",
        );
        assert!(c.contains(&"CM-A006"), "{c:?}");
    }

    #[test]
    fn opposite_lock_order_is_a007() {
        let c = codes(
            "use std::sync::Mutex;\nstruct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             fn one(s: &S) { let _x = s.a.lock(); let _y = s.b.lock(); }\n\
             fn two(s: &S) { let _y = s.b.lock(); let _x = s.a.lock(); }\n",
        );
        assert!(c.contains(&"CM-A007"), "{c:?}");
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let c = codes(
            "use std::sync::Mutex;\nstruct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             fn one(s: &S) { let _x = s.a.lock(); let _y = s.b.lock(); }\n\
             fn two(s: &S) { let _x = s.a.lock(); let _y = s.b.lock(); }\n",
        );
        assert!(c.is_empty(), "{c:?}");
    }
}
