//! Value-range analysis: unchecked arithmetic on shape- and
//! address-typed `usize` values (CM-A009, CM-A010).
//!
//! The census sweeps the ≤512³ shape universe and the k-D roadmap
//! pushes node counts past it, so every hot path multiplies extents and
//! shifts packed addresses — exactly the arithmetic that silently wraps
//! when a shape or a decoded index is larger than the code assumed.
//! This pass runs an interval dataflow over each function's CFG
//! ([`crate::cfg`] + [`crate::dataflow`]) and flags raw `*`, `<<`, and
//! `+` sites whose *proven* ranges can exceed `usize` (64-bit assumed):
//!
//! * `CM-A009` `range-mul-overflow` — `*`/`<<` (incl. `*=`/`<<=`) with
//!   a shape- or address-typed operand whose joint range may exceed
//!   the type;
//! * `CM-A010` `range-add-overflow` — `+`/`+=` where both operands are
//!   non-literal, at least one is shape/address-typed, and the sum may
//!   exceed the type.
//!
//! What counts as *proven safe* (no finding):
//!
//! * both operands have intervals whose product/sum/shift fits in 64
//!   bits — intervals come from literals, `for x in a..b` ranges
//!   (loop-carried growth is widened to top at loop heads), masks
//!   (`& 0xff`), `.min(k)`, and slice `.len()` (bounded by the
//!   documented 2⁴⁸-byte allocation assumption);
//! * either operand is **guarded**: it appears (directly or through an
//!   assignment/range chain) in a dominating `checked_*`/
//!   `saturating_*`/`overflowing_*` call or an `assert!`/
//!   `debug_assert!`/`if` comparison in the same function — this is
//!   what lets `topology::product`'s `checked_mul` path pass clean.
//!   Guard recognition is function-granular (lexical prepass), an
//!   over-approximation documented in DESIGN.md §9.
//!
//! Evidence: each finding's `path` carries the def-use chain — where
//! each offending operand was last defined — after the function name.

use super::{Code, Finding};
use crate::ast::{File, FnItem, Workspace};
use crate::cfg::Cfg;
use crate::dataflow::{solve, Lattice, Transfer};
use crate::lexer::{Delim, LitKind, TokKind};
use std::collections::BTreeMap;

/// `usize` is modeled as 64-bit; intervals live in `u128` so products
/// of large values stay representable. `TOP` marks an unbounded end.
const TOP: u128 = u128::MAX;
const USIZE_MAX: u128 = u64::MAX as u128;
/// Slice/collection lengths are bounded by addressable memory; 2⁴⁸ is
/// the documented allocation assumption.
const LEN_MAX: u128 = 1 << 48;

/// Substrings marking a *shape-typed* name (mesh extents, node counts).
const SHAPE_KEYS: [&str; 6] = ["dim", "shape", "extent", "stride", "nodes", "axis_len"];
/// Substrings marking an *address-typed* name (packed cube addresses,
/// linear indices).
const ADDR_KEYS: [&str; 5] = ["addr", "index", "idx", "offset", "node_id"];
/// Call names whose result is shape-typed.
const SHAPE_CALLS: [&str; 6] = [
    "nodes",
    "dims",
    "edge_count",
    "mesh_edges",
    "torus_edges",
    "minimal_cube_nodes",
];
/// Calls whose result is a bit width or exponent: ≤ 63 on the 64-bit
/// targets this analyzer models (`cube_dim` is ≤ 48 by the
/// addressability invariant, but 63 is the sound generic bound).
const BITWIDTH_CALLS: [&str; 11] = [
    "trailing_zeros",
    "leading_zeros",
    "count_ones",
    "count_zeros",
    "ilog2",
    "ilog",
    "cube_dim",
    "rank",
    "dim",
    "minimal_cube_dim",
    "gray_cube_dim",
];
/// Calls whose result counts nodes or edges of a workspace shape,
/// bounded by the `Shape::new` addressability invariant (nodes ≤ 2⁴⁶
/// = `Shape::MAX_NODES`, edges ≤ 3·nodes < 2⁴⁸).
const COUNT_CALLS: [&str; 8] = [
    "nodes",
    "guest_nodes",
    "host_nodes",
    "edge_count",
    "edges_before_node",
    "mesh_edges",
    "torus_edges",
    "minimal_cube_nodes",
];
const COUNT_MAX: u128 = 1 << 48;
/// Per-axis extents are ≤ 2¹⁵ (`Shape::MAX_AXIS`) by the same
/// invariant; a `len(axis)` call (with arguments — argless `len()` is a
/// collection length) returns one extent. The asymmetric split
/// (2⁴⁸ × 2¹⁵ = 2⁶³ ≤ usize::MAX) is what lets `idx * extent + coord`
/// row-major address arithmetic verify without per-site annotations.
const EXTENT_MAX: u128 = 1 << 15;

/// Invariant-derived hi bound for a *name-typed* value. The
/// `Shape::new` addressability invariant (every extent ≤ 2¹⁵ =
/// `Shape::MAX_AXIS`, node product checked ≤ 2⁴⁶ = `Shape::MAX_NODES`)
/// and the `Hypercube::new` cap (`dim ≤ 48 = Hypercube::MAX_DIM`) are
/// enforced where shapes and cubes are produced; assume-guarantee
/// modularity lets consumers of shape-derived values assume them: cube
/// dimensions and ranks ≤ 48, extents ≤ 2¹⁵, node/stride counts and
/// packed addresses ≤ 2⁴⁸ (edges ≤ 3·nodes). Every *def* site computing
/// such a value is still checked against raw operand ranges, so an
/// unchecked production of an out-of-invariant value flags where it is
/// computed, not where it is used.
fn name_bound(name: &str) -> Option<u128> {
    if name == "dim" || name.ends_with("dim") || name == "rank" {
        return Some(48);
    }
    // Bit counts / shift amounts (`cbits`, `bit_offsets`, `shift_bits`):
    // checked before the address class so `bit_offset` reads as a bit
    // position, not a byte address.
    if name.contains("bit") {
        return Some(63);
    }
    if name.contains("extent") || name.contains("axis_len") {
        return Some(EXTENT_MAX);
    }
    if name.contains("nodes") || name.contains("stride") {
        return Some(COUNT_MAX);
    }
    // Node indices (`node`, `xnode`, `ynode`) address into a shape.
    if name == "node" || name.ends_with("node") {
        return Some(LEN_MAX);
    }
    if ADDR_KEYS.iter().any(|k| name.contains(k)) {
        return Some(LEN_MAX);
    }
    None
}

/// Method names whose result is ≤ the receiver (chain position keeps
/// the receiver's abstract value instead of replacing it).
fn is_shrinking_call(name: &str) -> bool {
    matches!(
        name,
        "min" | "clamp" | "div_ceil" | "div_floor" | "saturating_sub" | "rem_euclid" | "abs_diff"
    )
}

/// Primitive integer type names (cast targets to skip in folds).
fn is_prim_ty(name: &str) -> bool {
    matches!(
        name,
        "usize"
            | "u128"
            | "u64"
            | "u32"
            | "u16"
            | "u8"
            | "isize"
            | "i128"
            | "i64"
            | "i32"
            | "i16"
            | "i8"
    )
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Interval {
    lo: u128,
    hi: u128,
}

impl Interval {
    fn top() -> Interval {
        Interval { lo: 0, hi: TOP }
    }
    fn exact(v: u128) -> Interval {
        Interval { lo: v, hi: v }
    }
    fn hull(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
}

/// Abstract value of one variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct VarInfo {
    iv: Interval,
    /// Shape- or address-typed (by name, source call, or propagation).
    typed: bool,
    /// Covered by a dominating overflow guard.
    guarded: bool,
    /// 1-based line of the last definition (def-use evidence).
    def_line: u32,
}

impl VarInfo {
    fn unknown() -> VarInfo {
        VarInfo {
            iv: Interval::top(),
            typed: false,
            guarded: false,
            def_line: 0,
        }
    }
}

/// The dataflow state: variable name → abstract value.
#[derive(Clone, PartialEq, Default)]
struct Env {
    vars: BTreeMap<String, VarInfo>,
}

impl Lattice for Env {
    fn bottom() -> Self {
        Env::default()
    }

    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, v) in &other.vars {
            match self.vars.get_mut(k) {
                None => {
                    self.vars.insert(k.clone(), *v);
                    changed = true;
                }
                Some(mine) => {
                    let joined = VarInfo {
                        iv: mine.iv.hull(v.iv),
                        typed: mine.typed || v.typed,
                        guarded: mine.guarded && v.guarded,
                        def_line: mine.def_line.max(v.def_line),
                    };
                    if joined != *mine {
                        *mine = joined;
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    fn widen(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, v) in &other.vars {
            match self.vars.get_mut(k) {
                None => {
                    self.vars.insert(k.clone(), *v);
                    changed = true;
                }
                Some(mine) => {
                    // Any still-growing bound jumps straight to top.
                    let widened = VarInfo {
                        iv: Interval {
                            lo: if v.iv.lo < mine.iv.lo { 0 } else { mine.iv.lo },
                            hi: if v.iv.hi > mine.iv.hi {
                                TOP
                            } else {
                                mine.iv.hi
                            },
                        },
                        typed: mine.typed || v.typed,
                        guarded: mine.guarded && v.guarded,
                        def_line: mine.def_line.max(v.def_line),
                    };
                    if widened != *mine {
                        *mine = widened;
                        changed = true;
                    }
                }
            }
        }
        changed
    }
}

/// Function-granular guard facts from the lexical prepass.
#[derive(Default)]
struct Guards {
    /// Variables appearing in a `checked_*`/`saturating_*` call or a
    /// comparison guard.
    guarded: Vec<String>,
    /// Literal upper bounds proven by `assert!(x < k)` / `if x <= k`.
    bounds: BTreeMap<String, u128>,
}

impl Guards {
    fn is_guarded(&self, name: &str) -> bool {
        self.guarded.iter().any(|g| g == name)
    }
}

fn is_shapeish_name(name: &str) -> bool {
    SHAPE_KEYS.iter().any(|k| name.contains(k)) || ADDR_KEYS.iter().any(|k| name.contains(k))
}

/// Entry point: run the interval analysis over every non-test,
/// non-closure function (closure bodies are analyzed inline as part of
/// their owner's CFG).
pub fn check(ws: &Workspace, findings: &mut Vec<Finding>) {
    for (_fi, f) in ws.lib_fns() {
        if f.is_closure {
            continue;
        }
        let file = &ws.files[f.file];
        if f.body.start >= file.tokens.len()
            || file.in_macro_def(file.tokens[f.body.start].span.start)
        {
            continue;
        }
        let guards = collect_guards(file, f);
        let cfg = Cfg::build(file, f);
        let pass = RangePass {
            file,
            guards: &guards,
        };
        let states = solve(&cfg, &pass, initial_env(file, f, &guards));
        for (b, state) in states.iter().enumerate() {
            let mut env = state.clone();
            pass.walk_block(&cfg.blocks[b].tokens, &mut env, Some((f, findings)));
        }
    }
}

/// Seed the entry state: parameters typed by name (unknown range).
fn initial_env(file: &File, f: &FnItem, guards: &Guards) -> Env {
    let mut env = Env::default();
    // Parameter list: idents before `:` inside the signature parens.
    let mut i = f.sig.start;
    let mut open = None;
    while i < f.sig.end {
        if file.tokens[i].is_code() && file.tokens[i].kind == TokKind::Open(Delim::Paren) {
            open = Some(i);
            break;
        }
        i += 1;
    }
    let Some(open) = open else { return env };
    let close = file.matching(open);
    let mut j = open + 1;
    while j < close {
        let t = &file.tokens[j];
        if t.is_code() && t.kind == TokKind::Ident {
            let name = file.text(j);
            let is_param = file
                .next_code(j + 1)
                .map(|k| file.is(k, ":"))
                .unwrap_or(false);
            if is_param {
                let mut v = VarInfo::unknown();
                v.typed = is_shapeish_name(name);
                v.guarded = guards.is_guarded(name);
                if let Some(&b) = guards.bounds.get(name) {
                    v.iv.hi = b;
                }
                v.def_line = t.line;
                env.vars.insert(name.to_owned(), v);
            }
        }
        j += 1;
    }
    env
}

/// Lexical prepass over the whole body: collect `checked_*` receivers
/// and args, and literal comparison bounds from asserts and `if`s.
fn collect_guards(file: &File, f: &FnItem) -> Guards {
    let mut g = Guards::default();
    let end = f.body.end.min(file.tokens.len());
    let mut i = f.body.start;
    while i < end {
        let t = &file.tokens[i];
        if !t.is_code() {
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            let name = file.text(i);
            if name.starts_with("checked_")
                || name.starts_with("saturating_")
                || name.starts_with("overflowing_")
                || name.starts_with("wrapping_")
            {
                // Receiver ident (before the `.`) and argument idents.
                if let Some(dot) = file.prev_code(i).filter(|&d| file.is(d, ".")) {
                    if let Some(r) = file.prev_code(dot) {
                        if file.tokens[r].kind == TokKind::Ident {
                            g.guarded.push(file.text(r).to_owned());
                        }
                    }
                }
                if let Some(open) = file
                    .next_code(i + 1)
                    .filter(|&o| file.tokens[o].kind == TokKind::Open(Delim::Paren))
                {
                    let close = file.matching(open);
                    for k in open + 1..close {
                        if file.tokens[k].is_code() && file.tokens[k].kind == TokKind::Ident {
                            g.guarded.push(file.text(k).to_owned());
                        }
                    }
                }
            }
            // assert!(a < b) / debug_assert!(a <= b) / if a < b.
            if name == "assert" || name == "debug_assert" || name == "if" || name == "while" {
                let scan_end = guard_scan_end(file, i, end);
                collect_cmp_bounds(file, i + 1, scan_end, &mut g);
            }
        }
        i += 1;
    }
    g.guarded.sort();
    g.guarded.dedup();
    g
}

/// End of the token range a guard keyword's condition occupies.
fn guard_scan_end(file: &File, kw: usize, end: usize) -> usize {
    // For assert!/debug_assert!: the macro's paren group. For if/while:
    // up to the opening brace.
    if let Some(bang) = file.next_code(kw + 1).filter(|&b| file.is(b, "!")) {
        if let Some(open) = file
            .next_code(bang + 1)
            .filter(|&o| file.tokens[o].kind == TokKind::Open(Delim::Paren))
        {
            return file.matching(open).min(end);
        }
    }
    let mut j = kw + 1;
    let mut depth = 0i32;
    while j < end {
        let t = &file.tokens[j];
        if t.is_code() {
            match t.kind {
                TokKind::Open(Delim::Brace) if depth == 0 => return j,
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                _ => {}
            }
        }
        j += 1;
    }
    end
}

/// Record `ident < LIT` / `ident <= LIT` bounds and `ident < ident`
/// guardedness inside `start..end`. Comparisons in the other direction
/// (`ident > LIT` / `ident >= LIT`, the early-return style
/// `if host_dim >= 63 { return 1; }`) establish the same hi bound:
/// function-granular guard collection is deliberately coarse — a
/// comparison against a literal anywhere in the function is taken as
/// evidence the author bounded the variable.
fn collect_cmp_bounds(file: &File, start: usize, end: usize, g: &mut Guards) {
    let mut i = start;
    while i < end {
        let t = &file.tokens[i];
        if t.is_code() && t.kind == TokKind::Punct && file.is(i, ">") {
            // Skip `>>` and `->`.
            let next = file.next_code(i + 1);
            if next.map(|n| file.is(n, ">")) == Some(true)
                || (i > 0 && (file.is(i - 1, ">") || file.is(i - 1, "-")))
            {
                i += 1;
                continue;
            }
            let lhs = file.prev_code(i);
            let mut rhs = next;
            let mut inclusive = true; // `x > LIT` leaves x ≤ LIT on fall-through
            if let Some(n) = next {
                if file.is(n, "=") {
                    // `x >= LIT` leaves x ≤ LIT − 1.
                    inclusive = false;
                    rhs = file.next_code(n + 1);
                }
            }
            if let (Some(l), Some(r)) = (lhs, rhs) {
                if file.tokens[l].kind == TokKind::Ident
                    && file.tokens[r].kind == TokKind::Literal(LitKind::Int)
                {
                    if let Some(v) = int_lit(file.text(r)) {
                        let hi = if inclusive { v } else { v.saturating_sub(1) };
                        let e = g.bounds.entry(file.text(l).to_owned()).or_insert(hi);
                        *e = (*e).min(hi);
                    }
                }
            }
            i += 1;
            continue;
        }
        if t.is_code() && t.kind == TokKind::Punct && file.is(i, "<") {
            // Skip `<<`.
            let next = file.next_code(i + 1);
            if next.map(|n| file.is(n, "<")) == Some(true) {
                i += 2;
                continue;
            }
            let lhs = file.prev_code(i);
            let mut rhs = next;
            let mut inclusive = false;
            if let Some(n) = next {
                if file.is(n, "=") {
                    inclusive = true;
                    rhs = file.next_code(n + 1);
                }
            }
            if let (Some(l), Some(r)) = (lhs, rhs) {
                if file.tokens[l].kind == TokKind::Ident {
                    let lname = file.text(l).to_owned();
                    match file.tokens[r].kind {
                        TokKind::Literal(LitKind::Int) => {
                            if let Some(v) = int_lit(file.text(r)) {
                                let hi = if inclusive { v } else { v.saturating_sub(1) };
                                let e = g.bounds.entry(lname).or_insert(hi);
                                *e = (*e).min(hi);
                            }
                        }
                        TokKind::Ident => g.guarded.push(lname),
                        _ => {}
                    }
                }
            }
        }
        i += 1;
    }
}

/// Parse an integer literal (decimal, hex, underscores, suffixes).
fn int_lit(text: &str) -> Option<u128> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let t = t
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .trim_end_matches(|c: char| c.is_ascii_digit() && !t.starts_with("0x"));
    // Simpler: strip common suffixes explicitly.
    let raw: &str = {
        let mut s = text;
        for suf in [
            "usize", "u128", "u64", "u32", "u16", "u8", "isize", "i128", "i64", "i32", "i16", "i8",
        ] {
            if let Some(stripped) = s.strip_suffix(suf) {
                s = stripped;
                break;
            }
        }
        s
    };
    let raw: String = raw.chars().filter(|&c| c != '_').collect();
    let _ = t;
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u128::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = raw.strip_prefix("0b") {
        u128::from_str_radix(bin, 2).ok()
    } else if let Some(oct) = raw.strip_prefix("0o") {
        u128::from_str_radix(oct, 8).ok()
    } else {
        raw.parse().ok()
    }
}

struct RangePass<'a> {
    file: &'a File,
    guards: &'a Guards,
}

impl Transfer for RangePass<'_> {
    type State = Env;
    fn transfer(&self, cfg: &Cfg, b: usize, state: &mut Env) {
        self.walk_block(&cfg.blocks[b].tokens, state, None);
    }
}

impl RangePass<'_> {
    /// Interpret one block's token list, updating `env`; when `report`
    /// is set, also evaluate every raw arithmetic site against the
    /// current state and emit findings.
    fn walk_block(
        &self,
        tokens: &[usize],
        env: &mut Env,
        mut report: Option<(&FnItem, &mut Vec<Finding>)>,
    ) {
        let file = self.file;
        let mut p = 0usize;
        while p < tokens.len() {
            let i = tokens[p];
            let t = &file.tokens[i];
            if t.kind == TokKind::Ident {
                match file.text(i) {
                    "for" => {
                        p = self.for_header(tokens, p, env);
                        continue;
                    }
                    "let" => {
                        p = self.let_binding(tokens, p, env, &mut report);
                        continue;
                    }
                    _ => {}
                }
            }
            // `x = rhs` / `x op= rhs` (op in * + <<).
            if t.kind == TokKind::Ident && p + 1 < tokens.len() {
                if let Some(consumed) = self.assignment(tokens, p, env, &mut report) {
                    p = consumed;
                    continue;
                }
            }
            // Raw operator site in expression position.
            if t.kind == TokKind::Punct {
                self.op_site(tokens, p, env, &mut report);
            }
            p += 1;
        }
    }

    /// `for PAT in A .. B` (or an iterator chain): bind pattern idents.
    fn for_header(&self, tokens: &[usize], p: usize, env: &mut Env) -> usize {
        let file = self.file;
        let mut q = p + 1;
        let mut pat: Vec<(String, u32)> = Vec::new();
        while q < tokens.len() {
            let i = tokens[q];
            if file.tokens[i].kind == TokKind::Ident {
                if file.is(i, "in") {
                    break;
                }
                if !matches!(file.text(i), "mut" | "ref") {
                    pat.push((file.text(i).to_owned(), file.tokens[i].line));
                }
            }
            q += 1;
        }
        if q >= tokens.len() {
            return q;
        }
        // Range bounds: `A .. B` / `A ..= B` at the top level of the
        // iterator expression; otherwise classify by the chain's first
        // atom.
        let expr = &tokens[q + 1..];
        let mut info = VarInfo::unknown();
        let mut found_range = false;
        let mut d = 0i32;
        for (k, &i) in expr.iter().enumerate() {
            match file.tokens[i].kind {
                TokKind::Open(_) => d += 1,
                TokKind::Close(_) => d -= 1,
                TokKind::Punct
                    if d == 0
                        && file.is(i, ".")
                        && expr.get(k + 1).map(|&n| file.is(n, ".")) == Some(true) =>
                {
                    let inclusive = expr.get(k + 2).map(|&n| file.is(n, "=")) == Some(true);
                    let lo = if k > 0 {
                        self.atom(tokens, q + 1 + k - 1, env).iv.lo
                    } else {
                        0
                    };
                    let hi_at = k + if inclusive { 3 } else { 2 };
                    let hi_info = expr
                        .get(hi_at)
                        .map(|_| self.atom(tokens, q + 1 + hi_at, env))
                        .unwrap_or_else(VarInfo::unknown);
                    let hi = if inclusive {
                        hi_info.iv.hi
                    } else {
                        hi_info.iv.hi.saturating_sub(1)
                    };
                    info = VarInfo {
                        iv: Interval { lo, hi },
                        typed: hi_info.typed,
                        guarded: hi_info.guarded,
                        def_line: 0,
                    };
                    found_range = true;
                    break;
                }
                _ => {}
            }
        }
        if !found_range {
            // `for x in xs.iter()` — inherit typedness from the chain
            // head so extents iterated out of a shape stay shape-typed.
            if let Some(&head) = expr.first() {
                if file.tokens[head].kind == TokKind::Ident {
                    let a = self.atom(tokens, q + 1, env);
                    info.typed = a.typed;
                    info.guarded = a.guarded;
                }
            }
            // `for d in shape.dims() { … }` — elements of an extent
            // accessor chain are themselves extents.
            for (k, &i) in expr.iter().enumerate() {
                if file.tokens[i].kind == TokKind::Ident
                    && matches!(file.text(i), "dims" | "extents")
                    && expr
                        .get(k + 1)
                        .map(|&n| file.tokens[n].kind == TokKind::Open(Delim::Paren))
                        == Some(true)
                {
                    info.iv = Interval {
                        lo: 0,
                        hi: EXTENT_MAX,
                    };
                    info.typed = true;
                    break;
                }
            }
        }
        for (name, line) in pat {
            let mut v = info;
            v.def_line = line;
            // Name-based typing still applies to the binder itself.
            v.typed = v.typed || is_shapeish_name(&name);
            env.vars.insert(name, v);
        }
        q + 1
    }

    /// `let [mut] NAME [: ty] = RHS ;` — evaluate RHS, bind NAME.
    fn let_binding(
        &self,
        tokens: &[usize],
        p: usize,
        env: &mut Env,
        report: &mut Option<(&FnItem, &mut Vec<Finding>)>,
    ) -> usize {
        let file = self.file;
        let mut q = p + 1;
        let mut name: Option<(String, u32)> = None;
        // Find the single binder (skip `mut`; tuple patterns fall back
        // to unknown bindings).
        while q < tokens.len() {
            let i = tokens[q];
            match file.tokens[i].kind {
                TokKind::Ident if file.is(i, "mut") => {}
                TokKind::Ident if name.is_none() => {
                    name = Some((file.text(i).to_owned(), file.tokens[i].line));
                }
                TokKind::Ident => {}
                TokKind::Punct if file.is(i, "=") => break,
                TokKind::Punct if file.is(i, ";") => return q + 1,
                _ => {}
            }
            q += 1;
        }
        if q >= tokens.len() {
            return q;
        }
        // RHS runs to the `;` at depth 0 (within this block's tokens).
        let rhs_start = q + 1;
        let mut d = 0i32;
        let mut rhs_end = tokens.len();
        for (k, &i) in tokens.iter().enumerate().skip(rhs_start) {
            match file.tokens[i].kind {
                TokKind::Open(_) => d += 1,
                TokKind::Close(_) => d -= 1,
                TokKind::Punct if d == 0 && file.is(i, ";") => {
                    rhs_end = k;
                    break;
                }
                _ => {}
            }
        }
        let info = self.eval_expr(tokens, rhs_start, rhs_end, env, report);
        if let Some((n, line)) = name {
            let mut v = info;
            v.def_line = line;
            v.typed = v.typed || is_shapeish_name(&n);
            if self.guards.is_guarded(&n) {
                v.guarded = true;
            }
            if let Some(&b) = self.guards.bounds.get(&n) {
                v.iv.hi = v.iv.hi.min(b);
            }
            env.vars.insert(n, v);
        }
        rhs_end.min(tokens.len())
    }

    /// `x = rhs` / `x *= rhs` / `x += rhs` / `x <<= rhs`. Returns the
    /// position after the statement if it was one.
    fn assignment(
        &self,
        tokens: &[usize],
        p: usize,
        env: &mut Env,
        report: &mut Option<(&FnItem, &mut Vec<Finding>)>,
    ) -> Option<usize> {
        let file = self.file;
        let name_tok = tokens[p];
        let name = file.text(name_tok).to_owned();
        if matches!(
            name.as_str(),
            "if" | "while" | "match" | "return" | "else" | "in" | "fn" | "move" | "let"
        ) {
            return None;
        }
        // Look at the operator directly after the ident.
        let op_at = p + 1;
        let &i1 = tokens.get(op_at)?;
        if file.tokens[i1].kind != TokKind::Punct {
            return None;
        }
        let c1 = file.text(i1);
        let (op, rhs_start) = match c1 {
            "=" => {
                // Plain assignment — but not `==`, `<=`, `>=`, `!=`.
                let next = tokens.get(op_at + 1)?;
                if file.is(*next, "=") {
                    return None;
                }
                ("=", op_at + 1)
            }
            "*" | "+" if tokens.get(op_at + 1).map(|&n| file.is(n, "=")) == Some(true) => {
                (c1, op_at + 2)
            }
            "<" if tokens.get(op_at + 1).map(|&n| file.is(n, "<")) == Some(true)
                && tokens.get(op_at + 2).map(|&n| file.is(n, "=")) == Some(true) =>
            {
                ("<<", op_at + 3)
            }
            _ => return None,
        };
        // RHS to `;` at depth 0.
        let mut d = 0i32;
        let mut rhs_end = tokens.len();
        for (k, &i) in tokens.iter().enumerate().skip(rhs_start) {
            match file.tokens[i].kind {
                TokKind::Open(_) => d += 1,
                TokKind::Close(_) => d -= 1,
                TokKind::Punct if d == 0 && file.is(i, ";") => {
                    rhs_end = k;
                    break;
                }
                _ => {}
            }
        }
        let rhs = self.eval_expr(tokens, rhs_start, rhs_end, env, report);
        let lhs = self.lookup(&name, env, name_tok);
        let mut out = match op {
            "=" => rhs,
            "*" => {
                self.check_binop_at(Code::RangeMulOverflow, "*", name_tok, &lhs, &rhs, report);
                VarInfo {
                    iv: Interval {
                        lo: lhs.iv.lo.saturating_mul(rhs.iv.lo),
                        hi: lhs.iv.hi.saturating_mul(rhs.iv.hi),
                    },
                    typed: lhs.typed || rhs.typed,
                    guarded: lhs.guarded && rhs.guarded,
                    def_line: file.tokens[name_tok].line,
                }
            }
            "+" => {
                self.check_binop_at(Code::RangeAddOverflow, "+", name_tok, &lhs, &rhs, report);
                VarInfo {
                    iv: Interval {
                        lo: lhs.iv.lo.saturating_add(rhs.iv.lo),
                        hi: lhs.iv.hi.saturating_add(rhs.iv.hi),
                    },
                    typed: lhs.typed || rhs.typed,
                    guarded: lhs.guarded && rhs.guarded,
                    def_line: file.tokens[name_tok].line,
                }
            }
            _ => {
                self.check_binop_at(Code::RangeMulOverflow, "<<", name_tok, &lhs, &rhs, report);
                VarInfo {
                    iv: Interval {
                        lo: 0,
                        hi: shl_hi(lhs.iv.hi, rhs.iv.hi),
                    },
                    typed: lhs.typed || rhs.typed,
                    guarded: lhs.guarded && rhs.guarded,
                    def_line: file.tokens[name_tok].line,
                }
            }
        };
        out.def_line = file.tokens[name_tok].line;
        out.typed = out.typed || is_shapeish_name(&name);
        if self.guards.is_guarded(&name) {
            out.guarded = true;
        }
        env.vars.insert(name, out);
        Some(rhs_end)
    }

    /// Evaluate an expression slice: visit operator sites (reporting if
    /// requested) and produce a conservative combined value.
    fn eval_expr(
        &self,
        tokens: &[usize],
        start: usize,
        end: usize,
        env: &mut Env,
        report: &mut Option<(&FnItem, &mut Vec<Finding>)>,
    ) -> VarInfo {
        let file = self.file;
        // Single-atom fast path.
        if let Some(info) = self.single_atom(tokens, start, end, env) {
            return info;
        }
        // Visit operator sites inside the expression.
        for p in start..end.min(tokens.len()) {
            if file.tokens[tokens[p]].kind == TokKind::Punct {
                self.op_site(tokens, p, env, report);
            }
        }
        // Combined value: fold atoms left to right through the ops we
        // model; anything else degrades to top with typedness OR-ed.
        let mut acc: Option<VarInfo> = None;
        let mut pending: Option<&str> = None;
        let mut after_dot = false;
        let mut p = start;
        let mut depth = 0i32;
        while p < end.min(tokens.len()) {
            let i = tokens[p];
            let t = &file.tokens[i];
            let was_after_dot = after_dot;
            after_dot = t.is_code() && t.kind == TokKind::Punct && file.is(i, ".") && depth == 0;
            match t.kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Punct if depth == 0 => {
                    let c = file.text(i);
                    if c == "*" || c == "+" {
                        pending = Some(if c == "*" { "*" } else { "+" });
                    } else if c == "-" || c == "/" || c == "%" {
                        // Unsigned `a - b`, `a / b`, `a % b` are all
                        // ≤ `a`: keep the accumulator's hi, zero the lo.
                        pending = Some("shrink");
                    } else if c == "<"
                        && p + 1 < end
                        && tokens.get(p + 1).map(|&n| file.is(n, "<")) == Some(true)
                    {
                        pending = Some("<<");
                        p += 1;
                    } else if c != "." && c != "&" {
                        // Unmodeled operator: degrade the accumulator.
                        if let Some(a) = acc.as_mut() {
                            a.iv = Interval::top();
                        }
                        pending = None;
                    }
                }
                TokKind::Ident | TokKind::Literal(_) if depth == 0 => {
                    // `expr as u64` — the cast keeps the operand's
                    // abstract value; skip both keyword and type so
                    // they don't degrade the accumulator.
                    if file.is(i, "as") {
                        p += 2;
                        continue;
                    }
                    let v = self.atom(tokens, p, env);
                    // `recv.call(…)` in chain position: the chain's
                    // value is the call's own classification — the
                    // receiver's typedness must not leak into it
                    // (`shape.rank()` is a rank, not a shape).
                    let is_call = tokens
                        .get(p + 1)
                        .map(|&n| file.tokens[n].kind == TokKind::Open(Delim::Paren))
                        == Some(true);
                    if was_after_dot && pending.is_none() && !is_shrinking_call(file.text(i)) {
                        acc = None;
                    }
                    // A shrinking method keeps the receiver's value
                    // (`nodes.div_ceil(t)` is still ≤ nodes); other
                    // chain calls replace it (handled above).
                    if was_after_dot && is_call && is_shrinking_call(file.text(i)) {
                        if let Some(a) = acc.as_mut() {
                            a.iv.lo = 0;
                            if v.guarded {
                                a.guarded = true;
                            }
                            // `.min(LIT)` tightens further.
                            if v.iv.hi < a.iv.hi {
                                a.iv.hi = v.iv.hi;
                            }
                        }
                        if acc.is_some() {
                            if let Some(&n) = tokens.get(p + 1) {
                                if file.tokens[n].kind == TokKind::Open(Delim::Paren) {
                                    let close = file.matching(n);
                                    while p + 1 < end
                                        && tokens.get(p + 1).map(|&x| x <= close) == Some(true)
                                    {
                                        p += 1;
                                    }
                                }
                            }
                            p += 1;
                            continue;
                        }
                    }
                    acc = Some(match (acc, pending.take()) {
                        (None, _) => v,
                        (Some(a), Some("shrink")) => VarInfo {
                            iv: Interval { lo: 0, hi: a.iv.hi },
                            typed: a.typed,
                            guarded: a.guarded,
                            def_line: a.def_line,
                        },
                        (Some(a), Some("*")) => VarInfo {
                            iv: Interval {
                                lo: a.iv.lo.saturating_mul(v.iv.lo),
                                hi: a.iv.hi.saturating_mul(v.iv.hi),
                            },
                            typed: a.typed || v.typed,
                            guarded: a.guarded && v.guarded,
                            def_line: a.def_line,
                        },
                        (Some(a), Some("+")) => VarInfo {
                            iv: Interval {
                                lo: a.iv.lo.saturating_add(v.iv.lo),
                                hi: a.iv.hi.saturating_add(v.iv.hi),
                            },
                            typed: a.typed || v.typed,
                            guarded: a.guarded && v.guarded,
                            def_line: a.def_line,
                        },
                        (Some(a), Some("<<")) => VarInfo {
                            iv: Interval {
                                lo: 0,
                                hi: shl_hi(a.iv.hi, v.iv.hi),
                            },
                            typed: a.typed || v.typed,
                            guarded: a.guarded && v.guarded,
                            def_line: a.def_line,
                        },
                        (Some(a), _) => VarInfo {
                            typed: a.typed || v.typed,
                            guarded: a.guarded && v.guarded,
                            ..a
                        },
                    });
                    // Skip the rest of a call's argument list so inner
                    // atoms don't pollute the fold.
                    if let Some(&n) = tokens.get(p + 1) {
                        if file.tokens[n].kind == TokKind::Open(Delim::Paren) {
                            let close = file.matching(n);
                            while p + 1 < end
                                && tokens.get(p + 1).map(|&x| x <= close) == Some(true)
                            {
                                p += 1;
                            }
                        }
                    }
                }
                _ => {}
            }
            p += 1;
        }
        acc.unwrap_or_else(VarInfo::unknown)
    }

    /// If `start..end` is one atom (ident/literal/call chain), its value.
    fn single_atom(
        &self,
        tokens: &[usize],
        start: usize,
        end: usize,
        env: &Env,
    ) -> Option<VarInfo> {
        let file = self.file;
        let code: Vec<usize> = (start..end.min(tokens.len())).collect();
        if code.len() == 1 {
            let i = tokens[code[0]];
            if matches!(file.tokens[i].kind, TokKind::Ident | TokKind::Literal(_)) {
                return Some(self.atom(tokens, code[0], env));
            }
        }
        None
    }

    /// Abstract value of the atom at position `p` in the block tokens.
    fn atom(&self, tokens: &[usize], p: usize, env: &Env) -> VarInfo {
        let file = self.file;
        let i = tokens[p];
        let t = &file.tokens[i];
        match t.kind {
            TokKind::Literal(LitKind::Int) => match int_lit(file.text(i)) {
                Some(v) => VarInfo {
                    iv: Interval::exact(v),
                    typed: false,
                    // Not `guarded`: the exact interval carries the
                    // proof (`1 << dim` must still flag on `dim`).
                    guarded: false,
                    def_line: t.line,
                },
                None => VarInfo::unknown(),
            },
            TokKind::Ident => {
                let name = file.text(i);
                // A call? Classify by name.
                let is_call = tokens
                    .get(p + 1)
                    .map(|&n| file.tokens[n].kind == TokKind::Open(Delim::Paren))
                    == Some(true);
                if is_call {
                    return self.call_atom(tokens, p, env);
                }
                self.lookup(name, env, i)
            }
            _ => VarInfo::unknown(),
        }
    }

    fn lookup(&self, name: &str, env: &Env, tok: usize) -> VarInfo {
        let mut v = if let Some(v) = env.vars.get(name) {
            *v
        } else {
            let mut v = VarInfo::unknown();
            v.typed = is_shapeish_name(name);
            v.def_line = self.file.tokens[tok].line;
            v
        };
        if self.guards.is_guarded(name) {
            v.guarded = true;
        }
        if let Some(&b) = self.guards.bounds.get(name) {
            v.iv.hi = v.iv.hi.min(b);
        }
        // A name in the invariant vocabulary is shape-typed by
        // definition and carries its class bound.
        if let Some(b) = name_bound(name) {
            v.typed = true;
            v.iv.hi = v.iv.hi.min(b);
        }
        v
    }

    /// Value of a call atom `name(…)` at position `p`.
    fn call_atom(&self, tokens: &[usize], p: usize, env: &Env) -> VarInfo {
        let file = self.file;
        let i = tokens[p];
        let name = file.text(i);
        let open = tokens[p + 1];
        let close = file.matching(open);
        let has_args = (open + 1..close).any(|k| file.tokens[k].is_code());
        let mut v = VarInfo::unknown();
        v.def_line = file.tokens[i].line;
        if name.starts_with("checked_")
            || name.starts_with("saturating_")
            || name.starts_with("wrapping_")
            || name.starts_with("overflowing_")
        {
            v.guarded = true;
            return v;
        }
        if name == "len" {
            v.iv = if has_args {
                // `shape.len(axis)`: one extent.
                v.typed = true;
                Interval {
                    lo: 0,
                    hi: EXTENT_MAX,
                }
            } else {
                // Slice/collection length: bounded by addressable memory.
                Interval { lo: 0, hi: LEN_MAX }
            };
            return v;
        }
        if BITWIDTH_CALLS.contains(&name) {
            v.iv = Interval { lo: 0, hi: 63 };
            v.typed = v.typed || is_shapeish_name(name);
            return v;
        }
        if COUNT_CALLS.contains(&name) {
            v.iv = Interval {
                lo: 0,
                hi: COUNT_MAX,
            };
            v.typed = true;
            return v;
        }
        if name == "min" {
            // `.min(k)`: bounded by a literal argument if present.
            if let Some(arg) = (open + 1..close).find(|&k| file.tokens[k].is_code()) {
                if let TokKind::Literal(LitKind::Int) = file.tokens[arg].kind {
                    if let Some(k) = int_lit(file.text(arg)) {
                        v.iv = Interval { lo: 0, hi: k };
                        return v;
                    }
                }
            }
        }
        if SHAPE_CALLS.contains(&name) || is_shapeish_name(name) {
            v.typed = true;
            // Indexing/accessor atoms (`offsets[i]`, `stride(k)`) carry
            // the same invariant bound as the name class.
            if let Some(b) = name_bound(name) {
                v.iv.hi = v.iv.hi.min(b);
            }
        }
        if self.guards.is_guarded(name) {
            v.guarded = true;
        }
        let _ = env;
        v
    }

    /// Inspect a Punct position for a raw binary `*`, `+`, or `<<` and
    /// report if the joint range may exceed `usize`.
    fn op_site(
        &self,
        tokens: &[usize],
        p: usize,
        env: &Env,
        report: &mut Option<(&FnItem, &mut Vec<Finding>)>,
    ) {
        if report.is_none() {
            return;
        }
        let file = self.file;
        let i = tokens[p];
        let c = file.text(i);
        let (code, op, rp) = match c {
            "*" => {
                // Binary only: previous code token must end an operand.
                if !self.prev_is_operand(tokens, p) {
                    return;
                }
                // `*=` handled as assignment.
                if tokens.get(p + 1).map(|&n| file.is(n, "=")) == Some(true) {
                    return;
                }
                (Code::RangeMulOverflow, "*", p + 1)
            }
            "+" => {
                if !self.prev_is_operand(tokens, p) {
                    return;
                }
                if tokens.get(p + 1).map(|&n| file.is(n, "=")) == Some(true) {
                    return;
                }
                (Code::RangeAddOverflow, "+", p + 1)
            }
            "<" => {
                if tokens.get(p + 1).map(|&n| file.is(n, "<")) != Some(true) {
                    return;
                }
                // Not `<<=`, not the second `<` of a `<<`.
                if tokens.get(p + 2).map(|&n| file.is(n, "=")) == Some(true) {
                    return;
                }
                if p > 0 && file.is(tokens[p - 1], "<") {
                    return;
                }
                if !self.prev_is_operand(tokens, p) {
                    return;
                }
                (Code::RangeMulOverflow, "<<", p + 2)
            }
            _ => return,
        };
        let lhs = match self.operand_before(tokens, p, env) {
            Some(v) => v,
            None => return,
        };
        let rhs = match self.operand_after(tokens, rp, env) {
            Some(v) => v,
            None => return,
        };
        let op_tok = tokens[p];
        self.check_binop_at(code, op, op_tok, &lhs, &rhs, report);
    }

    fn check_binop_at(
        &self,
        code: Code,
        op: &str,
        at_tok: usize,
        lhs: &VarInfo,
        rhs: &VarInfo,
        report: &mut Option<(&FnItem, &mut Vec<Finding>)>,
    ) {
        let Some((f, findings)) = report.as_mut() else {
            return;
        };
        let file = self.file;
        if file.in_macro_def(file.tokens[at_tok].span.start) {
            return;
        }
        let may_overflow = match op {
            // One shape/addr-typed operand is enough — extents
            // multiply extents.
            "*" => (lhs.typed || rhs.typed) && lhs.iv.hi.saturating_mul(rhs.iv.hi) > USIZE_MAX,
            // Addition: both operands unbounded and at least one typed
            // (pointer-style `base + offset` arithmetic).
            "+" => {
                (lhs.typed || rhs.typed)
                    && lhs.iv.hi == TOP
                    && rhs.iv.hi == TOP
                    && lhs.iv.hi.saturating_add(rhs.iv.hi) > USIZE_MAX
            }
            // `<<` in Rust panics (or wraps in release) only when the
            // shift *amount* can reach the bit width; losing high bits
            // of the value is defined behavior, flagged only when the
            // lhs is a shape/address quantity whose dropped bits would
            // silently corrupt downstream arithmetic.
            _ => {
                let amount_risk = (lhs.typed || rhs.typed) && rhs.iv.hi >= 64;
                let magnitude_risk = lhs.typed && shl_hi(lhs.iv.hi, rhs.iv.hi) > USIZE_MAX;
                amount_risk || magnitude_risk
            }
        };
        if !may_overflow {
            return;
        }
        if lhs.guarded || rhs.guarded {
            return;
        }
        let line = file.tokens[at_tok].line;
        let mut path = vec![f.qual.clone()];
        for (side, v) in [("lhs", lhs), ("rhs", rhs)] {
            if v.def_line > 0 {
                path.push(format!("{side} defined at {}:{}", file.label, v.def_line));
            }
        }
        findings.push(Finding {
            code,
            file: file.label.clone(),
            line,
            message: format!(
                "unchecked `{op}` on {} value with unproven range \
                 (lhs hi {}, rhs hi {}); use checked_{} or bound the operands",
                if lhs.typed || rhs.typed {
                    "a shape/address-typed"
                } else {
                    "a"
                },
                bound_str(lhs.iv.hi),
                bound_str(rhs.iv.hi),
                match op {
                    "*" => "mul",
                    "+" => "add",
                    _ => "shl",
                },
            ),
            path,
        });
    }

    /// Does the code token before position `p` end an operand?
    fn prev_is_operand(&self, tokens: &[usize], p: usize) -> bool {
        let file = self.file;
        if p == 0 {
            return false;
        }
        let i = tokens[p - 1];
        match file.tokens[i].kind {
            TokKind::Ident => !matches!(
                file.text(i),
                "return" | "in" | "if" | "while" | "match" | "else" | "move" | "as" | "let"
            ),
            TokKind::Literal(_) => true,
            TokKind::Close(_) => true,
            _ => false,
        }
    }

    /// Follow the primary chain starting at atom position `q` to its
    /// last element — `codes[axis].cbits` classifies as `cbits`,
    /// `s2.len(i)` as the `len` call — since the chain's value is
    /// determined by its final step.
    fn chain_last(&self, tokens: &[usize], mut q: usize) -> usize {
        let file = self.file;
        loop {
            let mut r = q + 1;
            if let Some(&n) = tokens.get(r) {
                if matches!(
                    file.tokens[n].kind,
                    TokKind::Open(Delim::Paren) | TokKind::Open(Delim::Bracket)
                ) {
                    let close = file.matching(n);
                    while r < tokens.len() && tokens[r] <= close {
                        r += 1;
                    }
                }
            }
            if tokens.get(r).map(|&n| file.is(n, ".")) == Some(true)
                && tokens
                    .get(r + 1)
                    .map(|&n| file.tokens[n].kind == TokKind::Ident)
                    == Some(true)
            {
                q = r + 1;
                continue;
            }
            return q;
        }
    }

    /// Abstract value of the operand ending just before position `p`.
    fn operand_before(&self, tokens: &[usize], p: usize, env: &Env) -> Option<VarInfo> {
        let file = self.file;
        let mut q = p.checked_sub(1)?;
        loop {
            let i = tokens[q];
            match file.tokens[i].kind {
                TokKind::Ident | TokKind::Literal(_) => {
                    // `x as u64 * y` — the operand before `*` is the
                    // cast source, not the type name.
                    if is_prim_ty(file.text(i)) && q >= 2 && file.is(tokens[q - 1], "as") {
                        q -= 2;
                        continue;
                    }
                    return Some(self.atom(tokens, q, env));
                }
                TokKind::Close(_) => {
                    // Walk back over the group to the name before it.
                    let mut depth = 0i32;
                    loop {
                        let i = tokens[q];
                        match file.tokens[i].kind {
                            TokKind::Close(_) => depth += 1,
                            TokKind::Open(_) => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        q = q.checked_sub(1)?;
                    }
                    // `name(...)` → classify the call; `(expr)` → the
                    // first atom inside.
                    if q > 0 {
                        let before = tokens[q - 1];
                        if file.tokens[before].kind == TokKind::Ident {
                            return Some(self.call_atom(tokens, q - 1, env));
                        }
                    }
                    let inner = (q + 1..tokens.len())
                        .take_while(|&k| tokens[k] != tokens[p])
                        .find(|&k| {
                            matches!(
                                file.tokens[tokens[k]].kind,
                                TokKind::Ident | TokKind::Literal(_)
                            )
                        });
                    return inner.map(|k| self.atom(tokens, self.chain_last(tokens, k), env));
                }
                _ => return None,
            }
        }
    }

    /// Abstract value of the operand starting at position `p`.
    fn operand_after(&self, tokens: &[usize], p: usize, env: &Env) -> Option<VarInfo> {
        let file = self.file;
        let mut q = p;
        while q < tokens.len() {
            let i = tokens[q];
            match file.tokens[i].kind {
                TokKind::Ident | TokKind::Literal(_) => {
                    return Some(self.atom(tokens, self.chain_last(tokens, q), env));
                }
                TokKind::Open(_) => {
                    q += 1;
                }
                TokKind::Punct if file.is(i, "&") || file.is(i, "*") => q += 1,
                _ => return None,
            }
        }
        None
    }
}

fn shl_hi(a: u128, b: u128) -> u128 {
    if a == 0 {
        return 0;
    }
    if b >= 64 {
        return TOP;
    }
    a.saturating_mul(1u128 << (b as u32).min(127))
}

fn bound_str(hi: u128) -> String {
    if hi == TOP {
        "unbounded".to_owned()
    } else if hi == LEN_MAX {
        "2^48".to_owned()
    } else {
        format!("{hi}")
    }
}

#[cfg(test)]
mod tests {
    use super::super::analyze_str;
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        analyze_str(src).iter().map(|f| f.code.as_str()).collect()
    }

    #[test]
    fn unchecked_shape_product_fires() {
        let c = codes(
            "pub fn total(dims: &[usize]) -> usize {\n    let mut n = 1usize;\n    for d in dims.iter() {\n        n = n * d;\n    }\n    n\n}\n",
        );
        assert!(c.contains(&"CM-A009"), "{c:?}");
    }

    #[test]
    fn checked_mul_passes_clean() {
        let c = codes(
            "pub fn total(dims: &[usize]) -> Option<usize> {\n    let mut n = 1usize;\n    for d in dims.iter() {\n        n = n.checked_mul(*d)?;\n    }\n    Some(n)\n}\n",
        );
        assert!(!c.contains(&"CM-A009"), "{c:?}");
    }

    #[test]
    fn literal_bounded_product_passes() {
        let c = codes(
            "pub fn f() -> usize {\n    let dim_a = 512usize;\n    let dim_b = 512usize;\n    dim_a * dim_b\n}\n",
        );
        assert!(!c.contains(&"CM-A009"), "{c:?}");
    }

    #[test]
    fn assert_guard_passes() {
        let c = codes(
            "pub fn f(node_dim: usize, other: usize) -> usize {\n    assert!(node_dim < 512);\n    assert!(other < 512);\n    node_dim * other\n}\n",
        );
        assert!(!c.contains(&"CM-A009"), "{c:?}");
    }

    #[test]
    fn shift_by_unbounded_dim_fires() {
        // `dim` alone is invariant-bounded (≤ 63), so `1 << dim` fits a
        // 64-bit usize and passes; shifting a node count by it does not.
        let clean = codes("pub fn cube_nodes(dim: usize) -> usize {\n    1usize << dim\n}\n");
        assert!(!clean.contains(&"CM-A009"), "{clean:?}");
        let c = codes("pub fn scaled(nodes: usize, dim: usize) -> usize {\n    nodes << dim\n}\n");
        assert!(c.contains(&"CM-A009"), "{c:?}");
    }

    #[test]
    fn addr_add_fires_and_guard_clears() {
        // Two invariant-bounded addresses (≤ 2⁴⁸ each) cannot overflow
        // a 64-bit add; an unproven shape-typed operand still fires.
        let clean = codes(
            "pub fn f(base_addr: usize, node_offset: usize) -> usize {\n    base_addr + node_offset\n}\n",
        );
        assert!(!clean.contains(&"CM-A010"), "{clean:?}");
        let bad = codes(
            "pub fn f(shape_total: usize, payload: usize) -> usize {\n    shape_total + payload\n}\n",
        );
        assert!(bad.contains(&"CM-A010"), "{bad:?}");
        let good = codes(
            "pub fn f(shape_total: usize, payload: usize) -> Option<usize> {\n    shape_total.checked_add(payload)\n}\n",
        );
        assert!(!good.contains(&"CM-A010"), "{good:?}");
    }

    #[test]
    fn untyped_arithmetic_is_ignored() {
        let c = codes("pub fn f(a: usize, b: usize) -> usize {\n    a * b + a\n}\n");
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn for_range_bounds_are_used() {
        let c = codes(
            "pub fn f() -> usize {\n    let mut acc_idx = 0usize;\n    for node_idx in 0..4096usize {\n        acc_idx = node_idx * 8;\n    }\n    acc_idx\n}\n",
        );
        assert!(!c.contains(&"CM-A009"), "{c:?}");
    }

    #[test]
    fn int_lit_parses_forms() {
        assert_eq!(int_lit("42"), Some(42));
        assert_eq!(int_lit("1_000usize"), Some(1000));
        assert_eq!(int_lit("0xffu32"), Some(255));
        assert_eq!(int_lit("0b101"), Some(5));
    }

    #[test]
    fn findings_carry_def_use_evidence() {
        let fs = analyze_str(
            "pub fn f(dims: &[usize]) -> usize {\n    let shape_n = dims.len() + 1;\n    let total_nodes = shape_n;\n    total_nodes * total_nodes\n}\n",
        );
        if let Some(f) = fs.iter().find(|f| f.code == Code::RangeMulOverflow) {
            assert!(!f.path.is_empty(), "{f:?}");
        }
    }
}
